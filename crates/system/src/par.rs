//! Conservative-PDES parallel engine.
//!
//! The machine's event loop is parallelized with a per-cycle, two-phase
//! round protocol built on the primitives in [`ring_sim::pdes`]:
//!
//! 1. The driver drains every event scheduled for the earliest pending
//!    cycle, in exact serial pop order
//!    ([`ring_sim::EventQueue::drain_next_cycle`]), and publishes the
//!    batch to the phase-A workers through a generation-stamped gate.
//! 2. **Phase A** — each worker computes the *node-local* part of its
//!    LP's events in parallel: agent input handling (which only mutates
//!    that node's protocol agent and fills a private effect buffer) and
//!    core scheduling steps. Per-node event order is preserved by
//!    `prev` chains: a worker holds an event back until the driver's
//!    applied cursor passes the node's previous event in the batch.
//! 3. **Phase B** — the driver commits results in exact serial order:
//!    effect application, scheduling, tracing, statistics — the same
//!    [`Ctx`] code the serial engine runs. Reliable-transport events
//!    stay driver-only (they touch global transport/network state).
//!
//! Because every observable mutation (queue scheduling, RNG draws on
//! shared state, trace emission, statistics) happens on the driver in
//! serial order, and each agent sees its own inputs in serial order,
//! the observable event order, trace stream, stats rollup, and final
//! digest are **byte-identical** to the serial engine at every worker
//! count and for every partition shape. The golden-digest and
//! proptest suites enforce this.
//!
//! The lookahead justifying per-cycle rounds comes from the network:
//! any cross-node delivery takes at least
//! [`ring_noc::NetworkConfig::min_cross_node_latency`] cycles, so
//! same-cycle events can only interact through driver-committed state,
//! never through another node's phase-A state. Zero-delay feedback
//! (reliable-transport deliveries, duplicate suppliership inputs)
//! lands back in the *same* cycle's queue and is picked up by a
//! follow-up round at the same timestamp — exactly where the serial
//! engine would pop it.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};

use ring_cache::LineAddr;
use ring_coherence::AgentInput;
use ring_sim::pdes::{backoff, AppliedCursor, DoneFlags, Gate, Partition, Round};
use ring_sim::Cycle;

use crate::effects::{resume_compute, Ctx, NodeAccess, ResumeStep, ShardPtrs};
use crate::machine::{Ev, Machine};
use crate::stall::{StallCause, StallReport};
use crate::stats::Report;

/// LP id marking a driver-only batch item (reliable-transport events).
const DRIVER_LP: u32 = u32::MAX;

/// Sentinel for "no previous same-node event in this batch".
const NO_PREV: u32 = u32::MAX;

/// What a batch item asks of its owner.
enum Work {
    /// Advance the node's core ([`resume_compute`]).
    Resume,
    /// Feed the node's agent a protocol input.
    Agent(AgentInput),
    /// Feed the node's agent completed memory data.
    Mem(LineAddr),
    /// Driver-only: reliable-transport machinery (global state).
    Driver(Ev),
}

/// One batch item, written by the driver between rounds, read by every
/// worker during a round.
struct Meta {
    /// Owning node, or `u32::MAX` for driver items.
    node: u32,
    /// LP the node belongs to (`DRIVER_LP` for driver items).
    lp: u32,
    /// Batch index of the previous same-node item ([`NO_PREV`] if
    /// first): phase A must wait for the driver to commit it.
    prev: u32,
    work: Work,
}

/// Phase-A output for one batch item: the effect buffer an agent filled
/// or the core step a resume computed. Written by exactly one worker,
/// read by the driver after the item's done flag is set.
#[derive(Default)]
struct Slot {
    fx: Vec<ring_coherence::Effect>,
    step: Option<ResumeStep>,
}

/// Interior-mutable cell that is shareable across the worker scope.
/// All access follows the round protocol (see module docs), which
/// provides the required happens-before edges.
struct SyncCell<T>(UnsafeCell<T>);

// Safety: every access to the inner value is ordered by the gate /
// done-flag / cursor / scan-counter atomics per the round protocol.
unsafe impl<T> Sync for SyncCell<T> {}

impl<T> SyncCell<T> {
    fn new(v: T) -> Self {
        SyncCell(UnsafeCell::new(v))
    }
    fn get(&self) -> *mut T {
        self.0.get()
    }
}

/// Depth of the round-buffer ring: how many rounds a worker may lag
/// behind the driver before the driver has to wait for it. Rounds are
/// tiny (one simulated cycle), so on an oversubscribed host the driver
/// routinely laps descheduled workers — help-first claims let it
/// finish their rounds alone, and the ring amortizes the
/// worker-progress rendezvous over `RING` rounds instead of paying a
/// context switch per round.
const RING: usize = 64;

/// One round's publication: the batch, per-item outputs, and the
/// generation-stamped flag/claim boards. Buffer `g % RING` belongs to
/// round `g`; the driver reuses it for round `g + RING` only after
/// every worker's watermark proves no one can still be reading it.
struct RoundBuf {
    /// The batch, rebuilt by the driver when the buffer is recycled.
    meta: SyncCell<Vec<Meta>>,
    /// Phase-A outputs, one per batch item.
    slots: SyncCell<Vec<UnsafeCell<Slot>>>,
    /// Per-item done flags (computer → driver hand-off).
    flags: SyncCell<DoneFlags>,
    /// Work-stealing claim board: the owning worker and the committing
    /// driver race to claim each item, and the winner computes it. The
    /// driver "helping" bounds the cost of a slow or descheduled
    /// worker — without it, an oversubscribed host makes the driver
    /// spin on flags a worker cannot set because the driver holds the
    /// CPU. Claims are generation-stamped, so a worker that wakes up
    /// on a long-finished round finds every claim taken and falls
    /// through without touching anything.
    claims: SyncCell<DoneFlags>,
    /// The round's timestamp.
    round_t: SyncCell<Cycle>,
}

impl Default for RoundBuf {
    fn default() -> Self {
        RoundBuf {
            meta: SyncCell::new(Vec::new()),
            slots: SyncCell::new(Vec::new()),
            flags: SyncCell::new(DoneFlags::new(0)),
            claims: SyncCell::new(DoneFlags::new(0)),
            round_t: SyncCell::new(0),
        }
    }
}

/// Everything the driver and workers share for one span.
struct Shared {
    /// Round gate: generation-stamped open/shutdown.
    gate: Gate,
    /// Commit progress of the *current* round (driver → worker hand-off
    /// for same-node chains). Only consulted after a successful claim,
    /// which can only happen on the current round.
    cursor: AppliedCursor,
    /// The round-buffer ring.
    bufs: [RoundBuf; RING],
    /// Per-worker watermark: the last round generation the worker
    /// finished scanning (Release). The driver recycles round
    /// `g - RING`'s buffer for round `g` only once every watermark is
    /// `> g - RING`, proving no worker still reads it — a worker's
    /// in-flight scan is always of a generation strictly above its
    /// watermark.
    done_upto: Vec<AtomicUsize>,
}

/// Phase-A compute for one sharded batch item, run by whichever thread
/// won the item's claim.
///
/// # Safety
///
/// The caller must hold the claim for this item's `(index, gen)` pair
/// and the exclusive right to its node: either the cursor has passed
/// the item's same-node predecessor (worker), or the caller is the
/// driver at the item's commit position (everything earlier is already
/// committed).
unsafe fn compute_item(shard: &ShardPtrs, meta: &Meta, slot: &mut Slot, t: Cycle, slice: u64) {
    let n = meta.node as usize;
    match &meta.work {
        Work::Resume => {
            let (core, agent) = shard.core_agent(n);
            slot.step = Some(resume_compute(core, agent, slice));
        }
        Work::Agent(input) => {
            slot.fx.clear();
            shard.agent_mut(n).handle_into(t, *input, &mut slot.fx);
        }
        Work::Mem(line) => {
            slot.fx.clear();
            shard
                .agent_mut(n)
                .handle_into(t, AgentInput::MemData { line: *line }, &mut slot.fx);
        }
        Work::Driver(_) => unreachable!("driver items are dispatched inline, never computed"),
    }
}

/// Phase-A worker: processes its LP's share of each round's batch until
/// the gate shuts down. A worker that gets descheduled simply misses
/// rounds — the driver helps the missed items through, and when the
/// worker wakes it jumps straight to the newest round (every claim on
/// an already-finished round fails, so stale scans touch nothing).
fn worker_loop(my_lp: u32, shared: &Shared, shard: &ShardPtrs, slice: u64) {
    let mut seen = 0usize;
    loop {
        match shared.gate.wait_open(seen) {
            Round::Shutdown => return,
            Round::Open(gen) => {
                seen = gen;
                let buf = &shared.bufs[gen % RING];
                // Safety: the driver published this buffer with the
                // gate's Release store for `gen`, and cannot recycle it
                // (round `gen + RING`) until this worker's watermark
                // below proves the scan is over.
                let t = unsafe { *buf.round_t.get() };
                let metas = unsafe { &*buf.meta.get() };
                let slots = unsafe { &*buf.slots.get() };
                let flags = unsafe { &*buf.flags.get() };
                let claims = unsafe { &*buf.claims.get() };
                for (i, m) in metas.iter().enumerate() {
                    if m.lp != my_lp {
                        continue;
                    }
                    if !claims.try_claim(i, gen) {
                        // The driver already helped this item through.
                        continue;
                    }
                    if m.prev != NO_PREV {
                        // Per-node order: the driver must finish
                        // committing the node's previous event first.
                        // Only reachable on the driver's current round
                        // (claims on finished rounds always fail), so
                        // the shared cursor is the right frontier.
                        shared.cursor.wait_past(m.prev as usize);
                    }
                    // Safety: the claim makes this thread the item's
                    // only computer, and the driver only reads the
                    // slot after the done flag below. The cursor wait
                    // above grants the exclusive right to the node
                    // until the driver commits item `i`.
                    unsafe {
                        let slot = &mut *slots[i].get();
                        compute_item(shard, m, slot, t, slice);
                    }
                    flags.set(i, gen);
                }
                shared.done_upto[my_lp as usize].store(gen, Ordering::Release);
            }
        }
    }
}

/// Runs rounds until the span must end (boundary, cap, drained queue,
/// or watchdog stall). Returns the stall cycle if the watchdog expired.
#[allow(clippy::too_many_arguments)]
fn driver_rounds(
    cx: &mut Ctx<'_>,
    part: &Partition,
    shared: &Shared,
    shard: &ShardPtrs,
    workers: usize,
    slice: u64,
    cap: Cycle,
    stop: Cycle,
) -> Option<Cycle> {
    let nodes = part.nodes();
    let mut batch: Vec<Ev> = Vec::new();
    let mut last: Vec<u32> = vec![NO_PREV; nodes];
    let mut scratch_fx = Vec::new();
    let mut gen = 0usize;
    loop {
        let pt = cx.queue.peek_time()?;
        if pt > cap || pt >= stop {
            return None;
        }
        if cx.watchdog.expired(pt) {
            // Serial detects the stall at the first event of this
            // cycle, before any of it is processed; detecting it before
            // the drain leaves the queue intact and every observable
            // stall-report field identical.
            return Some(pt);
        }
        let t = cx
            .queue
            .drain_next_cycle(cap, &mut batch)
            .expect("peek_time returned an event within the cap");
        debug_assert_eq!(t, pt);
        let m = batch.len();

        gen += 1;
        let buf = &shared.bufs[gen % RING];

        // Recycle the RING-rounds-old buffer only once every worker's
        // watermark proves it can no longer be reading it (an in-flight
        // scan is always of a generation strictly above the watermark).
        if gen > RING {
            let floor = gen - RING;
            for w in shared.done_upto.iter().take(workers) {
                let mut spins = 0u32;
                while w.load(Ordering::Acquire) < floor {
                    backoff(&mut spins);
                }
            }
        }

        // Safety: the watermark wait above proves no worker still reads
        // this buffer; workers cannot read it again until the gate
        // publishes generation `gen`.
        unsafe {
            let metas = &mut *buf.meta.get();
            let slots = &mut *buf.slots.get();
            let flags = &mut *buf.flags.get();
            *buf.round_t.get() = t;
            metas.clear();
            last[..nodes].fill(NO_PREV);
            for ev in batch.drain(..) {
                let (node, lp, work) = match ev {
                    Ev::Resume(n) => (n as u32, part.lp_of(n) as u32, Work::Resume),
                    Ev::Agent(n, input) => (n as u32, part.lp_of(n) as u32, Work::Agent(input)),
                    Ev::MemDone(n, line) => (n as u32, part.lp_of(n) as u32, Work::Mem(line)),
                    other => (u32::MAX, DRIVER_LP, Work::Driver(other)),
                };
                let i = metas.len() as u32;
                let prev = if node != u32::MAX {
                    std::mem::replace(&mut last[node as usize], i)
                } else {
                    NO_PREV
                };
                metas.push(Meta {
                    node,
                    lp,
                    prev,
                    work,
                });
            }
            while slots.len() < m {
                slots.push(UnsafeCell::new(Slot::default()));
            }
            flags.ensure(m);
            (*buf.claims.get()).ensure(m);
        }
        shared.cursor.reset();
        shared.gate.open(gen);

        // Phase B: commit in exact serial pop order.
        for i in 0..m {
            cx.queue.release_in_flight();
            // Safety: metas are read-only during the round (driver and
            // workers both only read).
            let meta_i = unsafe { &(&*buf.meta.get())[i] };
            match &meta_i.work {
                Work::Driver(ev) => {
                    let ev = *ev;
                    cx.dispatch(t, ev, &mut scratch_fx);
                }
                _ => {
                    // Help-first: if the owning worker hasn't claimed
                    // this item yet, compute it here — everything
                    // before `i` is committed, so the driver holds the
                    // node's exclusive right by construction.
                    if unsafe { &*buf.claims.get() }.try_claim(i, gen) {
                        unsafe {
                            let slot = &mut *(&*buf.slots.get())[i].get();
                            compute_item(shard, meta_i, slot, t, slice);
                        }
                    } else {
                        // Safety: flag `i` (Acquire) orders every
                        // phase-A write to slot `i` and node state
                        // before this read.
                        unsafe { &*buf.flags.get() }.wait(i, gen);
                    }
                    let slot = unsafe { &mut *(&*buf.slots.get())[i].get() };
                    let n = meta_i.node as usize;
                    match &meta_i.work {
                        Work::Resume => {
                            let step = slot.step.take().expect("phase A filled the step");
                            cx.resume_commit(t, n, step);
                        }
                        Work::Agent(_) | Work::Mem(_) => {
                            cx.drain_agent_trace(n);
                            cx.apply_effects(t, n, &mut slot.fx);
                        }
                        Work::Driver(_) => unreachable!(),
                    }
                }
            }
            shared.cursor.advance_past(i);
        }
    }
}

impl Machine {
    /// Pins the node→LP assignment the parallel engine uses
    /// ([`Machine::try_run_parallel`]). Purely an execution-strategy
    /// knob: every partition produces byte-identical results, so this
    /// mainly exists for load-balancing experiments and adversarial
    /// determinism tests.
    ///
    /// # Panics
    ///
    /// Panics if the partition does not cover exactly this machine's
    /// node count.
    pub fn set_partition(&mut self, part: Partition) {
        assert_eq!(
            part.nodes(),
            self.cfg.nodes(),
            "partition covers {} nodes, machine has {}",
            part.nodes(),
            self.cfg.nodes()
        );
        self.partition = Some(part);
    }

    /// Like [`Machine::run`], but on the parallel engine with `threads`
    /// total OS threads. Stalls print their report to stderr.
    pub fn run_parallel(&mut self, threads: usize) -> Report {
        match self.try_run_parallel(threads) {
            Ok(r) => r,
            Err(stall) => {
                eprintln!("{stall}");
                self.report()
            }
        }
    }

    /// Runs to completion (or the configured cycle cap) on the
    /// conservative-PDES parallel engine with `threads` total OS
    /// threads: one driver plus `threads - 1` phase-A workers. Nodes
    /// are split across workers by the installed partition
    /// ([`Machine::set_partition`]) or contiguous ring arcs by default.
    ///
    /// The observable run — event order, trace stream, statistics,
    /// checkpoints, final report, and digests — is byte-identical to
    /// [`Machine::try_run`] for every thread count and partition.
    /// `threads <= 1` *is* the serial engine (same code path), as is
    /// [`MachineConfig::check_invariants`] mode (whole-machine
    /// invariant scans are inherently serial).
    ///
    /// [`MachineConfig::check_invariants`]: crate::MachineConfig::check_invariants
    pub fn try_run_parallel(&mut self, threads: usize) -> Result<Report, Box<StallReport>> {
        let workers = threads.saturating_sub(1);
        if workers == 0 || self.cfg.check_invariants {
            return self.try_run();
        }
        let nodes = self.cfg.nodes();
        let part = match self.partition.clone() {
            Some(p) => p,
            None => Partition::contiguous(nodes, workers),
        };
        assert_eq!(part.nodes(), nodes, "partition does not match machine");
        let cap = if self.cfg.max_cycles == 0 {
            Cycle::MAX
        } else {
            self.cfg.max_cycles
        };
        // Spans run between observation boundaries (checkpoints, flight
        // windows): the probes need a quiescent whole machine, so they
        // happen here, exactly where the serial loop would run them.
        while let Some(pt) = self.queue.peek_time() {
            if pt >= self.next_ckpt {
                self.maybe_checkpoint(cap);
            }
            if pt > cap {
                break;
            }
            if pt >= self.next_window {
                self.flight_sample(pt);
            }
            if self.watchdog.expired(pt) {
                if let Some(s) = self.sink.as_mut() {
                    let _ = s.flush();
                }
                return Err(Box::new(self.stall_report(StallCause::WatchdogExpired, pt)));
            }
            let stop = self.next_ckpt.min(self.next_window);
            debug_assert!(stop > pt);
            if let Some(at) = self.par_span(cap, stop, &part) {
                if let Some(s) = self.sink.as_mut() {
                    let _ = s.flush();
                }
                return Err(Box::new(self.stall_report(StallCause::WatchdogExpired, at)));
            }
        }
        // Tail: identical to the serial engine.
        let capped = !self.queue.is_empty();
        if self.flight.is_some() {
            self.flight_sample(self.queue.now());
            if let Some(f) = self.flight.as_mut() {
                let _ = f.flush();
            }
        }
        if let Some(s) = self.sink.as_mut() {
            let _ = s.flush();
        }
        let report = self.report();
        if !capped && !report.finished {
            let now = self.queue.now();
            return Err(Box::new(self.stall_report(StallCause::QueueDrained, now)));
        }
        Ok(report)
    }

    /// Runs one worker scope: rounds until the next boundary (`stop`),
    /// the cap, a drained queue, or a stall. Returns the stall cycle if
    /// the watchdog expired.
    fn par_span(&mut self, cap: Cycle, stop: Cycle, part: &Partition) -> Option<Cycle> {
        let lps = part.lps();
        let slice = self.cfg.core_slice;
        let shared = Shared {
            gate: Gate::new(),
            cursor: AppliedCursor::new(),
            bufs: std::array::from_fn(|_| RoundBuf::default()),
            done_upto: (0..lps).map(|_| AtomicUsize::new(0)).collect(),
        };
        // Split the machine: cores/agents become shard pointers shared
        // with the workers; everything else stays exclusively with the
        // driver through the Ctx. No `&mut Machine` is formed again
        // until the scope ends, so the shard pointers stay valid.
        let Machine {
            cfg,
            queue,
            net,
            rings,
            cores,
            agents,
            mem,
            cpp,
            pbufs,
            finish_time,
            stats,
            registry,
            anatomy_marks,
            mc_buf,
            trace,
            sink,
            trace_enabled,
            watchdog,
            recent,
            rel,
            rel_buf,
            outage_buf,
            ..
        } = self;
        let shard = ShardPtrs::new(cores, agents);
        let mut cx = Ctx {
            cfg,
            queue,
            net,
            rings,
            nodes: NodeAccess::Shard(&shard),
            mem,
            cpp,
            pbufs,
            finish_time,
            stats,
            registry,
            anatomy_marks,
            mc_buf,
            trace,
            sink,
            trace_enabled: *trace_enabled,
            watchdog,
            recent,
            rel,
            rel_buf,
            outage_buf,
        };
        std::thread::scope(|s| {
            let shared = &shared;
            let shard = &shard;
            for lp in 0..lps {
                s.spawn(move || worker_loop(lp as u32, shared, shard, slice));
            }
            let out = driver_rounds(&mut cx, part, shared, shard, lps, slice, cap, stop);
            shared.gate.shutdown();
            out
        })
    }
}
