//! Determinism proof for the pausable/steppable run loop.
//!
//! The contract under test: driving a machine through
//! [`Machine::try_run_slice`] in slices of *any* size — including one
//! event at a time — produces a run byte-identical to one uninterrupted
//! [`Machine::try_run`]: same full stats listing, same complete
//! trace-event stream, same queue high-water mark, and the same
//! checkpoint trail. This is what lets the `ringd` daemon pause, step,
//! and snapshot live sessions without perturbing them.

use std::sync::{Arc, Mutex};

use ring_coherence::ProtocolVariant;
use ring_noc::{FaultPlan, FaultProfile};
use ring_system::{Machine, MachineConfig, RunProgress};
use ring_trace::{TraceEvent, TraceSink};
use ring_workloads::AppProfile;

/// FNV-1a over every trace event's canonical JSONL rendering.
#[derive(Debug, Clone, Default)]
struct DigestSink {
    state: Arc<Mutex<(u64, u64)>>,
}

impl DigestSink {
    fn new() -> Self {
        DigestSink {
            state: Arc::new(Mutex::new((0xcbf2_9ce4_8422_2325, 0))),
        }
    }

    fn digest(&self) -> (u64, u64) {
        *self.state.lock().unwrap()
    }
}

impl TraceSink for DigestSink {
    fn record(&mut self, ev: &TraceEvent) {
        let mut st = self.state.lock().unwrap();
        for &b in ev.to_jsonl().as_bytes() {
            st.0 ^= b as u64;
            st.0 = st.0.wrapping_mul(0x100_0000_01b3);
        }
        st.1 += 1;
    }
}

fn cfg(variant: ProtocolVariant, chaos: bool) -> MachineConfig {
    let mut cfg = MachineConfig::with_protocol(variant.config());
    cfg.width = 4;
    cfg.height = 4;
    cfg.max_cycles = 50_000_000;
    cfg.watchdog_cycles = 2_000_000;
    cfg.seed = 2007;
    if chaos {
        cfg.faults = Some(FaultPlan::new(FaultProfile::chaos(), 42));
    }
    cfg
}

fn profile() -> AppProfile {
    AppProfile::by_name("fmm").expect("fmm profile").scaled(120)
}

fn uninterrupted(cfg: MachineConfig) -> (Vec<u8>, (u64, u64), usize) {
    let mut m = Machine::new(cfg, &profile());
    let sink = DigestSink::new();
    m.set_trace_sink(Box::new(sink.clone()));
    let r = m.try_run().expect("reference run must not stall");
    assert!(r.finished);
    let mut stats = Vec::new();
    r.write_stats(&mut stats).expect("Vec write cannot fail");
    (stats, sink.digest(), m.queue_peak())
}

fn sliced(cfg: MachineConfig, slice: u64) -> (Vec<u8>, (u64, u64), usize, u64) {
    let mut m = Machine::new(cfg, &profile());
    let sink = DigestSink::new();
    m.set_trace_sink(Box::new(sink.clone()));
    let mut slices = 0u64;
    let r = loop {
        match m.try_run_slice(slice).expect("sliced run must not stall") {
            RunProgress::Done(r) => break r,
            RunProgress::Yielded { events, cycle: _ } => {
                assert_eq!(events, slice, "a yield means the budget was exhausted");
                slices += 1;
            }
        }
    };
    assert!(r.finished);
    let mut stats = Vec::new();
    r.write_stats(&mut stats).expect("Vec write cannot fail");
    (stats, sink.digest(), m.queue_peak(), slices)
}

/// Slices of several sizes (including single-event stepping) against
/// the uninterrupted run, on a ring variant and the HT-free chaos case.
#[test]
fn sliced_runs_are_byte_identical() {
    for (variant, chaos) in [
        (ProtocolVariant::Uncorq, false),
        (ProtocolVariant::UncorqPref, true),
    ] {
        let reference = uninterrupted(cfg(variant, chaos));
        for slice in [1u64, 97, 5000] {
            let (stats, trace, peak, slices) = sliced(cfg(variant, chaos), slice);
            assert!(slices > 0, "slice {slice} never yielded (test is vacuous)");
            assert_eq!(
                (stats, trace, peak),
                reference.clone(),
                "{variant} chaos={chaos}: slice size {slice} diverged"
            );
        }
    }
}

/// Checkpoints written mid-run are identical whether the loop is sliced
/// or not: same file set, same bytes.
#[test]
fn sliced_checkpoint_trail_matches_uninterrupted() {
    let base = std::env::temp_dir().join("ring-slice-ckpt-test");
    let _ = std::fs::remove_dir_all(&base);
    let dir_a = base.join("uninterrupted");
    let dir_b = base.join("sliced");
    std::fs::create_dir_all(&dir_a).expect("temp dir");
    std::fs::create_dir_all(&dir_b).expect("temp dir");

    let mut a = Machine::new(cfg(ProtocolVariant::Uncorq, false), &profile());
    a.enable_checkpoints(2000, &dir_a);
    assert!(a.try_run().expect("run").finished);

    let mut b = Machine::new(cfg(ProtocolVariant::Uncorq, false), &profile());
    b.enable_checkpoints(2000, &dir_b);
    loop {
        match b.try_run_slice(313).expect("run") {
            RunProgress::Done(r) => {
                assert!(r.finished);
                break;
            }
            RunProgress::Yielded { .. } => {}
        }
    }

    let names = |d: &std::path::Path| {
        let mut v: Vec<String> = std::fs::read_dir(d)
            .expect("read dir")
            .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
            .collect();
        v.sort();
        v
    };
    let (na, nb) = (names(&dir_a), names(&dir_b));
    assert!(!na.is_empty(), "reference run wrote no checkpoints");
    assert_eq!(na, nb, "checkpoint file sets diverged");
    for n in &na {
        let ba = std::fs::read(dir_a.join(n)).expect("read");
        let bb = std::fs::read(dir_b.join(n)).expect("read");
        assert_eq!(ba, bb, "checkpoint {n} bytes diverged");
    }
    let _ = std::fs::remove_dir_all(&base);
}
