//! Determinism proof for the conservative-PDES parallel engine.
//!
//! The contract under test: for every protocol variant, fault scenario,
//! worker count, and node→LP partition shape, [`Machine::try_run_parallel`]
//! produces a run that is **byte-identical** to [`Machine::try_run`] —
//! same full stats listing, same complete trace-event stream, same queue
//! high-water mark — and checkpoints taken mid-run under the parallel
//! engine restore and resume to the same bytes.

use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use ring_coherence::ProtocolVariant;
use ring_noc::{FaultPlan, FaultProfile, ReliabilityConfig};
use ring_system::{restore_latest, Machine, MachineConfig, Partition};
use ring_trace::{TraceEvent, TraceSink};
use ring_workloads::AppProfile;

/// FNV-1a over every trace event's canonical JSONL rendering; clones
/// share state so one copy goes into the machine and the other reads
/// the digest back out.
#[derive(Debug, Clone, Default)]
struct DigestSink {
    state: Arc<Mutex<(u64, u64)>>,
}

impl DigestSink {
    fn new() -> Self {
        DigestSink {
            state: Arc::new(Mutex::new((0xcbf2_9ce4_8422_2325, 0))),
        }
    }

    fn digest(&self) -> (u64, u64) {
        *self.state.lock().unwrap()
    }
}

impl TraceSink for DigestSink {
    fn record(&mut self, ev: &TraceEvent) {
        let mut st = self.state.lock().unwrap();
        for &b in ev.to_jsonl().as_bytes() {
            st.0 ^= b as u64;
            st.0 = st.0.wrapping_mul(0x100_0000_01b3);
        }
        st.0 ^= b'\n' as u64;
        st.0 = st.0.wrapping_mul(0x100_0000_01b3);
        st.1 += 1;
    }
}

/// Fault scenarios the engines must agree under: a clean network, the
/// chaos fault profile, and 20% frame drops with the reliability
/// sublayer recovering them (the scenario with zero-delay feedback
/// events, the hardest case for round batching).
#[derive(Debug, Clone, Copy, PartialEq)]
enum Scenario {
    Clean,
    Chaos,
    Drop20,
}

const SCENARIOS: [Scenario; 3] = [Scenario::Clean, Scenario::Chaos, Scenario::Drop20];

fn cell_cfg(variant: ProtocolVariant, scenario: Scenario, seed: u64) -> MachineConfig {
    let mut cfg = MachineConfig::with_protocol(variant.config());
    cfg.width = 4;
    cfg.height = 4;
    cfg.max_cycles = 50_000_000;
    cfg.watchdog_cycles = 2_000_000;
    cfg.seed = seed;
    match scenario {
        Scenario::Clean => {}
        Scenario::Chaos => {
            cfg.faults = Some(FaultPlan::new(FaultProfile::chaos(), 42));
        }
        Scenario::Drop20 => {
            cfg.faults = Some(FaultPlan::new(FaultProfile::drop_rate(0.20), 42));
            cfg.reliability = ReliabilityConfig::on();
        }
    }
    cfg
}

fn profile(ops: u64) -> AppProfile {
    AppProfile::by_name("fmm").expect("fmm profile").scaled(ops)
}

/// Everything observable about one run: the full stats listing, the
/// trace-stream digest and event count, and the queue high-water mark.
#[derive(Debug, PartialEq)]
struct RunPrint {
    stats: Vec<u8>,
    trace: (u64, u64),
    peak_queue: usize,
}

/// Runs a machine to completion and fingerprints it. `threads <= 1`
/// uses the serial engine directly; otherwise the parallel engine with
/// the given partition (contiguous arcs if `None`).
fn fingerprint(
    cfg: MachineConfig,
    profile: &AppProfile,
    threads: usize,
    partition: Option<Partition>,
) -> RunPrint {
    let mut m = Machine::new(cfg, profile);
    if let Some(p) = partition {
        m.set_partition(p);
    }
    let sink = DigestSink::new();
    m.set_trace_sink(Box::new(sink.clone()));
    let r = if threads <= 1 {
        m.try_run()
    } else {
        m.try_run_parallel(threads)
    }
    .unwrap_or_else(|stall| panic!("stalled at {threads} threads:\n{stall}"));
    assert!(r.finished, "hit the cycle cap at {threads} threads");
    let mut stats = Vec::new();
    r.write_stats(&mut stats).expect("Vec write cannot fail");
    RunPrint {
        stats,
        trace: sink.digest(),
        peak_queue: m.queue_peak(),
    }
}

/// Every protocol variant × every fault scenario, serial vs 2 and 4
/// total threads with the default contiguous partition.
#[test]
fn parallel_matches_serial_across_variants_and_scenarios() {
    let profile = profile(120);
    for variant in ProtocolVariant::ALL {
        for scenario in SCENARIOS {
            let cfg = cell_cfg(variant, scenario, 2007);
            let serial = fingerprint(cfg.clone(), &profile, 1, None);
            for threads in [2, 4] {
                let par = fingerprint(cfg.clone(), &profile, threads, None);
                assert_eq!(
                    par, serial,
                    "{variant} {scenario:?}: {threads}-thread run diverged from serial"
                );
            }
        }
    }
}

/// `try_run_parallel(1)` must *be* the serial engine (same code path,
/// zero cost), not merely agree with it.
#[test]
fn one_thread_is_the_serial_engine() {
    let profile = profile(120);
    let cfg = cell_cfg(ProtocolVariant::UncorqPref, Scenario::Drop20, 2007);
    let serial = fingerprint(cfg.clone(), &profile, 1, None);
    let one = fingerprint(cfg, &profile, 0, None); // threads=0 also delegates
    assert_eq!(one, serial);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Adversarial partition shapes: random (dense) node→LP maps must
    /// not change a single observable byte, for any variant, scenario,
    /// or worker count. The first `lps` nodes are pinned `i % lps` to
    /// keep the map dense, the rest are random — scattered,
    /// unbalanced, non-contiguous.
    #[test]
    fn random_partitions_are_unobservable(
        variant_i in 0usize..5,
        scenario_i in 0usize..3,
        lps in 2usize..5,
        raw_map in proptest::collection::vec(0usize..4, 16),
        seed in 1u64..1000,
    ) {
        let variant = ProtocolVariant::ALL[variant_i];
        let scenario = SCENARIOS[scenario_i];
        let mut map = raw_map;
        for (i, lp) in map.iter_mut().enumerate() {
            if i < lps {
                *lp = i % lps;
            } else {
                *lp %= lps;
            }
        }
        let part = Partition::from_map(map);
        let threads = part.lps() + 1;
        let profile = profile(60);
        let cfg = cell_cfg(variant, scenario, seed);
        let serial = fingerprint(cfg.clone(), &profile, 1, None);
        let par = fingerprint(cfg, &profile, threads, Some(part.clone()));
        prop_assert_eq!(
            &par,
            &serial,
            "{} {:?} seed {} partition {:?} diverged",
            variant,
            scenario,
            seed,
            part
        );
    }
}

/// Throughput probe (run with `--release -- --ignored --nocapture`):
/// the paper-scale 64-node uncorq+pref cell, serial vs 2 and 4 total
/// threads.
#[test]
#[ignore = "release-mode throughput probe, run explicitly"]
fn speedup_probe() {
    let mut cfg = MachineConfig::paper_uncorq_pref();
    cfg.seed = 2007;
    let profile = profile(150);
    let mut base = 0.0f64;
    for threads in [1usize, 2, 4] {
        let mut m = Machine::new(cfg.clone(), &profile);
        let start = std::time::Instant::now();
        let r = m.try_run_parallel(threads).expect("no stall");
        let dt = start.elapsed().as_secs_f64();
        assert!(r.finished);
        let evs = r.stats.events as f64;
        if threads == 1 {
            base = dt;
        }
        println!(
            "{threads} threads: {dt:.2}s  {:.2}M ev/s  speedup {:.2}x",
            evs / dt / 1e6,
            base / dt
        );
    }
}

/// Checkpoints written *by the parallel engine* mid-run must restore
/// and resume (again in parallel) to the same bytes as an
/// uninterrupted serial run — the parallel engine hits the same
/// checkpoint boundaries with the same quiescent state.
#[test]
fn parallel_checkpoint_restore_resumes_byte_identical() {
    let dir = std::env::temp_dir().join("ring-par-ckpt-test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let profile = profile(120);
    let cfg = cell_cfg(ProtocolVariant::UncorqPref, Scenario::Drop20, 2007);

    let serial = fingerprint(cfg.clone(), &profile, 1, None);

    // Parallel run that checkpoints every 5k cycles but is killed at
    // 20k by the cycle cap.
    let mut capped = cfg.clone();
    capped.max_cycles = 20_000;
    let mut m = Machine::new(capped, &profile);
    m.enable_checkpoints(5_000, &dir);
    let r = m
        .try_run_parallel(4)
        .unwrap_or_else(|stall| panic!("capped parallel run stalled:\n{stall}"));
    assert!(!r.finished, "cap must bite before completion");
    drop(m);

    // Resume from the latest parallel-written checkpoint, again in
    // parallel, with the trace sink re-attached for the tail. The
    // resumed report must match the uninterrupted serial bytes.
    let (mut m2, path) =
        restore_latest(&cfg, &profile, &dir).expect("restore from parallel checkpoint");
    let (_, at) = m2
        .restored_from()
        .expect("restored machine knows its source");
    assert!(
        at > 0,
        "restored from {} at cycle 0 — checkpoint never fired",
        path.display()
    );
    let r2 = m2
        .try_run_parallel(4)
        .unwrap_or_else(|stall| panic!("resumed parallel run stalled:\n{stall}"));
    assert!(r2.finished);
    let mut stats = Vec::new();
    r2.write_stats(&mut stats).unwrap();
    assert_eq!(
        stats, serial.stats,
        "parallel checkpoint/restore diverged from the uninterrupted serial run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
