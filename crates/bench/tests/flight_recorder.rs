//! Flight-recorder determinism at the machine level.
//!
//! The recorder is a pure function of the event stream, so two runs of
//! the same cell — in this thread, in another thread, with different
//! ring capacities, or spilling to a writer — must produce
//! byte-identical windowed snapshot streams.

use ring_coherence::ProtocolVariant;
use ring_system::{Machine, MachineConfig};
use ring_trace::{FlightConfig, FlightRecorder};
use ring_workloads::AppProfile;

const SEED: u64 = 2007;

fn recorded_jsonl(interval: u64, capacity: usize) -> String {
    let mut cfg = MachineConfig::with_protocol(ProtocolVariant::Uncorq.config());
    cfg.width = 4;
    cfg.height = 4;
    cfg.seed = SEED;
    let profile = AppProfile::by_name("fmm").expect("fmm").scaled(300);
    let mut m = Machine::new(cfg, &profile);
    m.enable_flight_recorder(FlightRecorder::new(FlightConfig { interval, capacity }));
    let r = m.try_run().expect("no stall");
    assert!(r.finished);
    let mut buf = Vec::new();
    m.flight()
        .expect("recorder installed")
        .write_jsonl(&mut buf)
        .expect("vec write");
    String::from_utf8(buf).expect("jsonl is utf8")
}

#[test]
fn same_seed_produces_byte_identical_snapshots() {
    let a = recorded_jsonl(2_000, 4096);
    let b = recorded_jsonl(2_000, 4096);
    assert!(!a.is_empty(), "run should record at least one window");
    assert_eq!(a, b, "same seed must spill identical window streams");
}

#[test]
fn snapshots_are_identical_across_threads() {
    let serial = recorded_jsonl(2_000, 4096);
    let threaded = std::thread::spawn(|| recorded_jsonl(2_000, 4096))
        .join()
        .expect("worker thread");
    assert_eq!(
        serial, threaded,
        "a run on a worker thread must record the same windows as a serial run"
    );
}

#[test]
fn ring_capacity_only_trims_the_window_stream() {
    let full = recorded_jsonl(2_000, 4096);
    let trimmed = recorded_jsonl(2_000, 2);
    let full_lines: Vec<&str> = full.lines().collect();
    let trimmed_lines: Vec<&str> = trimmed.lines().collect();
    assert_eq!(trimmed_lines.len(), 2.min(full_lines.len()));
    // The retained windows are the *last* ones, byte-for-byte.
    assert_eq!(
        &full_lines[full_lines.len() - trimmed_lines.len()..],
        &trimmed_lines[..],
        "a bounded ring must keep a suffix of the unbounded stream"
    );
}

#[test]
fn spill_writer_sees_every_window() {
    let mut cfg = MachineConfig::with_protocol(ProtocolVariant::Uncorq.config());
    cfg.width = 4;
    cfg.height = 4;
    cfg.seed = SEED;
    let profile = AppProfile::by_name("fmm").expect("fmm").scaled(300);
    let spill = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));

    struct Shared(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);
    impl std::io::Write for Shared {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let mut m = Machine::new(cfg, &profile);
    m.enable_flight_recorder(FlightRecorder::with_spill(
        FlightConfig {
            interval: 2_000,
            capacity: 2, // far smaller than the window count
        },
        Box::new(Shared(spill.clone())),
    ));
    m.try_run().expect("no stall");
    let spilled = String::from_utf8(spill.lock().unwrap().clone()).expect("utf8");
    let unbounded = recorded_jsonl(2_000, 4096);
    assert_eq!(
        spilled, unbounded,
        "the spill must carry the full stream even when the ring drops windows"
    );
}
