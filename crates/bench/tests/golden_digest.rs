//! Golden determinism digests.
//!
//! Runs every [`ProtocolVariant`] at 16 and 64 nodes, hashes the full
//! `Report` stats listing and the complete trace-event stream, and
//! asserts the digests match the checked-in golden values. The goldens
//! were recorded on the pre-optimization simulator (BinaryHeap event
//! queue, allocating hot path), so this test proves the calendar-queue
//! rewrite and the allocation-free delivery paths are *byte-identical*
//! in observable behavior — same event order, same timing, same trace.
//!
//! A second test runs the same grid through the sweep runner serially
//! and in parallel and asserts the results agree field-for-field.
//!
//! To regenerate after an *intentional* behavior change:
//! `cargo test --release -p bench --test golden_digest -- --ignored --nocapture`
//! and paste the printed table over `GOLDEN`.

use bench::sweep::{report_digest, run_sweep, DigestSink, SweepCell};
use ring_coherence::ProtocolVariant;
use ring_noc::{FaultPlan, FaultProfile, ReliabilityConfig};
use ring_system::{restore_latest, Machine, MachineConfig};
use ring_trace::SharedBufferSink;
use ring_workloads::AppProfile;

/// Seed shared by every golden cell.
const SEED: u64 = 2007;

/// Per-core ops: small enough for debug-mode CI, large enough that every
/// protocol path (retries, squashes, starvation, prefetch) is exercised.
fn ops_for(nodes: usize) -> u64 {
    if nodes >= 64 {
        150
    } else {
        400
    }
}

/// `(report digest, trace digest, trace events)` of one run, with the
/// full trace stream enabled. `threads <= 1` runs the serial engine;
/// otherwise the conservative-PDES parallel engine.
fn digest_cell_at(
    variant: ProtocolVariant,
    width: usize,
    height: usize,
    threads: usize,
) -> (u64, u64, u64) {
    let mut cfg = MachineConfig::with_protocol(variant.config());
    cfg.width = width;
    cfg.height = height;
    cfg.seed = SEED;
    let profile = AppProfile::by_name("fmm")
        .expect("fmm")
        .scaled(ops_for(width * height));
    let mut m = Machine::new(cfg, &profile);
    let sink = DigestSink::new();
    m.set_trace_sink(Box::new(sink.clone()));
    let run = if threads <= 1 {
        m.try_run()
    } else {
        m.try_run_parallel(threads)
    };
    let r = match run {
        Ok(r) => r,
        Err(stall) => panic!("{variant} {width}x{height} x{threads}t stalled:\n{stall}"),
    };
    assert!(
        r.finished,
        "{variant} {width}x{height} x{threads}t hit the cycle cap"
    );
    let (trace_digest, trace_events) = sink.digest();
    (report_digest(&r), trace_digest, trace_events)
}

fn digest_cell(variant: ProtocolVariant, width: usize, height: usize) -> (u64, u64, u64) {
    digest_cell_at(variant, width, height, 1)
}

/// `(variant, width, height, report digest, trace digest, trace events)`
/// recorded on the pre-optimization simulator.
const GOLDEN: &[(ProtocolVariant, usize, usize, u64, u64, u64)] = &[
    (
        ProtocolVariant::Eager,
        4,
        4,
        0x3fa1b4a9e9e29c08,
        0xaa08a3469269f925,
        37208,
    ),
    (
        ProtocolVariant::SupersetCon,
        4,
        4,
        0x5ba66fbb24b7d709,
        0xd60874c5164bce4f,
        37095,
    ),
    (
        ProtocolVariant::SupersetAgg,
        4,
        4,
        0xedca4e1640a73873,
        0x0db5cb39f4899c4a,
        37208,
    ),
    (
        ProtocolVariant::Uncorq,
        4,
        4,
        0x5d57397ca3c24e1f,
        0x1092ccdfe4e4dc57,
        25311,
    ),
    (
        ProtocolVariant::UncorqPref,
        4,
        4,
        0x588c53120d6f0366,
        0x63bb9258fd43f400,
        25399,
    ),
    (
        ProtocolVariant::Eager,
        8,
        8,
        0xe61de939eaa3811f,
        0x902337469924299b,
        231783,
    ),
    (
        ProtocolVariant::SupersetCon,
        8,
        8,
        0x0290037a569dbd1b,
        0xb042dd01e6061654,
        230890,
    ),
    (
        ProtocolVariant::SupersetAgg,
        8,
        8,
        0x1b9c8516a4717dfb,
        0x600c3f5b681ca010,
        231787,
    ),
    (
        ProtocolVariant::Uncorq,
        8,
        8,
        0x67e1a8037f522dcb,
        0xd24dc7edfb833ac3,
        164162,
    ),
    (
        ProtocolVariant::UncorqPref,
        8,
        8,
        0xa4dab23de0a6dc95,
        0x0f5c5e173756d94c,
        164704,
    ),
];

fn check(nodes: usize) {
    let mut checked = 0;
    for &(variant, w, h, report, trace, events) in GOLDEN {
        if w * h != nodes {
            continue;
        }
        let (r, t, n) = digest_cell(variant, w, h);
        assert_eq!(
            (r, t, n),
            (report, trace, events),
            "{variant} at {w}x{h}: digests diverged from pre-optimization golden \
             (report {r:#018x} vs {report:#018x}, trace {t:#018x} vs {trace:#018x}, \
             {n} vs {events} events)"
        );
        checked += 1;
    }
    assert_eq!(
        checked,
        ProtocolVariant::ALL.len(),
        "golden table incomplete for {nodes} nodes"
    );
}

#[test]
fn golden_digests_16_nodes() {
    check(16);
}

#[test]
fn golden_digests_64_nodes() {
    check(64);
}

/// A disabled reliability sublayer is provably zero-cost: with
/// `ReliabilityConfig::disabled()` set *explicitly*, every run still
/// reproduces the pre-reliability golden digests byte-for-byte — same
/// event order, same timing, same trace stream.
#[test]
fn disabled_reliability_reproduces_golden_digests() {
    for &(variant, w, h, report, trace, events) in GOLDEN {
        if w * h != 16 {
            continue; // 4x4 covers all variants; 8x8 runs in the check above
        }
        let mut cfg = MachineConfig::with_protocol(variant.config());
        cfg.width = w;
        cfg.height = h;
        cfg.seed = SEED;
        cfg.reliability = ReliabilityConfig::disabled();
        let profile = AppProfile::by_name("fmm")
            .expect("fmm")
            .scaled(ops_for(w * h));
        let mut m = Machine::new(cfg, &profile);
        let sink = DigestSink::new();
        m.set_trace_sink(Box::new(sink.clone()));
        let r = m.try_run().expect("no stall");
        let (t, n) = sink.digest();
        assert_eq!(
            (report_digest(&r), t, n),
            (report, trace, events),
            "{variant} at {w}x{h}: disabled reliability must be byte-identical to golden"
        );
    }
}

/// The flight recorder is pure observation: with a recorder installed
/// (and actively sampling every 1000 cycles), every run still
/// reproduces the golden digests byte-for-byte — same event order,
/// same timing, same trace stream, same report.
#[test]
fn flight_recorder_reproduces_golden_digests() {
    use ring_trace::{FlightConfig, FlightRecorder};
    for &(variant, w, h, report, trace, events) in GOLDEN {
        if w * h != 16 {
            continue; // 4x4 covers all variants; 8x8 runs in the check above
        }
        let mut cfg = MachineConfig::with_protocol(variant.config());
        cfg.width = w;
        cfg.height = h;
        cfg.seed = SEED;
        let profile = AppProfile::by_name("fmm")
            .expect("fmm")
            .scaled(ops_for(w * h));
        let mut m = Machine::new(cfg, &profile);
        m.enable_flight_recorder(FlightRecorder::new(FlightConfig::with_interval(1000)));
        let sink = DigestSink::new();
        m.set_trace_sink(Box::new(sink.clone()));
        let r = m.try_run().expect("no stall");
        let (t, n) = sink.digest();
        assert_eq!(
            (report_digest(&r), t, n),
            (report, trace, events),
            "{variant} at {w}x{h}: an installed flight recorder must be byte-identical to golden"
        );
        assert!(
            !m.flight().expect("recorder stays installed").is_empty(),
            "{variant} at {w}x{h}: the recorder should have captured windows"
        );
    }
}

/// Active checkpointing is pure observation: with snapshots being
/// written every 2000 cycles, every run still reproduces the golden
/// digests byte-for-byte — same event order, same timing, same trace
/// stream, same report. (This is the `--checkpoint-every N` guarantee;
/// `--checkpoint-every 0` is the no-op construction the other golden
/// tests already pin down.)
#[test]
fn active_checkpointing_reproduces_golden_digests() {
    for &(variant, w, h, report, trace, events) in GOLDEN {
        if w * h != 16 {
            continue; // 4x4 covers all variants; 8x8 runs in the check above
        }
        let dir = std::env::temp_dir().join(format!("golden-ckpt-active-{variant:?}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("checkpoint dir");
        let mut cfg = MachineConfig::with_protocol(variant.config());
        cfg.width = w;
        cfg.height = h;
        cfg.seed = SEED;
        let profile = AppProfile::by_name("fmm")
            .expect("fmm")
            .scaled(ops_for(w * h));
        let mut m = Machine::new(cfg, &profile);
        m.enable_checkpoints(2000, &dir);
        let sink = DigestSink::new();
        m.set_trace_sink(Box::new(sink.clone()));
        let r = m.try_run().expect("no stall");
        let (t, n) = sink.digest();
        assert_eq!(
            (report_digest(&r), t, n),
            (report, trace, events),
            "{variant} at {w}x{h}: active checkpointing must be byte-identical to golden"
        );
        assert!(
            !ring_system::list_checkpoints(&dir).is_empty(),
            "{variant} at {w}x{h}: the run should have left checkpoints behind"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Kills a checkpointing run mid-flight, restores from the newest
/// checkpoint, resumes, and asserts the final report is byte-identical
/// to `want` and the resumed trace stream is exactly the reference
/// trace's post-checkpoint suffix.
fn assert_crash_recovery_identical(cfg: MachineConfig, label: &str) {
    let profile = AppProfile::by_name("fmm")
        .expect("fmm")
        .scaled(ops_for(cfg.width * cfg.height));

    let mut m = Machine::new(cfg.clone(), &profile);
    let sink = SharedBufferSink::new();
    m.set_trace_sink(Box::new(sink.clone()));
    let want = match m.try_run() {
        Ok(r) => r,
        Err(stall) => panic!("{label}: reference run stalled:\n{stall}"),
    };
    assert!(want.finished, "{label}: reference hit the cycle cap");
    let reference_events = sink.snapshot();

    let kill_at = want.exec_cycles / 2;
    let every = (kill_at / 3).max(1);
    let dir = std::env::temp_dir().join(format!("golden-ckpt-{label}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("checkpoint dir");
    let mut killed = cfg.clone();
    killed.max_cycles = kill_at;
    let mut m = Machine::new(killed, &profile);
    m.enable_checkpoints(every, &dir);
    let _ = m.try_run(); // dies at the kill cycle; only the trail matters

    let (mut m, _used) = restore_latest(&cfg, &profile, &dir)
        .unwrap_or_else(|e| panic!("{label}: restore failed: {e}"));
    let (_, ckpt_cycle) = m.restored_from().expect("restored machine has provenance");
    let sink = SharedBufferSink::new();
    m.set_trace_sink(Box::new(sink.clone()));
    let got = match m.try_run() {
        Ok(r) => r,
        Err(stall) => panic!("{label}: resumed run stalled:\n{stall}"),
    };

    let (mut a, mut b) = (Vec::new(), Vec::new());
    want.write_stats(&mut a).expect("Vec write");
    got.write_stats(&mut b).expect("Vec write");
    assert_eq!(
        a, b,
        "{label}: resumed report diverged from the uninterrupted run"
    );
    let resumed = sink.snapshot();
    let suffix: Vec<_> = reference_events
        .iter()
        .filter(|ev| ev.cycle >= ckpt_cycle)
        .cloned()
        .collect();
    assert!(
        suffix == resumed,
        "{label}: resumed trace diverged ({} events vs {} in the reference suffix, \
         checkpoint cycle {ckpt_cycle})",
        resumed.len(),
        suffix.len()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Crash recovery is byte-identical for every protocol variant on a
/// clean network: kill at mid-run, restore from the newest checkpoint,
/// resume, and the final report and post-checkpoint trace stream match
/// the uninterrupted (golden) run exactly.
#[test]
fn crash_recovery_is_byte_identical_for_all_variants() {
    for &(variant, w, h, report, _, _) in GOLDEN {
        if w * h != 16 {
            continue;
        }
        let mut cfg = MachineConfig::with_protocol(variant.config());
        cfg.width = w;
        cfg.height = h;
        cfg.seed = SEED;
        // Cross-check against the golden table too: the reference run
        // inside the helper must itself be the golden run.
        let profile = AppProfile::by_name("fmm")
            .expect("fmm")
            .scaled(ops_for(w * h));
        let r = Machine::new(cfg.clone(), &profile).run();
        assert_eq!(
            report_digest(&r),
            report,
            "{variant}: reference diverged from golden before the drill even started"
        );
        assert_crash_recovery_identical(cfg, &format!("{variant:?}-clean"));
    }
}

/// Crash recovery is byte-identical for every protocol variant under
/// the `chaos` fault profile (jitter + reorder + duplication +
/// congestion) and under `drop20` (20% frame loss) with the reliable
/// sublayer recovering the losses.
#[test]
fn crash_recovery_is_byte_identical_under_chaos_and_loss() {
    for variant in ProtocolVariant::ALL {
        for profile_name in ["chaos", "drop20"] {
            let fault = FaultProfile::by_name(profile_name).expect("built-in fault profile");
            let mut cfg = MachineConfig::with_protocol(variant.config());
            cfg.width = 4;
            cfg.height = 4;
            cfg.seed = SEED;
            cfg.faults = Some(FaultPlan::new(fault, 1));
            if fault.needs_reliability() {
                cfg.reliability = ReliabilityConfig::on();
            }
            assert_crash_recovery_identical(cfg, &format!("{variant:?}-{profile_name}"));
        }
    }
}

/// The conservative-PDES parallel engine reproduces every golden cell
/// byte-for-byte at 2 and 4 total threads — all 10 `(variant, grid)`
/// cells, including the paper-scale 64-node grid, hit the *same*
/// digests as the serial (and pre-optimization) engine. Worker count
/// is unobservable.
#[test]
fn parallel_engine_reproduces_golden_digests() {
    for &(variant, w, h, report, trace, events) in GOLDEN {
        for threads in [2usize, 4] {
            let (r, t, n) = digest_cell_at(variant, w, h, threads);
            assert_eq!(
                (r, t, n),
                (report, trace, events),
                "{variant} at {w}x{h} with {threads} threads: parallel engine \
                 diverged from golden (report {r:#018x} vs {report:#018x}, \
                 trace {t:#018x} vs {trace:#018x}, {n} vs {events} events)"
            );
        }
    }
}

#[test]
fn sweep_serial_and_parallel_agree_on_golden_grid() {
    let cells: Vec<SweepCell> = ProtocolVariant::ALL
        .into_iter()
        .map(|variant| SweepCell {
            variant,
            app: "fmm".into(),
            width: 4,
            height: 4,
            seed: SEED,
            ops: ops_for(16),
        })
        .collect();
    let serial = run_sweep(&cells, 1);
    let parallel = run_sweep(&cells, 4);
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(
            s.determinism_key(),
            p.determinism_key(),
            "parallel sweep diverged from serial"
        );
    }
}

/// Prints the golden table (run with `--ignored --nocapture` to
/// regenerate after an intentional behavior change).
#[test]
#[ignore = "golden regeneration helper, not a check"]
fn print_golden_table() {
    for (w, h) in [(4usize, 4usize), (8, 8)] {
        for variant in ProtocolVariant::ALL {
            let (r, t, n) = digest_cell(variant, w, h);
            println!("    (ProtocolVariant::{variant:?}, {w}, {h}, {r:#018x}, {t:#018x}, {n}),");
        }
    }
}
