//! Deterministic `(protocol × workload × seed)` sweep runner.
//!
//! Every cell of the grid is an independent simulation: it owns its
//! [`Machine`], its seeded RNG, and its workload streams, so cells can be
//! fanned across `std::thread` workers and the *simulation results*
//! (report digests, event counts, cycle counts) are byte-identical to a
//! serial sweep — only the wall-clock fields differ. The
//! `bench_sweep` binary drives this module and emits the machine-readable
//! `BENCH_machine.json` perf trajectory (see EXPERIMENTS.md for the
//! schema and recipe).

use std::io::{self, Write};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Instant;

use ring_coherence::ProtocolVariant;
use ring_system::{Machine, MachineConfig, Report};
use ring_trace::{TraceEvent, TraceSink};
use ring_workloads::AppProfile;

/// Schema identifier written into every `BENCH_machine.json`.
///
/// v2 adds per-row read-latency percentiles (`lat_p50`, `lat_p99`) and
/// a top-level `git_commit` stamp. [`parse_bench_json`] still reads v1
/// documents (the extra fields are simply absent); cross-schema
/// comparisons should warn, not fail — see [`parse_bench_schema`].
pub const BENCH_SCHEMA: &str = "uncorq-bench-v2";

/// The previous schema identifier, still accepted as a baseline.
pub const BENCH_SCHEMA_V1: &str = "uncorq-bench-v1";

/// The `"schema"` field of a `BENCH_machine.json` document, if present
/// (v0 prototypes had none).
pub fn parse_bench_schema(text: &str) -> Option<String> {
    text.lines()
        .find_map(|l| json_field(l.trim_start(), "schema"))
        .map(str::to_string)
}

/// The current git commit hash, for stamping measurement rows back to
/// the code that produced them. Falls back to `"unknown"` outside a
/// git checkout (or without git on PATH).
pub fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// One cell of the sweep grid.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// Protocol variant to run.
    pub variant: ProtocolVariant,
    /// Application profile name (see `AppProfile::by_name`).
    pub app: String,
    /// Torus width.
    pub width: usize,
    /// Torus height.
    pub height: usize,
    /// Machine seed.
    pub seed: u64,
    /// Per-core operation count the profile is scaled to.
    pub ops: u64,
}

impl SweepCell {
    /// The machine configuration this cell runs.
    pub fn config(&self) -> MachineConfig {
        let mut cfg = MachineConfig::with_protocol(self.variant.config());
        cfg.width = self.width;
        cfg.height = self.height;
        cfg.seed = self.seed;
        cfg
    }

    /// Number of nodes in this cell's machine.
    pub fn nodes(&self) -> usize {
        self.width * self.height
    }

    /// Human-readable cell label, e.g. `uncorq/64n/fmm@2007`.
    pub fn label(&self) -> String {
        format!(
            "{}/{}n/{}@{}",
            self.variant.name(),
            self.nodes(),
            self.app,
            self.seed
        )
    }
}

/// The measurement of one completed cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Protocol variant name.
    pub protocol: String,
    /// Node count.
    pub nodes: usize,
    /// Application name.
    pub app: String,
    /// Machine seed.
    pub seed: u64,
    /// Per-core operation count.
    pub ops: u64,
    /// Total OS threads the *simulation engine* ran on (1 = serial
    /// engine; >1 = conservative-PDES parallel engine with `workers-1`
    /// phase-A workers). Orthogonal to the sweep-level thread fan-out:
    /// that parallelizes across cells, this parallelizes inside one.
    pub workers: usize,
    /// Whether every core ran to completion.
    pub finished: bool,
    /// Execution time of the simulated machine, in cycles.
    pub exec_cycles: u64,
    /// Events processed by the event queue.
    pub events: u64,
    /// Peak pending-event count (queue working set).
    pub peak_queue: usize,
    /// Wall-clock seconds spent inside `Machine::run`.
    pub wall_secs: f64,
    /// Simulation throughput, events per wall-clock second.
    pub events_per_sec: f64,
    /// FNV-1a digest of the full stats listing ([`report_digest`]).
    pub digest: u64,
    /// Median read-miss completion latency in cycles (p50 over both
    /// cache-to-cache and memory-serviced reads).
    pub lat_p50: u64,
    /// 99th-percentile read-miss completion latency in cycles.
    pub lat_p99: u64,
}

impl CellResult {
    /// Every deterministic field — everything except the wall-clock
    /// measurements *and the worker count*. Serial and parallel sweeps
    /// of the same grid must produce identical keys, in the same
    /// order, and the parallel engine's whole contract is that the
    /// worker count is unobservable.
    pub fn determinism_key(&self) -> String {
        format!(
            "{}/{}/{}/{}/{}/{}/{}/{}/{}/{:016x}",
            self.protocol,
            self.nodes,
            self.app,
            self.seed,
            self.ops,
            self.finished,
            self.exec_cycles,
            self.events,
            self.peak_queue,
            self.digest
        )
    }
}

/// Runs one cell: builds the machine, runs it to completion, and times
/// only the simulation loop (construction is excluded).
pub fn run_cell(cell: &SweepCell) -> CellResult {
    run_cell_repeat(cell, 1)
}

/// [`run_cell`] on the serial engine with best-of-`repeat` timing.
pub fn run_cell_repeat(cell: &SweepCell, repeat: usize) -> CellResult {
    run_cell_workers(cell, repeat, 1)
}

/// Runs the cell `repeat` times on `workers` total engine threads
/// (`<= 1` = serial engine, `> 1` = the conservative-PDES parallel
/// engine) and keeps the best (smallest) wall time — the standard
/// guard against scheduler noise on shared machines. Every repeat must
/// produce an identical report digest (they are the same deterministic
/// simulation), which doubles as a free determinism check — and
/// because the parallel engine is digest-identical to serial, the same
/// check catches any engine divergence.
///
/// # Panics
///
/// Panics if two repeats disagree on the report digest.
pub fn run_cell_workers(cell: &SweepCell, repeat: usize, workers: usize) -> CellResult {
    let profile = AppProfile::by_name(&cell.app)
        .unwrap_or_else(|| panic!("unknown app profile {}", cell.app))
        .scaled(cell.ops);
    let mut wall = f64::INFINITY;
    let mut best: Option<(Report, usize)> = None;
    for _ in 0..repeat.max(1) {
        let mut m = Machine::new(cell.config(), &profile);
        let start = Instant::now();
        let report = if workers > 1 {
            m.run_parallel(workers)
        } else {
            m.run()
        };
        let w = start.elapsed().as_secs_f64();
        if let Some((prev, _)) = &best {
            assert_eq!(
                report_digest(prev),
                report_digest(&report),
                "nondeterministic repeat of cell {}",
                cell.label()
            );
        }
        if w < wall || best.is_none() {
            wall = w;
            best = Some((report, m.queue_peak()));
        }
    }
    let (report, peak_queue) = best.expect("at least one repeat runs");
    let events = report.stats.events;
    let reads = report.stats.class_latency.reads();
    CellResult {
        protocol: cell.variant.name().to_string(),
        nodes: cell.nodes(),
        app: cell.app.clone(),
        seed: cell.seed,
        ops: cell.ops,
        workers: workers.max(1),
        finished: report.finished,
        exec_cycles: report.exec_cycles,
        events,
        peak_queue,
        wall_secs: wall,
        events_per_sec: if wall > 0.0 {
            events as f64 / wall
        } else {
            0.0
        },
        digest: report_digest(&report),
        lat_p50: reads.p50(),
        lat_p99: reads.p99(),
    }
}

/// Runs the whole grid. `threads <= 1` runs serially in grid order;
/// otherwise cells are claimed from a shared counter by `threads`
/// workers and the results are re-assembled in grid order, so the
/// output order (and every deterministic field) is identical to the
/// serial run.
pub fn run_sweep(cells: &[SweepCell], threads: usize) -> Vec<CellResult> {
    run_sweep_repeat(cells, threads, 1)
}

/// [`run_sweep`] with per-cell best-of-`repeat` timing (see
/// [`run_cell_repeat`]).
pub fn run_sweep_repeat(cells: &[SweepCell], threads: usize, repeat: usize) -> Vec<CellResult> {
    run_sweep_workers(cells, threads, repeat, 1)
}

/// [`run_sweep_repeat`] with each cell itself running on `workers`
/// engine threads (see [`run_cell_workers`]). Cross-cell fan-out
/// (`threads`) and in-cell parallelism (`workers`) compose, but for
/// clean wall-clock numbers use one or the other, not both.
pub fn run_sweep_workers(
    cells: &[SweepCell],
    threads: usize,
    repeat: usize,
    workers: usize,
) -> Vec<CellResult> {
    if threads <= 1 || cells.len() <= 1 {
        return cells
            .iter()
            .map(|c| run_cell_workers(c, repeat, workers))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, CellResult)>();
    std::thread::scope(|s| {
        for _ in 0..threads.min(cells.len()) {
            let tx = tx.clone();
            let next = &next;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= cells.len() {
                    break;
                }
                // A worker panicking (bad cell) drops `tx`; the
                // collector below then reports the missing cell.
                let _ = tx.send((i, run_cell_workers(&cells[i], repeat, workers)));
            });
        }
        drop(tx);
        let mut slots: Vec<Option<CellResult>> = vec![None; cells.len()];
        for (i, r) in rx {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(i, r)| r.unwrap_or_else(|| panic!("cell {} never completed", cells[i].label())))
            .collect()
    })
}

/// 64-bit FNV-1a over a byte string.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Digest of a run's full plain-text stats listing: two runs with the
/// same digest produced identical reports, field for field.
pub fn report_digest(r: &Report) -> u64 {
    let mut buf = Vec::new();
    r.write_stats(&mut buf)
        .expect("writing to a Vec cannot fail");
    fnv1a(&buf)
}

/// A [`TraceSink`] that folds every event's canonical JSONL rendering
/// into an FNV-1a digest — a cheap fingerprint of the complete trace
/// stream. Clones share state: install one clone into the machine and
/// read the digest from the other.
#[derive(Debug, Clone, Default)]
pub struct DigestSink {
    state: std::sync::Arc<std::sync::Mutex<(u64, u64)>>,
}

impl DigestSink {
    /// A fresh digest (FNV offset basis, zero events).
    pub fn new() -> Self {
        DigestSink {
            state: std::sync::Arc::new(std::sync::Mutex::new((0xcbf2_9ce4_8422_2325, 0))),
        }
    }

    /// `(digest, events recorded)` so far.
    pub fn digest(&self) -> (u64, u64) {
        *self.state.lock().unwrap()
    }
}

impl TraceSink for DigestSink {
    fn record(&mut self, ev: &TraceEvent) {
        let mut st = self.state.lock().unwrap();
        for &b in ev.to_jsonl().as_bytes() {
            st.0 ^= b as u64;
            st.0 = st.0.wrapping_mul(0x100_0000_01b3);
        }
        st.0 ^= b'\n' as u64;
        st.0 = st.0.wrapping_mul(0x100_0000_01b3);
        st.1 += 1;
    }
}

/// One row of a previously recorded `BENCH_machine.json`, as needed for
/// regression comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineRow {
    /// Protocol variant name.
    pub protocol: String,
    /// Node count.
    pub nodes: usize,
    /// Application name.
    pub app: String,
    /// Machine seed.
    pub seed: u64,
    /// Per-core operation count.
    pub ops: u64,
    /// Engine thread count the row was recorded at (1 when the
    /// baseline predates the parallel engine and has no field).
    pub workers: usize,
    /// Recorded throughput.
    pub events_per_sec: f64,
}

/// The outcome of comparing a fresh sweep against a recorded baseline.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Path the baseline was loaded from (for the JSON emission).
    pub baseline_path: String,
    /// `(row, baseline events/sec, ratio new/old)` per matched cell.
    pub matched: Vec<(String, f64, f64)>,
    /// Cells of the fresh sweep with no baseline row.
    pub unmatched: Vec<String>,
    /// Smallest new/old throughput ratio across matched cells.
    pub min_ratio: f64,
}

/// Matches fresh results against baseline rows by
/// `(protocol, nodes, app, seed, ops, workers)` and computes
/// throughput ratios. Worker counts must match because serial and
/// parallel-engine rows measure different things — a 4-worker row is
/// never a regression gate for a serial run or vice versa.
pub fn compare(results: &[CellResult], baseline: &[BaselineRow], path: &str) -> Comparison {
    let mut matched = Vec::new();
    let mut unmatched = Vec::new();
    let mut min_ratio = f64::INFINITY;
    for r in results {
        let hit = baseline.iter().find(|b| {
            b.protocol == r.protocol
                && b.nodes == r.nodes
                && b.app == r.app
                && b.seed == r.seed
                && b.ops == r.ops
                && b.workers == r.workers
        });
        let key = format!(
            "{}/{}n/{}@{}x{}w",
            r.protocol, r.nodes, r.app, r.seed, r.workers
        );
        match hit {
            Some(b) if b.events_per_sec > 0.0 => {
                let ratio = r.events_per_sec / b.events_per_sec;
                min_ratio = min_ratio.min(ratio);
                matched.push((key, b.events_per_sec, ratio));
            }
            _ => unmatched.push(key),
        }
    }
    if matched.is_empty() {
        min_ratio = 0.0;
    }
    Comparison {
        baseline_path: path.to_string(),
        matched,
        unmatched,
        min_ratio,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn write_row<W: Write>(w: &mut W, r: &CellResult, last: bool) -> io::Result<()> {
    writeln!(
        w,
        "    {{\"protocol\": \"{}\", \"nodes\": {}, \"app\": \"{}\", \"seed\": {}, \
         \"ops\": {}, \"workers\": {}, \"finished\": {}, \"exec_cycles\": {}, \"events\": {}, \
         \"peak_queue\": {}, \"wall_secs\": {:.4}, \"events_per_sec\": {:.0}, \
         \"lat_p50\": {}, \"lat_p99\": {}, \"digest\": \"{:016x}\"}}{}",
        json_escape(&r.protocol),
        r.nodes,
        json_escape(&r.app),
        r.seed,
        r.ops,
        r.workers,
        r.finished,
        r.exec_cycles,
        r.events,
        r.peak_queue,
        r.wall_secs,
        r.events_per_sec,
        r.lat_p50,
        r.lat_p99,
        r.digest,
        if last { "" } else { "," }
    )
}

/// Writes the `BENCH_machine.json` document: one row object per line
/// (which keeps [`parse_bench_json`] a line scanner), a `baseline`
/// section when a comparison was run, and a free-form `note`.
pub fn write_bench_json<W: Write>(
    w: &mut W,
    note: &str,
    threads: usize,
    rows: &[CellResult],
    cmp: Option<&Comparison>,
) -> io::Result<()> {
    writeln!(w, "{{")?;
    writeln!(w, "  \"schema\": \"{BENCH_SCHEMA}\",")?;
    writeln!(w, "  \"git_commit\": \"{}\",", json_escape(&git_commit()))?;
    writeln!(w, "  \"note\": \"{}\",", json_escape(note))?;
    writeln!(w, "  \"threads\": {threads},")?;
    writeln!(w, "  \"rows\": [")?;
    for (i, r) in rows.iter().enumerate() {
        write_row(w, r, i + 1 == rows.len())?;
    }
    writeln!(w, "  ]{}", if cmp.is_some() { "," } else { "" })?;
    if let Some(c) = cmp {
        // parse_bench_json stops at this key, so the nested per-cell
        // ratios below are never mistaken for fresh measurement rows.
        writeln!(w, "  \"baseline\": {{")?;
        writeln!(w, "    \"path\": \"{}\",", json_escape(&c.baseline_path))?;
        writeln!(w, "    \"min_ratio\": {:.4},", c.min_ratio)?;
        writeln!(w, "    \"cells\": [")?;
        for (i, (key, old, ratio)) in c.matched.iter().enumerate() {
            writeln!(
                w,
                "      {{\"cell\": \"{}\", \"baseline_events_per_sec\": {:.0}, \
                 \"ratio\": {:.4}}}{}",
                json_escape(key),
                old,
                ratio,
                if i + 1 == c.matched.len() { "" } else { "," }
            )?;
        }
        writeln!(w, "    ]")?;
        writeln!(w, "  }}")?;
    }
    writeln!(w, "}}")
}

/// Extracts `"key": <value>` from one JSON row line. Returns the raw
/// value token (string values without their quotes).
fn json_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.split('"').next()
    } else {
        rest.split([',', '}']).next().map(str::trim)
    }
}

/// Reads the measurement rows back out of a `BENCH_machine.json`
/// emitted by [`write_bench_json`]. The format is line-oriented by
/// construction: one row object per line, and parsing stops at the
/// `"baseline"` section so recorded comparison data is not re-read as
/// measurements. Malformed lines are skipped.
pub fn parse_bench_json(text: &str) -> Vec<BaselineRow> {
    let mut rows = Vec::new();
    for line in text.lines() {
        let t = line.trim_start();
        if t.starts_with("\"baseline\"") {
            break;
        }
        let (Some(protocol), Some(nodes), Some(app), Some(seed), Some(ops), Some(eps)) = (
            json_field(t, "protocol"),
            json_field(t, "nodes"),
            json_field(t, "app"),
            json_field(t, "seed"),
            json_field(t, "ops"),
            json_field(t, "events_per_sec"),
        ) else {
            continue;
        };
        let (Ok(nodes), Ok(seed), Ok(ops), Ok(events_per_sec)) =
            (nodes.parse(), seed.parse(), ops.parse(), eps.parse())
        else {
            continue;
        };
        // Rows written before the parallel engine carry no "workers"
        // field; they were all serial-engine measurements.
        let workers = json_field(t, "workers")
            .and_then(|v| v.parse().ok())
            .unwrap_or(1);
        rows.push(BaselineRow {
            protocol: protocol.to_string(),
            nodes,
            app: app.to_string(),
            seed,
            ops,
            workers,
            events_per_sec,
        });
    }
    rows
}

/// The default sweep grid: every [`ProtocolVariant`] on 16- and 64-node
/// tori, one application, one seed.
pub fn default_grid(
    apps: &[String],
    seeds: &[u64],
    ops: u64,
    grids: &[(usize, usize)],
) -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for &(width, height) in grids {
        for variant in ProtocolVariant::ALL {
            for app in apps {
                for &seed in seeds {
                    cells.push(SweepCell {
                        variant,
                        app: app.clone(),
                        width,
                        height,
                        seed,
                        ops,
                    });
                }
            }
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cells() -> Vec<SweepCell> {
        vec![
            SweepCell {
                variant: ProtocolVariant::Eager,
                app: "fmm".into(),
                width: 4,
                height: 4,
                seed: 7,
                ops: 60,
            },
            SweepCell {
                variant: ProtocolVariant::Uncorq,
                app: "fmm".into(),
                width: 4,
                height: 4,
                seed: 7,
                ops: 60,
            },
            SweepCell {
                variant: ProtocolVariant::UncorqPref,
                app: "fmm".into(),
                width: 4,
                height: 4,
                seed: 9,
                ops: 60,
            },
        ]
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn serial_and_parallel_sweeps_are_identical() {
        let cells = tiny_cells();
        let serial = run_sweep(&cells, 1);
        let parallel = run_sweep(&cells, 4);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.determinism_key(), p.determinism_key());
        }
    }

    #[test]
    fn run_cell_measures_and_digests() {
        let r = run_cell(&tiny_cells()[0]);
        assert!(r.finished);
        assert!(r.events > 0);
        assert!(r.peak_queue > 0);
        assert!(r.events_per_sec > 0.0);
        // Same cell twice: identical digest, independent wall clock.
        let r2 = run_cell(&tiny_cells()[0]);
        assert_eq!(r.digest, r2.digest);
        assert_eq!(r.determinism_key(), r2.determinism_key());
    }

    #[test]
    fn bench_json_roundtrips_through_parser() {
        let rows = run_sweep(&tiny_cells()[..2], 1);
        let cmp = compare(&rows, &parse_bench_json(""), "none");
        assert_eq!(cmp.matched.len(), 0);
        let mut buf = Vec::new();
        write_bench_json(&mut buf, "test", 1, &rows, None).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let parsed = parse_bench_json(&text);
        assert_eq!(parsed.len(), rows.len());
        for (b, r) in parsed.iter().zip(&rows) {
            assert_eq!(b.protocol, r.protocol);
            assert_eq!(b.nodes, r.nodes);
            assert_eq!(b.ops, r.ops);
            assert!((b.events_per_sec - r.events_per_sec).abs() <= 1.0);
        }
    }

    #[test]
    fn comparison_flags_regressions_via_min_ratio() {
        let rows = run_sweep(&tiny_cells()[..1], 1);
        let mut buf = Vec::new();
        write_bench_json(&mut buf, "base", 1, &rows, None).unwrap();
        let baseline = parse_bench_json(&String::from_utf8(buf).unwrap());
        let cmp = compare(&rows, &baseline, "mem");
        assert_eq!(cmp.matched.len(), 1);
        assert!(cmp.unmatched.is_empty());
        // Same measurement against itself: ratio ~1.
        assert!(
            cmp.min_ratio > 0.5 && cmp.min_ratio < 2.0,
            "{}",
            cmp.min_ratio
        );
        // A 10x-faster recorded baseline shows up as a regression.
        let mut fast = baseline.clone();
        fast[0].events_per_sec *= 10.0;
        let cmp = compare(&rows, &fast, "mem");
        assert!(cmp.min_ratio < 0.8);
    }

    #[test]
    fn baseline_section_is_not_reparsed_as_rows() {
        let rows = run_sweep(&tiny_cells()[..1], 1);
        let baseline = vec![BaselineRow {
            protocol: rows[0].protocol.clone(),
            nodes: rows[0].nodes,
            app: rows[0].app.clone(),
            seed: rows[0].seed,
            ops: rows[0].ops,
            workers: rows[0].workers,
            events_per_sec: rows[0].events_per_sec,
        }];
        let cmp = compare(&rows, &baseline, "b.json");
        let mut buf = Vec::new();
        write_bench_json(&mut buf, "with-baseline", 2, &rows, Some(&cmp)).unwrap();
        let parsed = parse_bench_json(&String::from_utf8(buf).unwrap());
        assert_eq!(parsed.len(), rows.len(), "baseline cells leaked into rows");
    }

    #[test]
    fn schema_commit_and_percentiles_are_stamped() {
        let rows = run_sweep(&tiny_cells()[..1], 1);
        assert!(rows[0].lat_p99 >= rows[0].lat_p50);
        assert!(rows[0].lat_p50 > 0);
        let mut buf = Vec::new();
        write_bench_json(&mut buf, "t", 1, &rows, None).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(parse_bench_schema(&text).as_deref(), Some(BENCH_SCHEMA));
        assert!(text.contains("\"git_commit\": \""));
        assert!(text.contains("\"lat_p50\": "));
        assert!(text.contains("\"lat_p99\": "));
    }

    #[test]
    fn v1_documents_still_parse_as_baselines() {
        let v1 = concat!(
            "{\n",
            "  \"schema\": \"uncorq-bench-v1\",\n",
            "  \"note\": \"old\",\n",
            "  \"threads\": 1,\n",
            "  \"rows\": [\n",
            "    {\"protocol\": \"uncorq\", \"nodes\": 16, \"app\": \"fmm\", ",
            "\"seed\": 7, \"ops\": 60, \"finished\": true, \"exec_cycles\": 100, ",
            "\"events\": 5, \"peak_queue\": 2, \"wall_secs\": 0.1, ",
            "\"events_per_sec\": 50, \"digest\": \"00000000000000aa\"}\n",
            "  ]\n",
            "}\n"
        );
        assert_eq!(parse_bench_schema(v1).as_deref(), Some(BENCH_SCHEMA_V1));
        let rows = parse_bench_json(v1);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].protocol, "uncorq");
        assert!((rows[0].events_per_sec - 50.0).abs() < 1e-9);
        // Pre-parallel-engine rows were all serial measurements.
        assert_eq!(rows[0].workers, 1);
    }

    #[test]
    fn worker_count_is_unobservable_in_cell_digests() {
        let cell = &tiny_cells()[0];
        let serial = run_cell_workers(cell, 1, 1);
        let par = run_cell_workers(cell, 1, 3);
        assert_eq!(par.workers, 3);
        assert_eq!(par.digest, serial.digest);
        assert_eq!(par.determinism_key(), serial.determinism_key());
        // But workers *do* key baseline matching: a serial baseline
        // must not gate a parallel measurement.
        let mut buf = Vec::new();
        write_bench_json(&mut buf, "b", 1, &[serial], None).unwrap();
        let baseline = parse_bench_json(&String::from_utf8(buf).unwrap());
        let cmp = compare(&[par], &baseline, "b.json");
        assert!(cmp.matched.is_empty());
        assert_eq!(cmp.unmatched.len(), 1);
    }

    #[test]
    fn default_grid_covers_all_variants() {
        let cells = default_grid(&["fmm".into()], &[2007], 500, &[(4, 4), (8, 8)]);
        assert_eq!(cells.len(), ProtocolVariant::ALL.len() * 2);
        assert!(cells.iter().any(|c| c.nodes() == 64));
        assert_eq!(cells[0].label(), "eager/16n/fmm@2007");
    }
}
