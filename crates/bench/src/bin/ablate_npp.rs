//! Ablation: Node Prefetch Predictor capacity (the paper uses 8K line
//! addresses). Capacity 0 degenerates to "prefetch every miss" — the
//! wasteful design §5.4 warns against; small tables forget hot lines and
//! prefetch them uselessly (Pref,Cache grows).
//!
//! Usage: `cargo run --release -p bench --bin ablate_npp [app]`

use bench::{maybe_fast, SEED};
use ring_stats::{Align, Table};
use ring_system::{Machine, MachineConfig};
use ring_workloads::AppProfile;

fn main() {
    let app = std::env::args().nth(1).unwrap_or_else(|| "fmm".to_string());
    let profile = maybe_fast(AppProfile::by_name(&app).expect("known app"));
    let mut t = Table::new(
        [
            "NPP entries",
            "Read miss lat",
            "Pref,Cache %",
            "Pref coverage %",
            "Exec (cyc)",
        ]
        .map(String::from)
        .to_vec(),
    );
    t.align(vec![
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    for entries in [0usize, 512, 2048, 8192, 32768] {
        let mut cfg = MachineConfig::paper_uncorq_pref();
        cfg.seed = SEED;
        cfg.protocol.npp_entries = entries;
        let r = Machine::new(cfg, &profile).run();
        assert!(r.finished);
        let s = &r.stats;
        let total = (s.pref_cache + s.nopref_cache + s.nopref_mem + s.pref_mem).max(1) as f64;
        let coverage = s.pref_mem as f64 / (s.pref_mem + s.nopref_mem).max(1) as f64;
        t.row(vec![
            if entries == 0 {
                "0 (always prefetch)".into()
            } else {
                format!("{entries}")
            },
            format!("{:.0}", s.read_latency.mean()),
            format!("{:.1}", 100.0 * s.pref_cache as f64 / total),
            format!("{:.0}", 100.0 * coverage),
            format!("{}", r.exec_cycles),
        ]);
    }
    println!("Ablation — Node Prefetch Predictor capacity on `{app}` (Uncorq+Pref)\n");
    println!("{}", t.render());
}
