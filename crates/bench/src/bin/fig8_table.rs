//! Regenerates **Figure 8(c)**: read-miss latency characteristics.
//!
//! Columns: average read-miss latency under Eager and Uncorq, the
//! relative reduction, and the fraction of misses serviced cache-to-cache
//! — measured by this reproduction and, in parentheses, as published in
//! the paper.
//!
//! Usage: `cargo run --release -p bench --bin fig8_table`
//! (set `UNCORQ_FAST=1` for a quick smoke run).

use bench::paper::{paper_row, SPLASH2_AVERAGE};
use bench::{maybe_fast, run_cell, Proto, SEED};
use ring_coherence::ProtocolKind;
use ring_stats::{reduction_pct, Align, Table};
use ring_workloads::AppProfile;

fn main() {
    let mut t = Table::new(
        ["Application", "Eager", "Uncorq", "(E-U)/E %", "c2c %"]
            .map(String::from)
            .to_vec(),
    );
    t.align(vec![
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    let mut splash_eager = 0.0;
    let mut splash_uncorq = 0.0;
    let mut splash_c2c = 0.0;
    let splash_n = AppProfile::splash2().len() as f64;
    for profile in AppProfile::all() {
        let prof = maybe_fast(profile.clone());
        let e = run_cell(Proto::Ring(ProtocolKind::Eager), &prof, SEED);
        let u = run_cell(Proto::Ring(ProtocolKind::Uncorq), &prof, SEED);
        let el = e.stats.read_latency.mean();
        let ul = u.stats.read_latency.mean();
        let c2c = 100.0 * u.stats.c2c_fraction();
        let p = paper_row(&profile.name).expect("paper row");
        let is_splash = AppProfile::splash2().iter().any(|s| s.name == profile.name);
        if is_splash {
            splash_eager += el;
            splash_uncorq += ul;
            splash_c2c += c2c;
        }
        t.row(vec![
            profile.name.clone(),
            format!("{:.0} ({})", el, p.eager_lat),
            format!("{:.0} ({})", ul, p.uncorq_lat),
            format!("{:.0} ({})", reduction_pct(el, ul), p.reduction_pct),
            format!("{:.0} ({})", c2c, p.c2c_pct),
        ]);
        if profile.name == "water-spatial" {
            // Insert the SPLASH-2 average row where the paper puts it.
            t.separator();
            let (ea, ua, ca) = (
                splash_eager / splash_n,
                splash_uncorq / splash_n,
                splash_c2c / splash_n,
            );
            t.row(vec![
                "SPLASH-2 avg.".into(),
                format!("{:.0} ({})", ea, SPLASH2_AVERAGE.eager_lat),
                format!("{:.0} ({})", ua, SPLASH2_AVERAGE.uncorq_lat),
                format!(
                    "{:.0} ({})",
                    reduction_pct(ea, ua),
                    SPLASH2_AVERAGE.reduction_pct
                ),
                format!("{:.0} ({})", ca, SPLASH2_AVERAGE.c2c_pct),
            ]);
            t.separator();
        }
        eprintln!("  done: {}", profile.name);
    }
    println!("Figure 8(c) — read miss latency; measured (paper)\n");
    println!("{}", t.render());
}
