//! Ablation: the §5.5 supplier-status-transfer extension. By default,
//! every successful transaction transfers supplier status to the
//! requester, so two colliding cache-to-cache *reads* squash one of the
//! pair. The extension keeps the designation at the old supplier and
//! hands out Shared copies, eliminating read-read squashes — the paper
//! describes it but does not evaluate it.
//!
//! Usage: `cargo run --release -p bench --bin ablate_read_transfer [app]`

use bench::{maybe_fast, SEED};
use ring_coherence::ProtocolKind;
use ring_stats::{Align, Table};
use ring_system::{Machine, MachineConfig};
use ring_workloads::AppProfile;

fn main() {
    // Read-mostly sharing stresses exactly the colliding-read case.
    let app = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "radiosity".to_string());
    let profile = maybe_fast(AppProfile::by_name(&app).expect("known app"));
    let mut t = Table::new(
        [
            "Read suppliership",
            "Exec (cyc)",
            "Retries",
            "c2c lat",
            "Mem misses",
        ]
        .map(String::from)
        .to_vec(),
    );
    t.align(vec![
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    for keep in [false, true] {
        let mut cfg = MachineConfig::paper(ProtocolKind::Uncorq);
        cfg.seed = SEED;
        cfg.protocol.reads_keep_supplier = keep;
        let r = Machine::new(cfg, &profile).run();
        assert!(r.finished);
        t.row(vec![
            if keep {
                "kept at supplier (§5.5)"
            } else {
                "transferred (default)"
            }
            .into(),
            format!("{}", r.exec_cycles),
            format!("{}", r.stats.retries),
            format!("{:.0}", r.stats.read_latency_c2c.mean()),
            format!("{}", r.stats.reads_mem),
        ]);
    }
    println!("Ablation — §5.5 read suppliership transfer on `{app}` (Uncorq)\n");
    println!("{}", t.render());
    println!("Keeping the designation removes read-read squashes (fewer retries);");
    println!("the trade-off is a more static supplier placement.");
}
