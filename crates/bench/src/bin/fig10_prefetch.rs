//! Regenerates **Figure 10**: impact of the §5.4 prefetching optimization.
//!
//! Part (a): breakdown of read misses into {Pref,NoPref} × {Cache,Memory}
//! under Uncorq+Pref. Part (b): average read-miss latency under
//! Uncorq+Pref and the reduction relative to plain Uncorq, measured and
//! (in parentheses) as published.
//!
//! Usage: `cargo run --release -p bench --bin fig10_prefetch`

use bench::paper::{paper_row, SPLASH2_AVERAGE};
use bench::{maybe_fast, run_cell, Proto, SEED};
use ring_coherence::ProtocolKind;
use ring_stats::{reduction_pct, Align, Table};
use ring_workloads::AppProfile;

fn main() {
    let mut ta = Table::new(
        [
            "Application",
            "Pref,Cache %",
            "NoPref,Cache %",
            "NoPref,Mem %",
            "Pref,Mem %",
        ]
        .map(String::from)
        .to_vec(),
    );
    ta.align(vec![
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    let mut tb = Table::new(
        ["Application", "Uncorq+Pref lat", "(U - U+P)/U %"]
            .map(String::from)
            .to_vec(),
    );
    tb.align(vec![Align::Left, Align::Right, Align::Right]);
    let splash: Vec<String> = AppProfile::splash2()
        .iter()
        .map(|p| p.name.clone())
        .collect();
    let (mut sum_lat, mut sum_red) = (0.0, 0.0);
    for profile in AppProfile::all() {
        let prof = maybe_fast(profile.clone());
        let u = run_cell(Proto::Ring(ProtocolKind::Uncorq), &prof, SEED);
        let up = run_cell(Proto::UncorqPref, &prof, SEED);
        let s = &up.stats;
        let total = (s.pref_cache + s.nopref_cache + s.nopref_mem + s.pref_mem).max(1) as f64;
        ta.row(vec![
            profile.name.clone(),
            format!("{:.1}", 100.0 * s.pref_cache as f64 / total),
            format!("{:.1}", 100.0 * s.nopref_cache as f64 / total),
            format!("{:.1}", 100.0 * s.nopref_mem as f64 / total),
            format!("{:.1}", 100.0 * s.pref_mem as f64 / total),
        ]);
        let ul = u.stats.read_latency.mean();
        let upl = up.stats.read_latency.mean();
        let red = reduction_pct(ul, upl);
        let p = paper_row(&profile.name).expect("paper row");
        tb.row(vec![
            profile.name.clone(),
            format!("{:.0} ({})", upl, p.pref_lat),
            format!("{:.0} ({})", red, p.pref_reduction_pct),
        ]);
        if splash.contains(&profile.name) {
            sum_lat += upl;
            sum_red += red;
        }
        if profile.name == "water-spatial" {
            tb.separator();
            tb.row(vec![
                "SPLASH-2 avg.".into(),
                format!(
                    "{:.0} ({})",
                    sum_lat / splash.len() as f64,
                    SPLASH2_AVERAGE.pref_lat
                ),
                format!(
                    "{:.0} ({})",
                    sum_red / splash.len() as f64,
                    SPLASH2_AVERAGE.pref_reduction_pct
                ),
            ]);
            tb.separator();
        }
        eprintln!("  done: {}", profile.name);
    }
    println!("Figure 10(a) — breakdown of read misses under Uncorq+Pref (measured)\n");
    println!("{}", ta.render());
    println!("Figure 10(b) — read miss latency; measured (paper)\n");
    println!("{}", tb.render());
}
