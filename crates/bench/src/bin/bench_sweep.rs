//! `bench_sweep` — parallel deterministic perf sweep, the recorder of
//! the repo's perf trajectory.
//!
//! Runs the `(protocol × workload × seed)` grid across worker threads
//! (each run owns its machine and RNG, so results are byte-identical to
//! a serial sweep), measures wall time / events per second / peak queue
//! depth per cell, and writes `BENCH_machine.json`. With `--baseline`,
//! compares throughput against a previously recorded file and fails on
//! regressions beyond the tolerance.
//!
//! ```text
//! bench_sweep [--apps fmm] [--seeds 2007] [--ops 20000] [--grids 4x4,8x8]
//!             [--threads N] [--serial] [--out BENCH_machine.json]
//!             [--note TEXT] [--baseline FILE] [--tolerance 0.20]
//!             [--check-determinism]
//! ```

use std::process::ExitCode;

use bench::sweep::{
    compare, default_grid, parse_bench_json, parse_bench_schema, run_sweep_workers,
    write_bench_json, Comparison, BENCH_SCHEMA,
};
use ring_coherence::ProtocolVariant;
use ring_stats::{Align, Table};
use ring_system::Machine;
use ring_trace::{FlightConfig, FlightRecorder};
use ring_workloads::AppProfile;

struct Args {
    apps: Vec<String>,
    seeds: Vec<u64>,
    ops: u64,
    grids: Vec<(usize, usize)>,
    protocols: Vec<ProtocolVariant>,
    threads: usize,
    workers: usize,
    repeat: usize,
    out: String,
    note: String,
    baseline: Option<String>,
    tolerance: f64,
    check_determinism: bool,
    profile: bool,
    profile_out: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            apps: vec!["fmm".into()],
            seeds: vec![bench::SEED],
            ops: 20_000,
            grids: vec![(4, 4), (8, 8)],
            protocols: ProtocolVariant::ALL.to_vec(),
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            workers: 1,
            repeat: 1,
            out: "BENCH_machine.json".into(),
            note: "perf sweep".into(),
            baseline: None,
            tolerance: 0.20,
            check_determinism: false,
            profile: false,
            profile_out: None,
        }
    }
}

const USAGE: &str = "usage: bench_sweep [--apps A,B] [--seeds S1,S2] [--ops N] [--grids 4x4,8x8]
                   [--protocols eager,uncorq] [--threads N] [--serial]
                   [--workers N] [--repeat N] [--out FILE] [--note TEXT]
                   [--baseline FILE] [--tolerance FRACTION]
                   [--check-determinism] [--profile] [--profile-out PREFIX]

--threads fans independent cells out across OS threads; --workers runs
each machine on the in-engine conservative-PDES parallel engine with N
total threads (1 = serial engine). Both are digest-neutral; workers is
recorded per row and keys baseline matching.

--profile re-runs each cell serially after the timed sweep with a
flight recorder installed (so wall-clock numbers stay clean) and writes
one windowed-snapshot JSONL stream per cell to PREFIX.<cell>.jsonl
(default prefix BENCH_profile). --profile-out implies --profile.";

fn parse_grid(v: &str) -> Result<(usize, usize), String> {
    let (w, h) = v
        .split_once(['x', 'X'])
        .ok_or_else(|| format!("grid expects WxH, got {v}"))?;
    Ok((
        w.parse().map_err(|e| format!("grid width: {e}"))?,
        h.parse().map_err(|e| format!("grid height: {e}"))?,
    ))
}

fn parse(mut argv: std::env::Args) -> Result<Args, String> {
    let mut a = Args::default();
    argv.next();
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--apps" => a.apps = value("--apps")?.split(',').map(String::from).collect(),
            "--seeds" => {
                a.seeds = value("--seeds")?
                    .split(',')
                    .map(|s| s.parse().map_err(|e| format!("--seeds: {e}")))
                    .collect::<Result<_, _>>()?
            }
            "--ops" => a.ops = value("--ops")?.parse().map_err(|e| format!("--ops: {e}"))?,
            "--grids" => {
                a.grids = value("--grids")?
                    .split(',')
                    .map(parse_grid)
                    .collect::<Result<_, _>>()?
            }
            "--protocols" => {
                a.protocols = value("--protocols")?
                    .split(',')
                    .map(|s| {
                        ProtocolVariant::by_name(s).ok_or_else(|| format!("unknown protocol {s}"))
                    })
                    .collect::<Result<_, _>>()?
            }
            "--threads" => {
                a.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--serial" => a.threads = 1,
            "--workers" => {
                a.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--repeat" => {
                a.repeat = value("--repeat")?
                    .parse()
                    .map_err(|e| format!("--repeat: {e}"))?
            }
            "--out" => a.out = value("--out")?,
            "--note" => a.note = value("--note")?,
            "--baseline" => a.baseline = Some(value("--baseline")?),
            "--tolerance" => {
                a.tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|e| format!("--tolerance: {e}"))?
            }
            "--check-determinism" => a.check_determinism = true,
            "--profile" => a.profile = true,
            "--profile-out" => {
                a.profile_out = Some(value("--profile-out")?);
                a.profile = true;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    Ok(a)
}

fn main() -> ExitCode {
    let args = match parse(std::env::args()) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let mut cells = default_grid(&args.apps, &args.seeds, args.ops, &args.grids);
    cells.retain(|c| args.protocols.contains(&c.variant));
    eprintln!(
        "sweep: {} cells ({} apps x {} seeds x {} grids x {} protocols), \
         {} threads, {} engine workers",
        cells.len(),
        args.apps.len(),
        args.seeds.len(),
        args.grids.len(),
        args.protocols.len(),
        args.threads,
        args.workers.max(1)
    );
    let results = run_sweep_workers(&cells, args.threads, args.repeat, args.workers);

    if args.check_determinism {
        eprintln!("re-running serially to verify parallel determinism...");
        let serial = run_sweep_workers(&cells, 1, 1, 1);
        for (p, s) in results.iter().zip(&serial) {
            if p.determinism_key() != s.determinism_key() {
                eprintln!(
                    "DETERMINISM VIOLATION:\n  parallel: {}\n  serial:   {}",
                    p.determinism_key(),
                    s.determinism_key()
                );
                return ExitCode::FAILURE;
            }
        }
        eprintln!(
            "determinism: parallel sweep identical to serial ({} cells)",
            cells.len()
        );
    }

    let mut t = Table::new(
        [
            "Cell",
            "Exec cycles",
            "Events",
            "Peak queue",
            "Lat p50",
            "Lat p99",
            "Wall s",
            "Events/s",
        ]
        .map(String::from)
        .to_vec(),
    );
    t.align(vec![
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    for r in &results {
        t.row(vec![
            format!(
                "{}/{}n/{}@{}x{}w",
                r.protocol, r.nodes, r.app, r.seed, r.workers
            ),
            format!("{}", r.exec_cycles),
            format!("{}", r.events),
            format!("{}", r.peak_queue),
            format!("{}", r.lat_p50),
            format!("{}", r.lat_p99),
            format!("{:.3}", r.wall_secs),
            format!("{:.0}", r.events_per_sec),
        ]);
    }
    println!("{}", t.render());

    let mut baseline_schema: Option<String> = None;
    let cmp: Option<Comparison> = match &args.baseline {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => {
                baseline_schema = parse_bench_schema(&text);
                let rows = parse_bench_json(&text);
                if rows.is_empty() {
                    eprintln!("baseline {path}: no parseable rows");
                    return ExitCode::FAILURE;
                }
                Some(compare(&results, &rows, path))
            }
            Err(e) => {
                eprintln!("cannot read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    let mut buf = Vec::new();
    if write_bench_json(&mut buf, &args.note, args.threads, &results, cmp.as_ref()).is_err()
        || std::fs::write(&args.out, &buf).is_err()
    {
        eprintln!("cannot write {}", args.out);
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {}", args.out);

    if args.profile {
        let prefix = args
            .profile_out
            .clone()
            .unwrap_or_else(|| "BENCH_profile".into());
        if let Err(e) = write_profiles(&cells, &prefix) {
            eprintln!("profile pass failed: {e}");
            return ExitCode::FAILURE;
        }
    }

    if let Some(c) = &cmp {
        for (cell, old, ratio) in &c.matched {
            println!("vs baseline {cell}: {old:.0} -> x{ratio:.2}");
        }
        for cell in &c.unmatched {
            eprintln!("no baseline row for {cell}");
        }
        // Wall-clock numbers are comparable across schema versions, but
        // the gate only *fails* on same-schema baselines: a schema bump
        // changes what a row carries, so a cross-version regression is a
        // warning to investigate, not a hard CI failure.
        let cross_schema = baseline_schema.as_deref() != Some(BENCH_SCHEMA);
        if cross_schema {
            eprintln!(
                "warning: baseline schema {} differs from current {BENCH_SCHEMA}; \
                 regressions will warn instead of fail",
                baseline_schema.as_deref().unwrap_or("<none>")
            );
        }
        let floor = 1.0 - args.tolerance;
        if c.min_ratio < floor {
            eprintln!(
                "PERF REGRESSION: min events/sec ratio {:.3} below tolerance floor {:.3} \
                 (baseline {})",
                c.min_ratio, floor, c.baseline_path
            );
            if !cross_schema {
                return ExitCode::FAILURE;
            }
            eprintln!("cross-schema baseline: regression reported as warning only");
        } else {
            println!(
                "baseline check passed: min ratio x{:.2} (floor {:.2})",
                c.min_ratio, floor
            );
        }
    }
    ExitCode::SUCCESS
}

/// Re-runs each cell serially with a flight recorder installed and
/// writes its windowed snapshots to `PREFIX.<cell>.jsonl`. Kept out of
/// the timed sweep so profiling never pollutes the wall-clock rows.
fn write_profiles(cells: &[bench::sweep::SweepCell], prefix: &str) -> Result<(), String> {
    for cell in cells {
        let profile = AppProfile::by_name(&cell.app)
            .ok_or_else(|| format!("unknown app profile {}", cell.app))?
            .scaled(cell.ops);
        let mut m = Machine::new(cell.config(), &profile);
        m.enable_flight_recorder(FlightRecorder::new(FlightConfig::default()));
        let _ = m.run();
        let label = cell.label().replace('/', "_");
        let path = format!("{prefix}.{label}.jsonl");
        let file = std::fs::File::create(&path).map_err(|e| format!("create {path}: {e}"))?;
        let mut file = std::io::BufWriter::new(file);
        let rec = m.flight().expect("recorder was installed");
        rec.write_jsonl(&mut file)
            .map_err(|e| format!("write {path}: {e}"))?;
        eprintln!(
            "profiled {} -> {path} ({} windows)",
            cell.label(),
            rec.len()
        );
    }
    Ok(())
}
