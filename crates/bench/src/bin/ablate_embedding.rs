//! Ablation: ring embedding. The boustrophedon (snake) embedding gives
//! every logical ring hop exactly one physical link; naive row-major
//! order pays extra links on row wrap, lengthening every response lap.
//!
//! Usage: `cargo run --release -p bench --bin ablate_embedding [app]`

use bench::{maybe_fast, SEED};
use ring_coherence::ProtocolKind;
use ring_stats::{Align, Table};
use ring_system::{Machine, MachineConfig};
use ring_workloads::AppProfile;

fn main() {
    let app = std::env::args().nth(1).unwrap_or_else(|| "fmm".to_string());
    let profile = maybe_fast(AppProfile::by_name(&app).expect("known app"));
    let mut t = Table::new(
        [
            "Embedding",
            "Protocol",
            "Exec (cyc)",
            "Read miss lat",
            "Mem-path lat",
        ]
        .map(String::from)
        .to_vec(),
    );
    t.align(vec![
        Align::Left,
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    for kind in [ProtocolKind::Eager, ProtocolKind::Uncorq] {
        for row_major in [false, true] {
            let mut cfg = MachineConfig::paper(kind);
            cfg.seed = SEED;
            cfg.ring_row_major = row_major;
            let r = Machine::new(cfg, &profile).run();
            assert!(r.finished);
            t.row(vec![
                if row_major { "row-major" } else { "snake" }.into(),
                kind.to_string(),
                format!("{}", r.exec_cycles),
                format!("{:.0}", r.stats.read_latency.mean()),
                format!("{:.0}", r.stats.read_latency_mem.mean()),
            ]);
        }
    }
    println!("Ablation — ring embedding on `{app}`\n");
    println!("{}", t.render());
    println!("The snake's single-link hops keep the response lap at 64 links;");
    println!("row-major pays ~7 extra links per lap on the row wraps.");
}
