//! Ablation: §2.1 load balancing — "messages to different line addresses
//! can use ... the same ring with different directions". Odd lines lap
//! the snake in reverse, splitting response traffic across both directed
//! link sets.
//!
//! Usage: `cargo run --release -p bench --bin ablate_dual_ring [app]`

use bench::{maybe_fast, SEED};
use ring_coherence::ProtocolKind;
use ring_stats::{Align, Table};
use ring_system::{Machine, MachineConfig};
use ring_workloads::AppProfile;

fn main() {
    let app = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "ocean".to_string());
    let profile = maybe_fast(AppProfile::by_name(&app).expect("known app"));
    let mut t = Table::new(
        [
            "Rings",
            "Protocol",
            "Exec (cyc)",
            "Read miss lat",
            "Mem-path lat",
        ]
        .map(String::from)
        .to_vec(),
    );
    t.align(vec![
        Align::Left,
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    for kind in [ProtocolKind::Eager, ProtocolKind::Uncorq] {
        for dual in [false, true] {
            let mut cfg = MachineConfig::paper(kind);
            cfg.seed = SEED;
            cfg.dual_rings = dual;
            let r = Machine::new(cfg, &profile).run();
            assert!(r.finished);
            t.row(vec![
                if dual {
                    "dual (split by parity)"
                } else {
                    "single"
                }
                .into(),
                kind.to_string(),
                format!("{}", r.exec_cycles),
                format!("{:.0}", r.stats.read_latency.mean()),
                format!("{:.0}", r.stats.read_latency_mem.mean()),
            ]);
        }
    }
    println!("Ablation — dual-direction ring load balancing on `{app}`\n");
    println!("{}", t.render());
}
