//! Ablation: winner-selection policy (paper §3.3.2). The paper's
//! hierarchy (transaction type > random tiebreak > node id) is compared
//! against the node-id-only strawman ("unfair, but it never ties") on a
//! hot-lock workload where collisions are constant.
//!
//! Usage: `cargo run --release -p bench --bin ablate_winner`

use bench::SEED;
use ring_cache::LineAddr;
use ring_coherence::ProtocolKind;
use ring_cpu::Op;
use ring_stats::{Align, Summary, Table};
use ring_system::{Machine, MachineConfig};

fn lock_streams(nodes: usize, rounds: usize) -> Vec<Box<dyn Iterator<Item = Op> + Send>> {
    (0..nodes)
        .map(|n| {
            let mut ops = Vec::new();
            for r in 0..rounds {
                ops.push(Op::Compute((n as u32 * 5) % 13 + 2));
                let lock = LineAddr::new(((r + n) % 8) as u64);
                ops.push(Op::Read(lock));
                ops.push(Op::Write(lock));
                ops.push(Op::Fence);
            }
            Box::new(ops.into_iter()) as Box<dyn Iterator<Item = Op> + Send>
        })
        .collect()
}

fn main() {
    let mut t = Table::new(
        [
            "Policy",
            "Exec (cyc)",
            "Retries",
            "Starvation events",
            "Retry fairness (stddev)",
        ]
        .map(String::from)
        .to_vec(),
    );
    t.align(vec![
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    for node_id_only in [false, true] {
        let mut cfg = MachineConfig::paper(ProtocolKind::Uncorq);
        cfg.seed = SEED;
        cfg.protocol.winner_node_id_only = node_id_only;
        let nodes = cfg.nodes();
        let mut m = Machine::with_streams(cfg, lock_streams(nodes, 120));
        let r = m.run();
        assert!(r.finished, "winner ablation stalled");
        // Per-node retry spread as a fairness measure.
        let mut spread = Summary::new();
        for a in m.agents() {
            spread.record(a.stats().retries as f64);
        }
        t.row(vec![
            if node_id_only {
                "node-id only"
            } else {
                "type > random > id"
            }
            .into(),
            format!("{}", r.exec_cycles),
            format!("{}", r.stats.retries),
            format!("{}", r.stats.starvation_events),
            format!("{:.1}", spread.stddev()),
        ]);
    }
    println!("Ablation — winner-selection policy (64 cores, 8 hot lock lines)\n");
    println!("{}", t.render());
    println!("Both policies sustain forward progress; the paper prefers the");
    println!("hierarchy because the type rank minimizes memory accesses and the");
    println!("random tiebreak removes systematic bias, at identical hardware cost.");
}
