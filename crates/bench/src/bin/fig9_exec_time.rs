//! Regenerates **Figure 9**: execution time of every application under
//! Eager, SupersetCon, SupersetAgg, Uncorq and Uncorq+Pref, normalized to
//! Eager.
//!
//! The paper's stated averages: Uncorq improves execution time by 23%
//! (SPLASH-2), 15% (SPECjbb) and 5% (SPECweb); Uncorq+Pref by 26%, 22%
//! and 13%; SupersetCon/Agg are slower than Eager on a single CMP.
//!
//! Usage: `cargo run --release -p bench --bin fig9_exec_time`

use bench::paper::{EXEC_IMPROVEMENT_SPECJBB, EXEC_IMPROVEMENT_SPECWEB, EXEC_IMPROVEMENT_SPLASH};
use bench::{maybe_fast, run_cell, Proto, SEED};
use ring_stats::{Align, Table};
use ring_workloads::AppProfile;

fn main() {
    let mut headers = vec!["Application".to_string()];
    headers.extend(Proto::FIG9.iter().map(|p| p.name().to_string()));
    let mut t = Table::new(headers);
    t.align(vec![
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    let mut norm_sums = vec![0.0f64; Proto::FIG9.len()];
    let splash_names: Vec<String> = AppProfile::splash2()
        .iter()
        .map(|p| p.name.clone())
        .collect();
    let mut splash_norms = vec![0.0f64; Proto::FIG9.len()];
    for profile in AppProfile::all() {
        let prof = maybe_fast(profile.clone());
        let mut cells = vec![profile.name.clone()];
        let mut base = 0.0;
        for (i, proto) in Proto::FIG9.iter().enumerate() {
            let r = run_cell(*proto, &prof, SEED);
            assert!(
                r.finished,
                "{} did not finish under {}",
                profile.name,
                proto.name()
            );
            let exec = r.exec_cycles as f64;
            if i == 0 {
                base = exec;
            }
            let norm = exec / base;
            norm_sums[i] += norm;
            if splash_names.contains(&profile.name) {
                splash_norms[i] += norm;
            }
            cells.push(format!("{norm:.2}"));
        }
        t.row(cells);
        eprintln!("  done: {}", profile.name);
    }
    let napps = AppProfile::all().len() as f64;
    let nsplash = splash_names.len() as f64;
    t.separator();
    let mut avg = vec!["average".to_string()];
    for s in &norm_sums {
        avg.push(format!("{:.2}", s / napps));
    }
    t.row(avg);
    println!("Figure 9 — execution time normalized to Eager (measured)\n");
    println!("{}", t.render());
    println!(
        "SPLASH-2 average improvement: Uncorq {:.0}% (paper {}%), Uncorq+Pref {:.0}% (paper {}%)",
        100.0 * (1.0 - splash_norms[3] / nsplash),
        EXEC_IMPROVEMENT_SPLASH.0,
        100.0 * (1.0 - splash_norms[4] / nsplash),
        EXEC_IMPROVEMENT_SPLASH.1,
    );
    println!(
        "(paper per-class: SPECjbb {}/{}%, SPECweb {}/{}% — see the SPECjbb/SPECweb rows)",
        EXEC_IMPROVEMENT_SPECJBB.0,
        EXEC_IMPROVEMENT_SPECJBB.1,
        EXEC_IMPROVEMENT_SPECWEB.0,
        EXEC_IMPROVEMENT_SPECWEB.1,
    );
}
