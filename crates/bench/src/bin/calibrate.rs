//! Calibration sweep: per-app latency and c2c fraction for each protocol,
//! side by side with the paper's Figure 8(c) targets. Not a paper figure
//! itself — a development tool to tune the workload profiles.
//!
//! Usage: `cargo run --release -p bench --bin calibrate [app ...]`

use bench::{maybe_fast, run_cell, Proto, SEED};
use ring_coherence::ProtocolKind;
use ring_stats::{Align, Table};
use ring_workloads::AppProfile;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let profiles: Vec<AppProfile> = if args.is_empty() {
        AppProfile::all()
    } else {
        args.iter()
            .map(|a| AppProfile::by_name(a).unwrap_or_else(|| panic!("unknown app {a}")))
            .collect()
    };
    let mut t = Table::new(
        [
            "App", "Eager", "Uncorq", "U+Pref", "HT", "c2c%", "tgt", "E c2c", "U c2c", "retries",
        ]
        .map(String::from)
        .to_vec(),
    );
    t.align(vec![
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    for p in profiles {
        let prof = maybe_fast(p.clone());
        let e = run_cell(Proto::Ring(ProtocolKind::Eager), &prof, SEED);
        let u = run_cell(Proto::Ring(ProtocolKind::Uncorq), &prof, SEED);
        let up = run_cell(Proto::UncorqPref, &prof, SEED);
        let ht = run_cell(Proto::Ht, &prof, SEED);
        // Paper c2c targets are encoded in the profile shares.
        let shared =
            prof.shared_migratory + prof.shared_read_mostly + prof.shared_producer_consumer;
        let tgt = shared / (shared + (1.0 - shared) * prof.private_miss_rate);
        t.row(vec![
            p.name.clone(),
            format!("{:.0}", e.stats.read_latency.mean()),
            format!("{:.0}", u.stats.read_latency.mean()),
            format!("{:.0}", up.stats.read_latency.mean()),
            format!("{:.0}", ht.stats.read_latency.mean()),
            format!("{:.0}", 100.0 * u.stats.c2c_fraction()),
            format!("{:.0}", 100.0 * tgt),
            format!("{:.0}", e.stats.read_latency_c2c.mean()),
            format!("{:.0}", u.stats.read_latency_c2c.mean()),
            format!("{}", e.stats.retries + u.stats.retries),
        ]);
        eprintln!(
            "  mem lat: E={:.0} U={:.0} U+P={:.0} HT={:.0} | ltt stalls E={} U={} | retries E={} U={} | HT c2c={:.0}",
            e.stats.read_latency_mem.mean(),
            u.stats.read_latency_mem.mean(),
            up.stats.read_latency_mem.mean(),
            ht.stats.read_latency_mem.mean(),
            e.stats.ltt_stalls,
            u.stats.ltt_stalls,
            e.stats.retries,
            u.stats.retries,
            ht.stats.read_latency_c2c.mean(),
        );
        eprintln!(
            "{}: exec E={} U={} U+P={} HT={} (finished: {}{}{}{})",
            p.name,
            e.exec_cycles,
            u.exec_cycles,
            up.exec_cycles,
            ht.exec_cycles,
            e.finished,
            u.finished,
            up.finished,
            ht.finished
        );
    }
    println!("{}", t.render());
}
