//! Regenerates **Figure 11**: comparing Uncorq against the
//! HyperTransport-style baseline.
//!
//! Parts (a)/(b): cache-to-cache read-miss latency histograms in `fmm`
//! under Uncorq and HT. Part (c): HT read-miss latency per application
//! plus the latency and traffic (byte-hops) saved by Uncorq, measured and
//! (in parentheses) as published.
//!
//! Usage: `cargo run --release -p bench --bin fig11_ht`

use bench::paper::{paper_row, SPLASH2_AVERAGE};
use bench::{maybe_fast, run_cell, Proto, SEED};
use ring_coherence::ProtocolKind;
use ring_stats::{Align, Table};
use ring_workloads::AppProfile;

fn main() {
    // Parts (a) and (b): histograms for fmm.
    let fmm = maybe_fast(AppProfile::by_name("fmm").expect("fmm profile"));
    for (label, proto, fig) in [
        ("Uncorq", Proto::Ring(ProtocolKind::Uncorq), "11(a)"),
        ("HT", Proto::Ht, "11(b)"),
    ] {
        let r = run_cell(proto, &fmm, SEED);
        let h = &r.stats.c2c_histogram;
        println!(
            "Figure {fig} — cache-to-cache read miss latency in fmm with {label}\n\
             samples={} mean={:.0} p50={} p90={}\n",
            h.total(),
            h.mean(),
            h.percentile(50.0),
            h.percentile(90.0),
        );
        println!("{}", h.render_ascii(48));
    }

    // Part (c): per-application table.
    let mut t = Table::new(
        [
            "Application",
            "HT lat",
            "(HT-U)/HT lat %",
            "(HT-U)/HT traffic %",
        ]
        .map(String::from)
        .to_vec(),
    );
    t.align(vec![Align::Left, Align::Right, Align::Right, Align::Right]);
    let splash: Vec<String> = AppProfile::splash2()
        .iter()
        .map(|p| p.name.clone())
        .collect();
    let (mut s_lat, mut s_latsave, mut s_trafsave) = (0.0, 0.0, 0.0);
    for profile in AppProfile::all() {
        let prof = maybe_fast(profile.clone());
        let u = run_cell(Proto::Ring(ProtocolKind::Uncorq), &prof, SEED);
        let ht = run_cell(Proto::Ht, &prof, SEED);
        let htl = ht.stats.read_latency.mean();
        let ul = u.stats.read_latency.mean();
        let lat_save = 100.0 * (htl - ul) / htl;
        let ht_traf = ht.stats.traffic.total_byte_hops() as f64;
        let u_traf = u.stats.traffic.total_byte_hops() as f64;
        let traf_save = 100.0 * (ht_traf - u_traf) / ht_traf;
        let p = paper_row(&profile.name).expect("paper row");
        t.row(vec![
            profile.name.clone(),
            format!("{:.0} ({})", htl, p.ht_lat),
            format!("{:.0} ({})", lat_save, p.ht_latency_saving_pct),
            format!("{:.0} ({})", traf_save, p.ht_traffic_saving_pct),
        ]);
        if splash.contains(&profile.name) {
            s_lat += htl;
            s_latsave += lat_save;
            s_trafsave += traf_save;
        }
        if profile.name == "water-spatial" {
            let n = splash.len() as f64;
            t.separator();
            t.row(vec![
                "SPLASH-2 avg.".into(),
                format!("{:.0} ({})", s_lat / n, SPLASH2_AVERAGE.ht_lat),
                format!(
                    "{:.0} ({})",
                    s_latsave / n,
                    SPLASH2_AVERAGE.ht_latency_saving_pct
                ),
                format!(
                    "{:.0} ({})",
                    s_trafsave / n,
                    SPLASH2_AVERAGE.ht_traffic_saving_pct
                ),
            ]);
            t.separator();
        }
        eprintln!("  done: {}", profile.name);
    }
    println!("Figure 11(c) — read miss latency and traffic vs HT; measured (paper)\n");
    println!("{}", t.render());
}
