//! Ablation: memory-controller concurrency. The paper models memory as a
//! flat 224-cycle round trip; this sweep shows what controller queueing
//! would do to each protocol (HT suffers most — its home nodes fetch
//! speculatively on every transaction).
//!
//! Usage: `cargo run --release -p bench --bin ablate_mem [app]`

use bench::{maybe_fast, SEED};
use ring_coherence::ProtocolKind;
use ring_stats::{Align, Table};
use ring_system::{HtMachine, Machine, MachineConfig};
use ring_workloads::AppProfile;

fn main() {
    let app = std::env::args().nth(1).unwrap_or_else(|| "fft".to_string());
    let profile = maybe_fast(AppProfile::by_name(&app).expect("known app"));
    let mut t = Table::new(
        [
            "Controller slots",
            "Uncorq mem lat",
            "Uncorq exec",
            "HT mem lat",
            "HT exec",
        ]
        .map(String::from)
        .to_vec(),
    );
    t.align(vec![
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    for slots in [1usize, 4, 16, 64] {
        let mut cfg = MachineConfig::paper(ProtocolKind::Uncorq);
        cfg.seed = SEED;
        cfg.mem.max_in_flight = slots;
        let u = Machine::new(cfg, &profile).run();
        let mut cfg = MachineConfig::paper(ProtocolKind::Eager);
        cfg.seed = SEED;
        cfg.mem.max_in_flight = slots;
        let h = HtMachine::new(cfg, &profile).run();
        t.row(vec![
            format!("{slots}"),
            format!("{:.0}", u.stats.read_latency_mem.mean()),
            format!("{}", u.exec_cycles),
            format!("{:.0}", h.stats.read_latency_mem.mean()),
            format!("{}", h.exec_cycles),
        ]);
    }
    println!("Ablation — memory controller concurrency on `{app}`\n");
    println!("{}", t.render());
}
