//! Ablation: the cost of enforcing the Ordering invariant. The LTT cannot
//! be turned off (it is the correctness mechanism), so this reports what
//! enforcement costs in practice: how many responses were stalled by the
//! WID rule, the peak table occupancy, and how both scale with collision
//! pressure.
//!
//! Usage: `cargo run --release -p bench --bin ablate_ltt`

use bench::{maybe_fast, SEED};
use ring_coherence::ProtocolKind;
use ring_stats::{Align, Table};
use ring_system::{Machine, MachineConfig};
use ring_workloads::AppProfile;

fn main() {
    let mut t = Table::new(
        [
            "Application",
            "Transactions",
            "LTT-stalled r's",
            "per 1k txns",
            "Peak LTT entries",
        ]
        .map(String::from)
        .to_vec(),
    );
    t.align(vec![
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    for profile in AppProfile::all() {
        let prof = maybe_fast(profile.clone());
        let mut cfg = MachineConfig::paper(ProtocolKind::Uncorq);
        cfg.seed = SEED;
        let r = Machine::new(cfg, &prof).run();
        assert!(r.finished);
        t.row(vec![
            profile.name.clone(),
            format!("{}", r.stats.transactions),
            format!("{}", r.stats.ltt_stalls),
            format!(
                "{:.2}",
                1000.0 * r.stats.ltt_stalls as f64 / r.stats.transactions.max(1) as f64
            ),
            format!("{}", r.stats.ltt_peak),
        ]);
        eprintln!("  done: {}", profile.name);
    }
    println!("Ablation — Ordering-invariant enforcement cost (Uncorq, LTT)\n");
    println!("{}", t.render());
    println!("Stalls are rare (collisions are rare) and the peak occupancy sits");
    println!("far below the provisioned 512 entries — matching the paper's sizing");
    println!("discussion in §5.1.");
}
