//! Scaling study: the paper's introduction motivates embedded-ring
//! snooping for "medium-scale shared-memory multiprocessors with 32-128
//! processor cores". This sweep runs the fmm profile on 16-, 32-, 64- and
//! 128-node tori and shows the scaling asymmetry the paper's design
//! exploits: Eager's cache-to-cache latency grows with the ring length
//! (requests walk the ring), while Uncorq's stays near-flat (requests go
//! point-to-point); the response lap — off the critical path for reads —
//! grows linearly for both.
//!
//! Usage: `cargo run --release -p bench --bin sweep_scale [app]`

use bench::{maybe_fast, SEED};
use ring_coherence::ProtocolKind;
use ring_stats::{Align, Table};
use ring_system::{Machine, MachineConfig};
use ring_workloads::AppProfile;

fn main() {
    let app = std::env::args().nth(1).unwrap_or_else(|| "fmm".to_string());
    let profile = maybe_fast(AppProfile::by_name(&app).expect("known app"));
    let mut t = Table::new(
        [
            "Nodes",
            "Eager c2c",
            "Uncorq c2c",
            "c2c speedup",
            "Eager mem",
            "Uncorq mem",
            "Exec ratio U/E",
        ]
        .map(String::from)
        .to_vec(),
    );
    t.align(vec![
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    for (w, h) in [(4usize, 4usize), (8, 4), (8, 8), (16, 8)] {
        let run = |kind: ProtocolKind| {
            let mut cfg = MachineConfig::paper(kind);
            cfg.width = w;
            cfg.height = h;
            cfg.seed = SEED;
            let r = Machine::new(cfg, &profile).run();
            assert!(r.finished, "{kind} on {w}x{h} stalled");
            r
        };
        let e = run(ProtocolKind::Eager);
        let u = run(ProtocolKind::Uncorq);
        t.row(vec![
            format!("{}", w * h),
            format!("{:.0}", e.stats.read_latency_c2c.mean()),
            format!("{:.0}", u.stats.read_latency_c2c.mean()),
            format!(
                "{:.1}x",
                e.stats.read_latency_c2c.mean() / u.stats.read_latency_c2c.mean()
            ),
            format!("{:.0}", e.stats.read_latency_mem.mean()),
            format!("{:.0}", u.stats.read_latency_mem.mean()),
            format!("{:.2}", u.exec_cycles as f64 / e.exec_cycles as f64),
        ]);
        eprintln!("  done: {}x{h}", w);
    }
    println!("Scaling study on `{app}` (paper motivation: 32-128 cores)\n");
    println!("{}", t.render());
    println!("Eager's c2c latency grows with node count (the request walks the");
    println!("ring); Uncorq's grows only with network diameter. The memory path");
    println!("(the full response lap) grows linearly for both — the cost the");
    println!("§5.4 prefetching optimization targets.");
}
