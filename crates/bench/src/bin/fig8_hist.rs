//! Regenerates **Figures 8(a) and 8(b)**: histograms of cache-to-cache
//! read-miss latency in `fmm` under Eager and Uncorq, with cumulative
//! distributions.
//!
//! Usage: `cargo run --release -p bench --bin fig8_hist [app]`
//!
//! Set `UNCORQ_CSV_DIR=<dir>` to also write plottable CSVs
//! (`fig8a_<app>.csv`, `fig8b_<app>.csv`).

use bench::{maybe_fast, run_cell, Proto, SEED};
use ring_coherence::ProtocolKind;
use ring_workloads::AppProfile;

fn main() {
    let app = std::env::args().nth(1).unwrap_or_else(|| "fmm".to_string());
    let profile =
        maybe_fast(AppProfile::by_name(&app).unwrap_or_else(|| panic!("unknown app {app}")));
    let csv_dir = std::env::var_os("UNCORQ_CSV_DIR");
    for (label, proto, fig, tag) in [
        ("Eager", Proto::Ring(ProtocolKind::Eager), "8(a)", "fig8a"),
        ("Uncorq", Proto::Ring(ProtocolKind::Uncorq), "8(b)", "fig8b"),
    ] {
        let r = run_cell(proto, &profile, SEED);
        let h = &r.stats.c2c_histogram;
        println!(
            "Figure {fig} — cache-to-cache read miss latency in {app} with {label}\n\
             samples={} mean={:.0} p50={} p90={} max={}\n",
            h.total(),
            h.mean(),
            h.percentile(50.0),
            h.percentile(90.0),
            h.max().unwrap_or(0),
        );
        println!("{}", h.render_ascii(48));
        if let Some(dir) = &csv_dir {
            let path = std::path::Path::new(dir).join(format!("{tag}_{app}.csv"));
            let file = std::fs::File::create(&path).expect("create CSV");
            h.write_csv(std::io::BufWriter::new(file))
                .expect("write CSV");
            eprintln!("wrote {}", path.display());
        }
    }
}
