//! Regenerates the latency anatomy of the paper's **Figure 5(b)**: for a
//! cache-to-cache transfer, the *time to suppliership reception* (request
//! propagation + snoop + suppliership back) drops sharply from Eager to
//! Uncorq, while the *time to response reception* (the `r` lap) is the
//! same in both algorithms.
//!
//! Usage: `cargo run --release -p bench --bin fig5_anatomy [app]`

use bench::{maybe_fast, run_cell, Proto, SEED};
use ring_coherence::ProtocolKind;
use ring_stats::{Align, Table};
use ring_workloads::AppProfile;

fn main() {
    let app = std::env::args().nth(1).unwrap_or_else(|| "fmm".to_string());
    let profile = maybe_fast(AppProfile::by_name(&app).expect("known app"));
    let mut t = Table::new(
        [
            "Algorithm",
            "Time to suppliership (c2c reads)",
            "Time to response (all reads)",
        ]
        .map(String::from)
        .to_vec(),
    );
    t.align(vec![Align::Left, Align::Right, Align::Right]);
    let mut rows = Vec::new();
    for proto in [
        Proto::Ring(ProtocolKind::Eager),
        Proto::Ring(ProtocolKind::Uncorq),
    ] {
        let r = run_cell(proto, &profile, SEED);
        assert!(r.finished);
        rows.push((
            proto.name(),
            r.stats.read_latency_c2c.mean(),
            r.stats.read_completion.mean(),
        ));
        t.row(vec![
            proto.name().to_string(),
            format!("{:.0} cyc", r.stats.read_latency_c2c.mean()),
            format!("{:.0} cyc", r.stats.read_completion.mean()),
        ]);
    }
    println!("Figure 5(b) anatomy on `{app}` (measured)\n");
    println!("{}", t.render());
    let supp_cut = 100.0 * (rows[0].1 - rows[1].1) / rows[0].1;
    let resp_delta = 100.0 * (rows[1].2 - rows[0].2) / rows[0].2;
    println!(
        "Suppliership time cut by {supp_cut:.0}% (the paper's (1) in Fig 5(b));\n\
         response-reception time differs by only {resp_delta:.0}% — \"such time is\n\
         the same in both algorithms\"."
    );
}
