//! Directed probes of transaction latency anatomy (development tool).
//!
//! Probe 1: one read miss on an idle machine (pure r-lap + memory).
//! Probe 2: all 64 nodes miss distinct private lines simultaneously
//! (worst-case burst contention).
//! Probe 3: one cache-to-cache transfer at varying ring distance.

use ring_cache::{LineAddr, LineState};
use ring_coherence::ProtocolKind;
use ring_cpu::Op;
use ring_noc::NodeId;
use ring_system::{Machine, MachineConfig};

fn build(kind: ProtocolKind, per_node: impl Fn(usize) -> Vec<Op>) -> Machine {
    let cfg = MachineConfig::paper(kind);
    let nodes = cfg.nodes();
    let streams: Vec<Box<dyn Iterator<Item = Op> + Send>> = (0..nodes)
        .map(|n| Box::new(per_node(n).into_iter()) as Box<dyn Iterator<Item = Op> + Send>)
        .collect();
    Machine::with_streams(cfg, streams)
}

fn main() {
    println!("probe 1: single idle-machine read miss (memory)");
    for kind in [ProtocolKind::Eager, ProtocolKind::Uncorq] {
        let mut m = build(kind, |n| {
            if n == 0 {
                vec![Op::Read(LineAddr::new(0x999_000))]
            } else {
                vec![]
            }
        });
        let r = m.run();
        println!("  {kind}: mem_lat={:.0}", r.stats.read_latency_mem.mean());
    }

    println!("probe 2: 64 simultaneous private read misses (burst)");
    for kind in [ProtocolKind::Eager, ProtocolKind::Uncorq] {
        let mut m = build(kind, |n| {
            vec![Op::Read(LineAddr::new(0x999_000 + n as u64))]
        });
        let r = m.run();
        println!(
            "  {kind}: mem_lat avg={:.0} max={:.0}",
            r.stats.read_latency_mem.mean(),
            r.stats.read_latency_mem.max().unwrap_or(0.0)
        );
    }

    println!("probe 3: single c2c transfer, supplier at ring distance 32");
    for kind in [ProtocolKind::Eager, ProtocolKind::Uncorq] {
        let line = LineAddr::new(0x555_000);
        let mut m = build(kind, |n| if n == 0 { vec![Op::Read(line)] } else { vec![] });
        m.warm_line(NodeId(32), line, LineState::Exclusive);
        let r = m.run();
        println!("  {kind}: c2c_lat={:.0}", r.stats.read_latency_c2c.mean());
    }
}
