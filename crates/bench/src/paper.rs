//! The paper's published per-application numbers, for side-by-side
//! comparison in every regenerated table (and in EXPERIMENTS.md).

/// One application row across the paper's Figures 8(c), 10(b) and 11(c).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRow {
    /// Application name.
    pub name: &'static str,
    /// Figure 8(c): average read-miss latency under Eager (cycles).
    pub eager_lat: u64,
    /// Figure 8(c): average read-miss latency under Uncorq (cycles).
    pub uncorq_lat: u64,
    /// Figure 8(c): latency reduction (Eager-Uncorq)/Eager, percent.
    pub reduction_pct: i64,
    /// Figure 8(c): fraction of misses serviced cache-to-cache, percent.
    pub c2c_pct: u64,
    /// Figure 10(b): read-miss latency under Uncorq+Pref (cycles).
    pub pref_lat: u64,
    /// Figure 10(b): (Uncorq - Uncorq+Pref)/Uncorq, percent.
    pub pref_reduction_pct: i64,
    /// Figure 11(c): read-miss latency under HT (cycles).
    pub ht_lat: u64,
    /// Figure 11(c): (HT - Uncorq)/HT latency saving, percent.
    pub ht_latency_saving_pct: i64,
    /// Figure 11(c): (HT - Uncorq)/HT traffic saving, percent.
    pub ht_traffic_saving_pct: i64,
}

/// All 13 application rows in the paper's order, plus the stated SPLASH-2
/// averages accessible via [`SPLASH2_AVERAGE`].
pub const PAPER_ROWS: [PaperRow; 13] = [
    row("barnes", 319, 107, 66, 97, 99, 7, 172, 38, 56),
    row("cholesky", 354, 145, 59, 90, 126, 13, 273, 47, 55),
    row("fft", 517, 391, 24, 54, 294, 25, 431, 9, 52),
    row("fmm", 345, 144, 58, 90, 134, 7, 190, 24, 55),
    row("lu", 385, 195, 49, 82, 174, 11, 197, 1, 55),
    row("ocean", 454, 330, 27, 99, 236, 28, 460, 28, 56),
    row("radiosity", 301, 80, 74, 99, 78, 2, 144, 44, 56),
    row("radix", 316, 95, 70, 99, 94, 1, 213, 55, 56),
    row("raytrace", 320, 106, 67, 95, 101, 4, 153, 31, 56),
    row("water-nsquared", 365, 158, 57, 90, 148, 6, 277, 43, 55),
    row("water-spatial", 312, 92, 70, 98, 88, 5, 149, 38, 56),
    row("SPECjbb", 416, 252, 39, 72, 219, 13, 205, -23, 54),
    row("SPECweb", 598, 522, 13, 32, 427, 18, 268, -95, 48),
];

#[allow(clippy::too_many_arguments)] // mirrors the table's column order
const fn row(
    name: &'static str,
    eager_lat: u64,
    uncorq_lat: u64,
    reduction_pct: i64,
    c2c_pct: u64,
    pref_lat: u64,
    pref_reduction_pct: i64,
    ht_lat: u64,
    ht_latency_saving_pct: i64,
    ht_traffic_saving_pct: i64,
) -> PaperRow {
    PaperRow {
        name,
        eager_lat,
        uncorq_lat,
        reduction_pct,
        c2c_pct,
        pref_lat,
        pref_reduction_pct,
        ht_lat,
        ht_latency_saving_pct,
        ht_traffic_saving_pct,
    }
}

/// The paper's SPLASH-2 average row (Figures 8(c)/10(b)/11(c)).
pub const SPLASH2_AVERAGE: PaperRow = row("SPLASH-2 avg.", 363, 168, 56, 90, 143, 10, 242, 33, 55);

/// The paper's headline execution-time improvements over Eager, percent
/// (abstract / §7.2): `(uncorq, uncorq_pref)` for each workload class.
pub const EXEC_IMPROVEMENT_SPLASH: (i64, i64) = (23, 26);
/// SPECjbb execution-time improvements (Uncorq, Uncorq+Pref).
pub const EXEC_IMPROVEMENT_SPECJBB: (i64, i64) = (15, 22);
/// SPECweb execution-time improvements (Uncorq, Uncorq+Pref).
pub const EXEC_IMPROVEMENT_SPECWEB: (i64, i64) = (5, 13);

/// Looks up a paper row by application name.
pub fn paper_row(name: &str) -> Option<&'static PaperRow> {
    PAPER_ROWS.iter().find(|r| r.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_rows_matching_profiles() {
        assert_eq!(PAPER_ROWS.len(), 13);
        for r in &PAPER_ROWS {
            assert!(
                ring_workloads::AppProfile::by_name(r.name).is_some(),
                "no profile for paper app {}",
                r.name
            );
        }
    }

    #[test]
    fn reductions_consistent_with_latencies() {
        for r in &PAPER_ROWS {
            let red = 100.0 * (r.eager_lat as f64 - r.uncorq_lat as f64) / r.eager_lat as f64;
            assert!(
                (red - r.reduction_pct as f64).abs() < 1.5,
                "{}: computed {red:.1} vs published {}",
                r.name,
                r.reduction_pct
            );
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(paper_row("fmm").unwrap().eager_lat, 345);
        assert!(paper_row("nope").is_none());
    }
}
