//! Shared harness code for regenerating the paper's figures and tables.
//!
//! Each binary in `src/bin/` regenerates one figure or table of the
//! MICRO 2007 Uncorq paper; this library holds the common machinery:
//! running one `(protocol, application)` cell and formatting results.
//! See EXPERIMENTS.md at the workspace root for the experiment index and
//! recorded paper-vs-measured results.

pub mod paper;
pub mod sweep;

use ring_coherence::ProtocolKind;
use ring_system::{HtMachine, Machine, MachineConfig, Report};
use ring_workloads::AppProfile;

/// Which machine/protocol a harness cell runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Proto {
    /// One of the embedded-ring protocols.
    Ring(ProtocolKind),
    /// Uncorq plus the §5.4 prefetching optimization.
    UncorqPref,
    /// The HyperTransport-style baseline.
    Ht,
}

impl Proto {
    /// The five protocols Figure 9 plots, in order.
    pub const FIG9: [Proto; 5] = [
        Proto::Ring(ProtocolKind::Eager),
        Proto::Ring(ProtocolKind::SupersetCon),
        Proto::Ring(ProtocolKind::SupersetAgg),
        Proto::Ring(ProtocolKind::Uncorq),
        Proto::UncorqPref,
    ];

    /// Display name used in table headers.
    pub fn name(&self) -> &'static str {
        match self {
            Proto::Ring(ProtocolKind::Eager) => "Eager",
            Proto::Ring(ProtocolKind::SupersetCon) => "SupersetCon",
            Proto::Ring(ProtocolKind::SupersetAgg) => "SupersetAgg",
            Proto::Ring(ProtocolKind::Uncorq) => "Uncorq",
            Proto::UncorqPref => "Uncorq+Pref",
            Proto::Ht => "HT",
        }
    }
}

/// Runs one cell on the paper's 64-node machine.
pub fn run_cell(proto: Proto, profile: &AppProfile, seed: u64) -> Report {
    let cfg = config_for(proto, seed);
    match proto {
        Proto::Ht => HtMachine::new(cfg, profile).run(),
        _ => Machine::new(cfg, profile).run(),
    }
}

/// The paper-machine configuration for a protocol selection.
pub fn config_for(proto: Proto, seed: u64) -> MachineConfig {
    let mut cfg = match proto {
        Proto::Ring(kind) => MachineConfig::paper(kind),
        Proto::UncorqPref => MachineConfig::paper_uncorq_pref(),
        // The HT machine reads only cache/net/mem parameters.
        Proto::Ht => MachineConfig::paper(ProtocolKind::Eager),
    };
    cfg.seed = seed;
    if std::env::var_os("UNCORQ_NOCONTENTION").is_some() {
        cfg.net.model_contention = false;
    }
    cfg
}

/// The default seed used by all published tables.
pub const SEED: u64 = 2007;

/// Scales an application profile down when the `UNCORQ_FAST` environment
/// variable is set (useful for smoke-testing every harness binary).
pub fn maybe_fast(profile: AppProfile) -> AppProfile {
    if std::env::var_os("UNCORQ_FAST").is_some() {
        profile.scaled(1_000)
    } else {
        profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proto_names_unique() {
        let mut names: Vec<_> = Proto::FIG9.iter().map(|p| p.name()).collect();
        names.push(Proto::Ht.name());
        let n = names.len();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn config_for_prefetch_sets_flag() {
        assert!(config_for(Proto::UncorqPref, 1).protocol.prefetch);
        assert!(
            !config_for(Proto::Ring(ProtocolKind::Uncorq), 1)
                .protocol
                .prefetch
        );
    }
}
