//! Criterion micro-benchmarks of the protocol building blocks: LTT
//! operations, agent message handling, winner selection, presence filter
//! and NPP lookups, xy routing, and ring vs multicast delivery cost in
//! the network timing model.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ring_cache::{CacheConfig, LineAddr};
use ring_coherence::{
    AgentInput, Ltt, LttConfig, NodePrefetchPredictor, PresenceFilter, Priority, ProtocolConfig,
    ProtocolKind, RequestMsg, ResponseMsg, RingAgent, RingMsg, TxnId, TxnKind,
};
use ring_noc::{Channel, Network, NetworkConfig, NodeId, RingEmbedding, Torus};
use ring_sim::DetRng;

fn req(node: usize, serial: u64, line: u64) -> RequestMsg {
    RequestMsg {
        txn: TxnId {
            node: NodeId(node),
            serial,
        },
        line: LineAddr::new(line),
        kind: TxnKind::Read,
        priority: Priority::new(TxnKind::Read, serial as u32, NodeId(node)),
    }
}

fn bench_ltt(c: &mut Criterion) {
    c.bench_function("ltt/slot_lifecycle", |b| {
        let mut ltt = Ltt::new(LttConfig::default());
        let mut serial = 0u64;
        b.iter(|| {
            serial += 1;
            let r = req(1, serial, serial % 512);
            ltt.see_request(r);
            ltt.snoop_complete(r.txn, r.line, false);
            ltt.see_response(ResponseMsg::initial(&r));
            let ready = ltt.entry(r.line).map(|e| e.ready()).unwrap_or_default();
            for txn in ready {
                black_box(ltt.take(r.line, txn));
            }
        })
    });
}

fn bench_agent(c: &mut Criterion) {
    c.bench_function("agent/foreign_read_transaction", |b| {
        let mut agent = RingAgent::new(
            NodeId(5),
            ProtocolConfig::paper(ProtocolKind::Uncorq),
            CacheConfig::l2_512k(),
            DetRng::seed(1),
        );
        let mut serial = 0u64;
        b.iter(|| {
            serial += 1;
            let r = req(1, serial, serial % 1024);
            let mut n = 0;
            n += agent
                .handle(serial * 10, AgentInput::DirectRequest(r))
                .len();
            n += agent
                .handle(
                    serial * 10 + 7,
                    AgentInput::SnoopDone {
                        txn: r.txn,
                        line: r.line,
                    },
                )
                .len();
            n += agent
                .handle(
                    serial * 10 + 9,
                    AgentInput::RingArrival(RingMsg::Response(ResponseMsg::initial(&r))),
                )
                .len();
            black_box(n)
        })
    });
}

fn bench_winner_selection(c: &mut Criterion) {
    c.bench_function("txn/priority_comparison", |b| {
        let a = Priority::new(TxnKind::WriteMiss, 123, NodeId(5));
        let x = Priority::new(TxnKind::Read, 456, NodeId(9));
        b.iter(|| black_box(black_box(a).beats(black_box(x))))
    });
}

fn bench_filter(c: &mut Criterion) {
    let mut f = PresenceFilter::new(8192, 2);
    for i in 0..4096 {
        f.insert(LineAddr::new(i));
    }
    c.bench_function("filter/lookup", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(f.may_contain(LineAddr::new(i % 8192)))
        })
    });
}

fn bench_npp(c: &mut Criterion) {
    let mut npp = NodePrefetchPredictor::new(8192);
    for i in 0..8192 {
        npp.observe(LineAddr::new(i));
    }
    c.bench_function("npp/observe_and_query", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            npp.observe(LineAddr::new(i % 16384));
            black_box(npp.should_prefetch(LineAddr::new((i * 7) % 16384)))
        })
    });
}

fn bench_network(c: &mut Criterion) {
    let torus = Torus::new(8, 8);
    c.bench_function("noc/xy_route_64", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            black_box(torus.route(NodeId(i % 64), NodeId((i * 17) % 64)))
        })
    });
    c.bench_function("noc/unicast_timed", |b| {
        let mut net = Network::new(Torus::new(8, 8), NetworkConfig::default());
        let mut t = 0u64;
        b.iter(|| {
            t += 10;
            black_box(net.unicast(t, NodeId(0), NodeId(36), 8, Channel::Request))
        })
    });
    c.bench_function("noc/multicast_timed", |b| {
        let mut net = Network::new(Torus::new(8, 8), NetworkConfig::default());
        let mut t = 0u64;
        b.iter(|| {
            t += 100;
            black_box(net.multicast(t, NodeId(0), 8, Channel::Request))
        })
    });
    c.bench_function("noc/ring_lap_timed", |b| {
        // One full lap of 64 ring unicasts — the cost the r message pays.
        let ring = RingEmbedding::boustrophedon(&torus);
        let mut net = Network::new(Torus::new(8, 8), NetworkConfig::default());
        let mut t = 0u64;
        b.iter(|| {
            t += 1000;
            let mut node = NodeId(0);
            let mut at = t;
            for _ in 0..64 {
                let next = ring.successor(node);
                at = net.unicast(at, node, next, 8, Channel::Response).arrival;
                node = next;
            }
            black_box(at)
        })
    });
}

criterion_group!(
    benches,
    bench_ltt,
    bench_agent,
    bench_winner_selection,
    bench_filter,
    bench_npp,
    bench_network
);
criterion_main!(benches);
