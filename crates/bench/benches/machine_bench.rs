//! Criterion end-to-end benchmarks: whole-machine simulation throughput
//! per protocol (events and cycles simulated per wall-clock second), on a
//! reduced workload so each sample stays sub-second.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ring_coherence::ProtocolKind;
use ring_system::{HtMachine, Machine, MachineConfig};
use ring_workloads::AppProfile;

fn profile() -> AppProfile {
    AppProfile::by_name("fmm").expect("fmm").scaled(300)
}

fn bench_protocols(c: &mut Criterion) {
    let mut g = c.benchmark_group("machine/fmm_300ops");
    g.sample_size(10);
    for kind in ProtocolKind::ALL {
        g.bench_with_input(BenchmarkId::new("ring", kind), &kind, |b, &kind| {
            b.iter(|| {
                let mut cfg = MachineConfig::paper(kind);
                cfg.seed = 3;
                let r = Machine::new(cfg, &profile()).run();
                assert!(r.finished);
                black_box(r.exec_cycles)
            })
        });
    }
    g.bench_function("ht", |b| {
        b.iter(|| {
            let mut cfg = MachineConfig::paper(ProtocolKind::Eager);
            cfg.seed = 3;
            let r = HtMachine::new(cfg, &profile()).run();
            assert!(r.finished);
            black_box(r.exec_cycles)
        })
    });
    g.finish();
}

fn bench_uncorq_pref(c: &mut Criterion) {
    c.bench_function("machine/uncorq_pref_fmm_300ops", |b| {
        b.iter(|| {
            let mut cfg = MachineConfig::paper_uncorq_pref();
            cfg.seed = 3;
            let r = Machine::new(cfg, &profile()).run();
            assert!(r.finished);
            black_box(r.exec_cycles)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_protocols, bench_uncorq_pref
}
criterion_main!(benches);
