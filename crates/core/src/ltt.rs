//! The Local Transaction Table (paper §5.1).

use ring_cache::LineAddr;
use ring_noc::NodeId;
use ring_sim::Cycle;
use serde::{Deserialize, Serialize};

use crate::msg::{RequestMsg, ResponseMsg};
use crate::txn::TxnId;

/// LTT geometry (paper Table 3: 512 entries, 64-way).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LttConfig {
    /// Total entries.
    pub entries: usize,
    /// Associativity.
    pub ways: usize,
}

impl Default for LttConfig {
    fn default() -> Self {
        LttConfig {
            entries: 512,
            ways: 64,
        }
    }
}

impl LttConfig {
    /// Number of sets.
    pub fn sets(&self) -> usize {
        (self.entries / self.ways).max(1)
    }
}

/// Per-transaction slot of an LTT entry: the SV bit (snoop done), the RV
/// bit (response received, with the buffered response itself), and the
/// request as observed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TxnSlot {
    /// The transaction.
    pub txn: TxnId,
    /// The request message, once seen (needed to snoop).
    pub request: Option<RequestMsg>,
    /// SV bit: local snoop completed.
    pub snoop_done: bool,
    /// Outcome of the completed snoop (meaningful when `snoop_done`).
    pub snoop_positive: bool,
    /// RV bit + buffered response.
    pub response: Option<ResponseMsg>,
    /// Arrival order of the response, for FIFO draining.
    response_order: u64,
}

impl TxnSlot {
    fn new(txn: TxnId) -> Self {
        TxnSlot {
            txn,
            request: None,
            snoop_done: false,
            snoop_positive: false,
            response: None,
            response_order: 0,
        }
    }
}

/// One LTT entry: all simultaneously in-flight transactions at this node
/// for one memory line, plus the Winning node ID (WID) field.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LttEntry {
    /// The line this entry tracks.
    pub line: LineAddr,
    /// Winning Node ID: the node whose transaction holds the suppliership
    /// of this line. While set, responses of other transactions are
    /// stalled (Ordering-invariant mechanisms 1 and 2).
    pub wid: Option<NodeId>,
    /// A starving-node suppliership reservation (SNID forward progress,
    /// §5.2.2): `(starving node, expiry cycle)`. Unlike `wid`, a
    /// reservation never stalls response forwarding — it only makes the
    /// snoop path defer granting suppliership to other nodes.
    pub reservation: Option<(NodeId, Cycle)>,
    slots: Vec<TxnSlot>,
}

impl LttEntry {
    fn new(line: LineAddr) -> Self {
        LttEntry {
            line,
            wid: None,
            reservation: None,
            slots: Vec::new(),
        }
    }

    fn slot_mut(&mut self, txn: TxnId) -> &mut TxnSlot {
        let i = match self.slots.iter().position(|s| s.txn == txn) {
            Some(i) => i,
            None => {
                self.slots.push(TxnSlot::new(txn));
                self.slots.len() - 1
            }
        };
        &mut self.slots[i]
    }

    /// The slot for `txn`, if tracked.
    pub fn slot(&self, txn: TxnId) -> Option<&TxnSlot> {
        self.slots.iter().find(|s| s.txn == txn)
    }

    /// All in-flight transaction slots of this entry.
    pub fn slots(&self) -> &[TxnSlot] {
        &self.slots
    }

    /// Whether any transaction is still in flight here (a slot exists).
    pub fn busy(&self) -> bool {
        !self.slots.is_empty()
    }

    /// Number of tracked transactions.
    pub fn in_flight(&self) -> usize {
        self.slots.len()
    }

    /// Whether the entry can be deallocated: no slots, no WID, and no
    /// reservation.
    fn idle(&self) -> bool {
        self.slots.is_empty() && self.wid.is_none() && self.reservation.is_none()
    }

    /// Whether a transaction by `node` may forward its response now:
    /// WID clear, or WID equal to `node` (§5.1 condition 3).
    fn wid_allows(&self, node: NodeId) -> bool {
        self.wid.is_none() || self.wid == Some(node)
    }

    /// Transactions whose responses are ready to forward, in drain order:
    /// the WID-owning transaction first, then the rest in response arrival
    /// order.
    pub fn ready(&self) -> Vec<TxnId> {
        let mut ready: Vec<&TxnSlot> = self
            .slots
            .iter()
            .filter(|s| s.snoop_done && s.response.is_some() && self.wid_allows(s.txn.node))
            .collect();
        ready.sort_by_key(|s| s.response_order);
        // Winner (if ready) drains first.
        if let Some(wid) = self.wid {
            ready.sort_by_key(|s| if s.txn.node == wid { 0 } else { 1 });
        }
        ready.iter().map(|s| s.txn).collect()
    }

    /// First transaction [`ready`](Self::ready) would report, without
    /// building the full drain order. The drain loop pops one
    /// transaction at a time, so this is the hot-path form: the winner's
    /// slot if it is ready, else the ready slot whose response arrived
    /// earliest (`response_order` values are globally unique, so the
    /// order is strict and this matches the stable sorts exactly).
    pub fn first_ready(&self) -> Option<TxnId> {
        let mut best: Option<(u8, u64, TxnId)> = None;
        for s in &self.slots {
            if !(s.snoop_done && s.response.is_some() && self.wid_allows(s.txn.node)) {
                continue;
            }
            let rank = u8::from(self.wid != Some(s.txn.node));
            let key = (rank, s.response_order, s.txn);
            if best.is_none_or(|(r, o, _)| (rank, s.response_order) < (r, o)) {
                best = Some(key);
            }
        }
        best.map(|(.., txn)| txn)
    }

    /// Removes the slot for `txn` and returns it (buffered response,
    /// snoop outcome and observed request); clears WID if this
    /// transaction owned it. Called when the combined response is
    /// forwarded.
    pub fn take(&mut self, txn: TxnId) -> Option<TxnSlot> {
        let i = self.slots.iter().position(|s| s.txn == txn)?;
        let slot = self.slots.remove(i);
        if self.wid == Some(txn.node) {
            self.wid = None;
        }
        Some(slot)
    }
}

/// The Local Transaction Table: one per node.
///
/// Records every in-flight transaction the node has observed (an `R`
/// and/or `r` received whose combined response has not yet been forwarded)
/// and enforces the two Uncorq ordering mechanisms of §4.3:
///
/// 1. after the supplier processes a winning `R_i`, it forwards no `r_j`
///    (j ≠ i) before it forwards `r_i+`;
/// 2. a node that received `r_i+` forwards no later `r_j-` until it has
///    received `R_i` and forwarded `r_i+`.
///
/// Both reduce to the WID rule implemented by [`LttEntry::ready`].
///
/// # Examples
///
/// ```
/// use ring_coherence::{Ltt, LttConfig};
/// use ring_cache::LineAddr;
///
/// let mut ltt = Ltt::new(LttConfig::default());
/// let e = ltt.entry_mut(LineAddr::new(9));
/// assert!(!e.busy());
/// ```
#[derive(Debug, Clone)]
pub struct Ltt {
    cfg: LttConfig,
    sets: Vec<Vec<LttEntry>>,
    response_seq: u64,
    stalled_responses: u64,
    /// Live entry count across all sets (kept incrementally; allocation
    /// happens on every observed transaction, so a full scan there
    /// would be hot-path work).
    entries: usize,
    peak_entries: usize,
    overflows: u64,
}

impl Ltt {
    /// Creates an empty LTT.
    ///
    /// # Panics
    ///
    /// Panics if the geometry yields no sets or a non-power-of-two set
    /// count.
    pub fn new(cfg: LttConfig) -> Self {
        let sets = cfg.sets();
        assert!(
            sets.is_power_of_two(),
            "LTT set count must be a power of two"
        );
        Ltt {
            cfg,
            sets: vec![Vec::new(); sets],
            response_seq: 0,
            stalled_responses: 0,
            entries: 0,
            peak_entries: 0,
            overflows: 0,
        }
    }

    fn set_index(&self, line: LineAddr) -> usize {
        (line.raw() as usize) & (self.sets.len() - 1)
    }

    /// The entry for `line`, if allocated.
    pub fn entry(&self, line: LineAddr) -> Option<&LttEntry> {
        self.sets[self.set_index(line)]
            .iter()
            .find(|e| e.line == line)
    }

    /// The entry for `line`, allocating if needed.
    ///
    /// Following the paper's first sizing approach (§5.1), the table is
    /// provisioned for the maximum in-flight transactions; if a workload
    /// nevertheless exceeds a set's associativity, the allocation succeeds
    /// anyway and an overflow is counted (the NACK-and-retry alternative
    /// is explicitly not modeled, as in the paper).
    pub fn entry_mut(&mut self, line: LineAddr) -> &mut LttEntry {
        let ways = self.cfg.ways;
        let idx = self.set_index(line);
        let pos = self.sets[idx].iter().position(|e| e.line == line);
        let i = match pos {
            Some(i) => i,
            None => {
                if self.sets[idx].len() >= ways {
                    self.overflows += 1;
                }
                self.sets[idx].push(LttEntry::new(line));
                self.entries += 1;
                self.peak_entries = self.peak_entries.max(self.entries);
                self.sets[idx].len() - 1
            }
        };
        &mut self.sets[idx][i]
    }

    /// Records an observed request: allocates the slot and remembers the
    /// message (the SV bit is set later, by [`Ltt::snoop_complete`]).
    pub fn see_request(&mut self, req: RequestMsg) {
        let entry = self.entry_mut(req.line);
        let slot = entry.slot_mut(req.txn);
        slot.request = Some(req);
    }

    /// Records a completed local snoop for `txn`; a positive outcome sets
    /// WID to the requester (mechanism 1: this node is the supplier).
    pub fn snoop_complete(&mut self, txn: TxnId, line: LineAddr, positive: bool) {
        let entry = self.entry_mut(line);
        let slot = entry.slot_mut(txn);
        slot.snoop_done = true;
        slot.snoop_positive = positive;
        if positive {
            entry.wid = Some(txn.node);
            // A real winner supersedes any starving-node reservation for
            // the same node; a different node's win is only possible when
            // the reservation already lapsed or was force-cleared.
            if entry
                .reservation
                .map(|(n, _)| n == txn.node)
                .unwrap_or(false)
            {
                entry.reservation = None;
            }
        }
    }

    /// Records an arriving response; a positive response sets WID to the
    /// requester (mechanism 2). Returns whether the response had to be
    /// buffered behind a WID held by another transaction.
    pub fn see_response(&mut self, resp: ResponseMsg) -> bool {
        self.response_seq += 1;
        let seq = self.response_seq;
        let entry = self.entry_mut(resp.line);
        if resp.positive {
            entry.wid = Some(resp.requester());
        }
        let stalled = !entry.wid_allows(resp.requester());
        let slot = entry.slot_mut(resp.txn);
        slot.response = Some(resp);
        slot.response_order = seq;
        if stalled {
            self.stalled_responses += 1;
        }
        stalled
    }

    /// Places a starving-node reservation on `line` (SNID forward
    /// progress, §5.2.2): the snoop path defers granting suppliership to
    /// nodes other than `node` until the reservation is consumed or
    /// lapses at `until`. Response forwarding is unaffected.
    pub fn reserve(&mut self, line: LineAddr, node: NodeId, until: Cycle) {
        let entry = self.entry_mut(line);
        entry.reservation = Some((node, until));
    }

    /// The active reservation on `line`, if any.
    pub fn reservation(&self, line: LineAddr) -> Option<(NodeId, Cycle)> {
        self.entry(line).and_then(|e| e.reservation)
    }

    /// Clears the reservation on `line` if `now` is past its expiry (or
    /// unconditionally when `force`). Returns whether one was cleared.
    pub fn clear_reservation(&mut self, line: LineAddr, now: Cycle, force: bool) -> bool {
        let idx = self.set_index(line);
        if let Some(i) = self.sets[idx].iter().position(|e| e.line == line) {
            let entry = &mut self.sets[idx][i];
            if let Some((_, t)) = entry.reservation {
                if force || now >= t {
                    entry.reservation = None;
                    if entry.idle() {
                        self.sets[idx].remove(i);
                        self.entries -= 1;
                    }
                    return true;
                }
            }
        }
        false
    }

    /// Removes the slot for `txn` on `line` and returns it; deallocates
    /// the entry if it becomes idle.
    pub fn take(&mut self, line: LineAddr, txn: TxnId) -> Option<TxnSlot> {
        let idx = self.set_index(line);
        let set = &mut self.sets[idx];
        let i = set.iter().position(|e| e.line == line)?;
        let slot = set[i].take(txn);
        if set[i].idle() {
            set.remove(i);
            self.entries -= 1;
        }
        slot
    }

    /// Whether any transaction for `line` is in flight at this node —
    /// the In-Progress Transaction Restriction (§3.2) consults this.
    pub fn line_busy(&self, line: LineAddr) -> bool {
        self.entry(line).map(LttEntry::busy).unwrap_or(false)
    }

    /// Responses that were stalled by the WID rule so far.
    pub fn stalled_responses(&self) -> u64 {
        self.stalled_responses
    }

    /// Peak simultaneous entries across all sets.
    pub fn peak_entries(&self) -> usize {
        self.peak_entries
    }

    /// Allocations beyond a set's nominal associativity.
    pub fn overflows(&self) -> u64 {
        self.overflows
    }

    /// Current number of allocated entries.
    pub fn len(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hashes the semantically relevant table contents into `h`, in a
    /// canonical order independent of allocation history.
    ///
    /// Entries are visited sorted by line and slots sorted by transaction
    /// id; each slot's raw `response_order` (a globally increasing
    /// sequence number) is canonicalized to its rank among the entry's
    /// buffered responses, which is the only aspect draining depends on.
    /// Statistics counters are excluded. Used by the `ring-model`
    /// state-space explorer to deduplicate protocol states.
    pub fn digest(&self, h: &mut impl std::hash::Hasher) {
        use std::hash::Hash;
        let mut entries: Vec<&LttEntry> = self.sets.iter().flatten().collect();
        entries.sort_by_key(|e| e.line);
        entries.len().hash(h);
        for e in entries {
            e.line.hash(h);
            e.wid.hash(h);
            e.reservation.hash(h);
            let mut orders: Vec<u64> = e
                .slots
                .iter()
                .filter(|s| s.response.is_some())
                .map(|s| s.response_order)
                .collect();
            orders.sort_unstable();
            let mut slots: Vec<&TxnSlot> = e.slots.iter().collect();
            slots.sort_by_key(|s| s.txn);
            slots.len().hash(h);
            for s in slots {
                s.txn.hash(h);
                s.request.hash(h);
                s.snoop_done.hash(h);
                s.snoop_positive.hash(h);
                s.response.hash(h);
                if s.response.is_some() {
                    orders.binary_search(&s.response_order).ok().hash(h);
                }
            }
        }
    }
}

impl ring_snapshot::Snap for TxnSlot {
    fn save(&self, w: &mut ring_snapshot::SnapWriter) {
        w.put(&self.txn);
        w.put(&self.request);
        w.put(&self.snoop_done);
        w.put(&self.snoop_positive);
        w.put(&self.response);
        w.put(&self.response_order);
    }
    fn load(r: &mut ring_snapshot::SnapReader<'_>) -> Result<Self, ring_snapshot::SnapshotError> {
        Ok(TxnSlot {
            txn: r.get()?,
            request: r.get()?,
            snoop_done: r.get()?,
            snoop_positive: r.get()?,
            response: r.get()?,
            response_order: r.get()?,
        })
    }
}

impl ring_snapshot::Snap for LttEntry {
    fn save(&self, w: &mut ring_snapshot::SnapWriter) {
        w.put(&self.line);
        w.put(&self.wid);
        w.put(&self.reservation);
        w.put(&self.slots);
    }
    fn load(r: &mut ring_snapshot::SnapReader<'_>) -> Result<Self, ring_snapshot::SnapshotError> {
        Ok(LttEntry {
            line: r.get()?,
            wid: r.get()?,
            reservation: r.get()?,
            slots: r.get()?,
        })
    }
}

impl Ltt {
    /// Serializes the full table, preserving per-set entry order (which
    /// victim-free allocation order and drain order depend on) and the
    /// raw response sequence numbers.
    pub fn snap_save(&self, w: &mut ring_snapshot::SnapWriter) {
        w.put(&self.sets);
        w.put(&self.response_seq);
        w.put(&self.stalled_responses);
        w.put(&self.entries);
        w.put(&self.peak_entries);
        w.put(&self.overflows);
    }

    /// Rebuilds a table from a snapshot taken under the same geometry.
    pub fn snap_load(
        r: &mut ring_snapshot::SnapReader<'_>,
        cfg: LttConfig,
    ) -> Result<Self, ring_snapshot::SnapshotError> {
        let mut ltt = Ltt::new(cfg);
        let sets: Vec<Vec<LttEntry>> = r.get()?;
        if sets.len() != ltt.sets.len() {
            return Err(r.malformed("LTT set count does not match the configuration"));
        }
        ltt.sets = sets;
        ltt.response_seq = r.get()?;
        ltt.stalled_responses = r.get()?;
        ltt.entries = r.get()?;
        ltt.peak_entries = r.get()?;
        ltt.overflows = r.get()?;
        Ok(ltt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::{Priority, TxnKind};

    fn txn(node: usize, serial: u64) -> TxnId {
        TxnId {
            node: NodeId(node),
            serial,
        }
    }

    fn req(node: usize, serial: u64, line: u64, kind: TxnKind) -> RequestMsg {
        RequestMsg {
            txn: txn(node, serial),
            line: LineAddr::new(line),
            kind,
            priority: Priority::new(kind, 0, NodeId(node)),
        }
    }

    fn resp(node: usize, serial: u64, line: u64, positive: bool) -> ResponseMsg {
        let mut r = ResponseMsg::initial(&req(node, serial, line, TxnKind::Read));
        r.positive = positive;
        r
    }

    #[test]
    fn slot_lifecycle() {
        let mut ltt = Ltt::new(LttConfig::default());
        let line = LineAddr::new(5);
        ltt.see_request(req(1, 0, 5, TxnKind::Read));
        assert!(ltt.line_busy(line));
        ltt.snoop_complete(txn(1, 0), line, false);
        ltt.see_response(resp(1, 0, 5, false));
        let ready = ltt.entry(line).unwrap().ready();
        assert_eq!(ready, vec![txn(1, 0)]);
        let slot = ltt.take(line, txn(1, 0)).unwrap();
        assert!(!slot.response.unwrap().positive);
        assert!(slot.snoop_done);
        assert!(!ltt.line_busy(line));
        assert!(ltt.is_empty());
    }

    #[test]
    fn response_without_snoop_not_ready() {
        let mut ltt = Ltt::new(LttConfig::default());
        let line = LineAddr::new(5);
        ltt.see_request(req(1, 0, 5, TxnKind::Read));
        ltt.see_response(resp(1, 0, 5, false));
        assert!(ltt.entry(line).unwrap().ready().is_empty());
        ltt.snoop_complete(txn(1, 0), line, false);
        assert_eq!(ltt.entry(line).unwrap().ready(), vec![txn(1, 0)]);
    }

    #[test]
    fn positive_snoop_sets_wid_and_blocks_losers() {
        // Mechanism 1: after the supplier snoops the winner positively,
        // the loser's response stalls until the winner's is forwarded.
        let mut ltt = Ltt::new(LttConfig::default());
        let line = LineAddr::new(7);
        // Winner A's request snooped positive.
        ltt.see_request(req(1, 0, 7, TxnKind::Read));
        ltt.snoop_complete(txn(1, 0), line, true);
        // Loser B fully present (snooped + response) — but stalled.
        ltt.see_request(req(2, 0, 7, TxnKind::Read));
        ltt.snoop_complete(txn(2, 0), line, false);
        assert!(ltt.see_response(resp(2, 0, 7, false)));
        assert!(ltt.entry(line).unwrap().ready().is_empty());
        // Winner's response arrives → winner ready first.
        ltt.see_response(resp(1, 0, 7, false)); // will be combined to + by agent
        assert_eq!(ltt.entry(line).unwrap().ready(), vec![txn(1, 0)]);
        // Forward winner → loser drains.
        ltt.take(line, txn(1, 0));
        assert_eq!(ltt.entry(line).unwrap().ready(), vec![txn(2, 0)]);
        assert_eq!(ltt.stalled_responses(), 1);
    }

    #[test]
    fn positive_response_sets_wid_mechanism_two() {
        // Mechanism 2 (the Figure 7 scenario): r_A+ arrives before R_A;
        // a later r_B- must not overtake it.
        let mut ltt = Ltt::new(LttConfig::default());
        let line = LineAddr::new(9);
        // r_A+ arrives first (R_A delayed in the network).
        assert!(!ltt.see_response(resp(1, 0, 9, true)));
        // B's request + snoop + response all arrive.
        ltt.see_request(req(2, 0, 9, TxnKind::WriteHit));
        ltt.snoop_complete(txn(2, 0), line, false);
        assert!(ltt.see_response(resp(2, 0, 9, false)));
        // B is stalled: WID = A.
        assert!(ltt.entry(line).unwrap().ready().is_empty());
        // R_A finally arrives and is snooped (negatively — C is not the
        // supplier in Figure 7).
        ltt.see_request(req(1, 0, 9, TxnKind::Read));
        ltt.snoop_complete(txn(1, 0), line, false);
        // Now A drains first, then B.
        assert_eq!(ltt.entry(line).unwrap().ready(), vec![txn(1, 0)]);
        ltt.take(line, txn(1, 0));
        assert_eq!(ltt.entry(line).unwrap().ready(), vec![txn(2, 0)]);
    }

    #[test]
    fn two_negative_responses_can_reorder() {
        // "Two negative responses can always overtake each other."
        let mut ltt = Ltt::new(LttConfig::default());
        let line = LineAddr::new(11);
        ltt.see_request(req(1, 0, 11, TxnKind::Read));
        ltt.see_request(req(2, 0, 11, TxnKind::Read));
        ltt.see_response(resp(1, 0, 11, false));
        ltt.see_response(resp(2, 0, 11, false));
        // Only B's snoop is done: B may forward even though A's response
        // arrived first.
        ltt.snoop_complete(txn(2, 0), line, false);
        assert_eq!(ltt.entry(line).unwrap().ready(), vec![txn(2, 0)]);
    }

    #[test]
    fn reservation_tracks_and_expires() {
        let mut ltt = Ltt::new(LttConfig::default());
        let line = LineAddr::new(13);
        ltt.reserve(line, NodeId(5), 1000);
        assert_eq!(ltt.reservation(line), Some((NodeId(5), 1000)));
        assert!(!ltt.clear_reservation(line, 999, false));
        assert!(ltt.clear_reservation(line, 1000, false));
        assert_eq!(ltt.reservation(line), None);
    }

    #[test]
    fn reservation_does_not_stall_responses() {
        // Unlike the WID, a starving-node reservation must not delay
        // response forwarding -- it only gates suppliership grants.
        let mut ltt = Ltt::new(LttConfig::default());
        let line = LineAddr::new(13);
        ltt.reserve(line, NodeId(5), 1000);
        ltt.see_request(req(2, 0, 13, TxnKind::Read));
        ltt.snoop_complete(txn(2, 0), line, false);
        ltt.see_response(resp(2, 0, 13, false));
        assert_eq!(ltt.entry(line).unwrap().ready(), vec![txn(2, 0)]);
    }

    #[test]
    fn force_clear_reservation() {
        let mut ltt = Ltt::new(LttConfig::default());
        let line = LineAddr::new(14);
        ltt.reserve(line, NodeId(5), 1000);
        assert!(ltt.clear_reservation(line, 0, true));
        assert!(!ltt.clear_reservation(line, 0, true));
    }

    #[test]
    fn positive_snoop_consumes_matching_reservation() {
        let mut ltt = Ltt::new(LttConfig::default());
        let line = LineAddr::new(15);
        ltt.reserve(line, NodeId(5), 1000);
        ltt.see_request(req(5, 0, 15, TxnKind::Read));
        ltt.snoop_complete(txn(5, 0), line, true);
        assert_eq!(ltt.reservation(line), None);
        assert_eq!(ltt.entry(line).unwrap().wid, Some(NodeId(5)));
    }

    #[test]
    fn overflow_is_counted_not_fatal() {
        let mut ltt = Ltt::new(LttConfig {
            entries: 2,
            ways: 2,
        });
        // 1 set, 2 ways; third line overflows but still allocates.
        ltt.see_request(req(1, 0, 1, TxnKind::Read));
        ltt.see_request(req(1, 1, 2, TxnKind::Read));
        ltt.see_request(req(1, 2, 3, TxnKind::Read));
        assert_eq!(ltt.overflows(), 1);
        assert_eq!(ltt.len(), 3);
    }

    #[test]
    fn take_unknown_returns_none() {
        let mut ltt = Ltt::new(LttConfig::default());
        assert!(ltt.take(LineAddr::new(1), txn(1, 0)).is_none());
    }

    #[test]
    fn peak_entries_tracks_high_water() {
        let mut ltt = Ltt::new(LttConfig::default());
        ltt.see_request(req(1, 0, 1, TxnKind::Read));
        ltt.see_request(req(1, 1, 2, TxnKind::Read));
        ltt.snoop_complete(txn(1, 0), LineAddr::new(1), false);
        ltt.see_response(resp(1, 0, 1, false));
        ltt.take(LineAddr::new(1), txn(1, 0));
        assert_eq!(ltt.peak_entries(), 2);
        assert_eq!(ltt.len(), 1);
    }
}
