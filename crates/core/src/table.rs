//! Declarative guarded-action transition tables for the ring protocols.
//!
//! The paper's correctness argument rests on a large transition table
//! that historically lived only inside [`crate::agent`]'s nested
//! matches. This module lifts the two decision kernels into data:
//!
//! - [`SupplierTable`] — what a node does when it *snoops* a foreign
//!   request: `(line state × request kind × guard) → (snoop outcome,
//!   suppliership action, next local state)`. [`crate::RingAgent`]
//!   consults this table directly on the snoop path, so the statically
//!   checked artifact **is** the shipped logic.
//! - [`DecisionTable`] — what a *requester* does when it consumes its
//!   own combined response: `(response class × guard cube) → action`.
//!   The agent implements this logic independently
//!   (`own_response`/`try_decide`); the `ring-model` crate checks the
//!   two encodings against each other (differential conformance).
//!
//! Both tables come with a completeness/determinism analysis: for every
//! protocol variant, every `state × message` pair must be matched by
//! **exactly one** row whose guard admits the variant's configuration.
//! Holes (unhandled pairs) and ambiguities (overlapping rows) are
//! reported as data, and `modelcheck` fails the build on either.

use ring_cache::LineState;

use crate::config::ProtocolConfig;
use crate::txn::TxnKind;

// ---------------------------------------------------------------------
// Supplier-side snoop table
// ---------------------------------------------------------------------

/// The protocol-visible state of a line at a snooping node: the six
/// stable states plus the single transient class (the node itself has
/// an outstanding transaction on the line, so it snoops as a
/// non-supplier regardless of the resident copy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SnoopState {
    /// Not present (or invalidated).
    Invalid,
    /// Valid non-supplier copy.
    Shared,
    /// Clean sole copy; supplier.
    Exclusive,
    /// Clean supplier with possible sharers.
    MasterShared,
    /// Modified sole copy; supplier.
    Dirty,
    /// Modified supplier with possible sharers.
    Tagged,
    /// An own transaction is outstanding on the line (paper §3.2: the
    /// copy is in flux and must not answer as a supplier).
    Transient,
}

impl SnoopState {
    /// Every snoopable state, for completeness enumeration.
    pub const ALL: [SnoopState; 7] = [
        SnoopState::Invalid,
        SnoopState::Shared,
        SnoopState::Exclusive,
        SnoopState::MasterShared,
        SnoopState::Dirty,
        SnoopState::Tagged,
        SnoopState::Transient,
    ];

    /// Classifies a resident line state plus the transient flag into the
    /// table's state domain.
    pub fn classify(state: LineState, transient: bool) -> Self {
        if transient {
            return SnoopState::Transient;
        }
        match state {
            LineState::Invalid => SnoopState::Invalid,
            LineState::Shared => SnoopState::Shared,
            LineState::Exclusive => SnoopState::Exclusive,
            LineState::MasterShared => SnoopState::MasterShared,
            LineState::Dirty => SnoopState::Dirty,
            LineState::Tagged => SnoopState::Tagged,
        }
    }
}

impl std::fmt::Display for SnoopState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SnoopState::Invalid => "I",
            SnoopState::Shared => "S",
            SnoopState::Exclusive => "E",
            SnoopState::MasterShared => "MS",
            SnoopState::Dirty => "D",
            SnoopState::Tagged => "T",
            SnoopState::Transient => "X",
        };
        f.write_str(s)
    }
}

/// Guard on a supplier-table row, evaluated against the protocol
/// configuration (the §5.5 `reads_keep_supplier` extension splits the
/// supplier × read rows into two families).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupplierGuard {
    /// Row applies under every configuration.
    Always,
    /// Row applies only when `reads_keep_supplier` is set.
    KeepSupplier,
    /// Row applies only when `reads_keep_supplier` is clear.
    TransferSupplier,
}

impl SupplierGuard {
    /// Whether this guard admits a configuration with the given
    /// `reads_keep_supplier` setting.
    pub fn admits(self, reads_keep_supplier: bool) -> bool {
        match self {
            SupplierGuard::Always => true,
            SupplierGuard::KeepSupplier => reads_keep_supplier,
            SupplierGuard::TransferSupplier => !reads_keep_supplier,
        }
    }
}

/// The suppliership a positive snoop sends to the requester.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupplyAction {
    /// Whether the line's data travels with the message (`false` for the
    /// ownership-only transfer a MasterShared supplier sends to a
    /// `WriteHit` requester, whose Shared copy holds the same data).
    pub with_data: bool,
    /// The state the requester installs on completion.
    pub requester_state: LineState,
}

/// One guarded row of the supplier table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnoopRow {
    /// Protocol-visible state of the snooped line.
    pub state: SnoopState,
    /// Kind of the foreign request being snooped.
    pub req: TxnKind,
    /// Configuration guard.
    pub guard: SupplierGuard,
    /// Whether the snoop answers positive (this node is the supplier).
    pub positive: bool,
    /// Suppliership to send when positive.
    pub supply: Option<SupplyAction>,
    /// The state this node's copy moves to; `None` leaves the copy
    /// untouched. `Some(Invalid)` additionally invalidates the core's
    /// L1 copy (inclusion).
    pub next_state: Option<LineState>,
}

impl SnoopRow {
    const fn new(
        state: SnoopState,
        req: TxnKind,
        guard: SupplierGuard,
        positive: bool,
        supply: Option<SupplyAction>,
        next_state: Option<LineState>,
    ) -> Self {
        SnoopRow {
            state,
            req,
            guard,
            positive,
            supply,
            next_state,
        }
    }
}

/// Why a table lookup failed; also the unit of the static analysis
/// report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableError {
    /// No row matched the pair (an unhandled `state × message` hole).
    Unhandled,
    /// More than one row matched the pair (nondeterministic table).
    Ambiguous,
}

impl std::fmt::Display for TableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableError::Unhandled => f.write_str("unhandled state x message pair"),
            TableError::Ambiguous => f.write_str("ambiguous state x message pair"),
        }
    }
}

impl std::error::Error for TableError {}

/// Result of the completeness/determinism analysis of one table under
/// one configuration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TableAnalysis {
    /// `state × message` pairs no row handles.
    pub holes: Vec<String>,
    /// `state × message` pairs more than one row handles.
    pub ambiguities: Vec<String>,
}

impl TableAnalysis {
    /// Whether the table is total and deterministic.
    pub fn is_sound(&self) -> bool {
        self.holes.is_empty() && self.ambiguities.is_empty()
    }
}

/// The declarative supplier-side snoop table (paper §2.2 plus the §5.5
/// read-suppliership extension). Consulted by [`crate::RingAgent`] on
/// every snoop; statically analyzed and exhaustively explored by
/// `ring-model`.
#[derive(Debug, Clone, PartialEq)]
pub struct SupplierTable {
    rows: Vec<SnoopRow>,
}

impl SupplierTable {
    /// The canonical table shipped with the protocol family.
    pub fn canonical() -> Self {
        use LineState as L;
        use SnoopState as S;
        use SupplierGuard as G;
        use TxnKind as K;
        let supply = |with_data, requester_state| {
            Some(SupplyAction {
                with_data,
                requester_state,
            })
        };
        let mut rows = Vec::new();
        // Invalid and Transient copies answer negative and stay put; a
        // transient copy defers its invalidation to the collision
        // machinery (`must_invalidate` on the outstanding transaction).
        for st in [S::Invalid, S::Transient] {
            for k in [K::Read, K::WriteMiss, K::WriteHit] {
                rows.push(SnoopRow::new(st, k, G::Always, false, None, None));
            }
        }
        // A plain Shared copy is not the supplier: reads pass it by,
        // writes invalidate it.
        rows.push(SnoopRow::new(
            S::Shared,
            K::Read,
            G::Always,
            false,
            None,
            None,
        ));
        for k in [K::WriteMiss, K::WriteHit] {
            rows.push(SnoopRow::new(
                S::Shared,
                k,
                G::Always,
                false,
                None,
                Some(L::Invalid),
            ));
        }
        // Supplier states × Read, default (§2.2): supplier status
        // transfers to the requester; the old supplier demotes to
        // Shared. Clean suppliers hand over MasterShared, dirty ones
        // hand over Tagged (the writeback obligation moves).
        for (st, req_state) in [
            (S::Exclusive, L::MasterShared),
            (S::MasterShared, L::MasterShared),
            (S::Dirty, L::Tagged),
            (S::Tagged, L::Tagged),
        ] {
            rows.push(SnoopRow::new(
                st,
                K::Read,
                G::TransferSupplier,
                true,
                supply(true, req_state),
                Some(L::Shared),
            ));
        }
        // Supplier states × Read, §5.5 extension: the supplier keeps
        // the designation (E→MS, D→T) and the requester installs a
        // plain Shared copy.
        for (st, kept) in [
            (S::Exclusive, L::MasterShared),
            (S::MasterShared, L::MasterShared),
            (S::Dirty, L::Tagged),
            (S::Tagged, L::Tagged),
        ] {
            rows.push(SnoopRow::new(
                st,
                K::Read,
                G::KeepSupplier,
                true,
                supply(true, L::Shared),
                Some(kept),
            ));
        }
        // Supplier states × writes: the supplier always ships data to a
        // WriteMiss and invalidates its own copy.
        for st in [S::Exclusive, S::MasterShared, S::Dirty, S::Tagged] {
            rows.push(SnoopRow::new(
                st,
                K::WriteMiss,
                G::Always,
                true,
                supply(true, L::Dirty),
                Some(L::Invalid),
            ));
        }
        // Supplier states × WriteHit. A MasterShared supplier legitimately
        // coexists with the requester's Shared copy, so the upgrade
        // transfers ownership only (the bandwidth win of upgrades; the
        // requester declines and retries if its copy was compromised by a
        // colliding write). An Exclusive/Dirty/Tagged copy, by SWMR, is
        // the *only* valid copy on chip — a WriteHit reaching one means
        // the requester's copy went stale after it classified the store
        // (it lost a write race while transient), so the transfer must
        // carry data or the write completes against stale data. For D/T
        // this is also the only copy of the dirty data: an ownership-only
        // transfer would drop it with memory stale.
        rows.push(SnoopRow::new(
            S::MasterShared,
            K::WriteHit,
            G::Always,
            true,
            supply(false, L::Dirty),
            Some(L::Invalid),
        ));
        for st in [S::Exclusive, S::Dirty, S::Tagged] {
            rows.push(SnoopRow::new(
                st,
                K::WriteHit,
                G::Always,
                true,
                supply(true, L::Dirty),
                Some(L::Invalid),
            ));
        }
        SupplierTable { rows }
    }

    /// The raw rows (for analysis and display).
    pub fn rows(&self) -> &[SnoopRow] {
        &self.rows
    }

    /// Returns a copy of the table with row `i` replaced (the mutation
    /// harness's entry point).
    pub fn with_row(&self, i: usize, row: SnoopRow) -> Self {
        let mut t = self.clone();
        t.rows[i] = row;
        t
    }

    /// Looks up the unique row for a `state × message` pair under the
    /// given configuration.
    pub fn lookup(
        &self,
        state: SnoopState,
        req: TxnKind,
        cfg: &ProtocolConfig,
    ) -> Result<&SnoopRow, TableError> {
        let mut found = None;
        for row in &self.rows {
            if row.state == state && row.req == req && row.guard.admits(cfg.reads_keep_supplier) {
                if found.is_some() {
                    return Err(TableError::Ambiguous);
                }
                found = Some(row);
            }
        }
        found.ok_or(TableError::Unhandled)
    }

    /// Completeness/determinism analysis under one configuration: every
    /// `state × message` pair must match exactly one admitted row.
    pub fn analyze(&self, cfg: &ProtocolConfig) -> TableAnalysis {
        let mut out = TableAnalysis::default();
        for st in SnoopState::ALL {
            for k in [TxnKind::Read, TxnKind::WriteMiss, TxnKind::WriteHit] {
                match self.lookup(st, k, cfg) {
                    Ok(_) => {}
                    Err(TableError::Unhandled) => out.holes.push(format!("{st} x {k}")),
                    Err(TableError::Ambiguous) => out.ambiguities.push(format!("{st} x {k}")),
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Requester-side decision table
// ---------------------------------------------------------------------

/// Classification of a requester's own combined response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RespClass {
    /// `r+` without a squash mark: a supplier was found and this
    /// transaction won there.
    Positive,
    /// `r+` carrying a squash mark: a supplier serviced this attempt,
    /// but a committed winner upstream of it baked a stale snoop outcome
    /// into the response. The attempt must fail over — the squash
    /// dominates the positive — yet a suppliership is already in flight
    /// to the requester, so the abort waits for it (and flushes a
    /// with-data payload to memory) before retrying.
    PosSquashed,
    /// `r-` with neither squash nor Loser-Hint mark.
    NegClean,
    /// `r-` carrying a squash or Loser-Hint mark: retry. (A Loser Hint
    /// on a response that later combined *positive* is overridden — it
    /// is only a pairwise guess — so it never reaches this class.)
    NegMarked,
}

impl RespClass {
    /// All classes, for completeness enumeration.
    pub const ALL: [RespClass; 4] = [
        RespClass::Positive,
        RespClass::PosSquashed,
        RespClass::NegClean,
        RespClass::NegMarked,
    ];

    /// Classifies a concrete response.
    pub fn classify(positive: bool, squashed: bool, loser_hint: bool) -> Self {
        if positive && squashed {
            RespClass::PosSquashed
        } else if positive {
            RespClass::Positive
        } else if squashed || loser_hint {
            RespClass::NegMarked
        } else {
            RespClass::NegClean
        }
    }
}

impl std::fmt::Display for RespClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RespClass::Positive => "r+",
            RespClass::PosSquashed => "r+(squashed)",
            RespClass::NegClean => "r-",
            RespClass::NegMarked => "r-(marked)",
        };
        f.write_str(s)
    }
}

/// The concrete guard context of a requester decision, assembled from
/// the transaction's bookkeeping at decision time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DecisionCtx {
    /// A passing `r+` of a colliding transaction proved this one lost.
    pub lost: bool,
    /// The suppliership message already arrived.
    pub has_suppliership: bool,
    /// Every known collider's response has been observed.
    pub colliders_seen: bool,
    /// This transaction's priority beats every known collider's.
    pub beats_all: bool,
    /// An invalidating write hit whose local copy survived (can
    /// complete without memory).
    pub local_write_ok: bool,
    /// The bound suppliership is ownership-only (no data) while the
    /// local copy is compromised (`must_invalidate`/`copy_lost`):
    /// completing would write against stale data.
    pub stale_suppliership: bool,
}

impl DecisionCtx {
    /// Every guard assignment, for completeness enumeration.
    pub fn enumerate() -> impl Iterator<Item = DecisionCtx> {
        (0u8..64).map(|b| DecisionCtx {
            lost: b & 1 != 0,
            has_suppliership: b & 2 != 0,
            colliders_seen: b & 4 != 0,
            beats_all: b & 8 != 0,
            local_write_ok: b & 16 != 0,
            stale_suppliership: b & 32 != 0,
        })
    }
}

/// A guard cube over [`DecisionCtx`]: each field constrains the
/// corresponding bit, `None` is don't-care.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DecisionGuard {
    /// Constraint on [`DecisionCtx::lost`].
    pub lost: Option<bool>,
    /// Constraint on [`DecisionCtx::has_suppliership`].
    pub has_suppliership: Option<bool>,
    /// Constraint on [`DecisionCtx::colliders_seen`].
    pub colliders_seen: Option<bool>,
    /// Constraint on [`DecisionCtx::beats_all`].
    pub beats_all: Option<bool>,
    /// Constraint on [`DecisionCtx::local_write_ok`].
    pub local_write_ok: Option<bool>,
    /// Constraint on [`DecisionCtx::stale_suppliership`].
    pub stale_suppliership: Option<bool>,
}

impl DecisionGuard {
    /// The unconstrained guard (matches every context).
    pub const ANY: DecisionGuard = DecisionGuard {
        lost: None,
        has_suppliership: None,
        colliders_seen: None,
        beats_all: None,
        local_write_ok: None,
        stale_suppliership: None,
    };

    /// Whether the cube admits a concrete context.
    pub fn admits(&self, ctx: DecisionCtx) -> bool {
        fn ok(c: Option<bool>, v: bool) -> bool {
            c.is_none_or(|want| want == v)
        }
        ok(self.lost, ctx.lost)
            && ok(self.has_suppliership, ctx.has_suppliership)
            && ok(self.colliders_seen, ctx.colliders_seen)
            && ok(self.beats_all, ctx.beats_all)
            && ok(self.local_write_ok, ctx.local_write_ok)
            && ok(self.stale_suppliership, ctx.stale_suppliership)
    }
}

/// What the requester does with its own response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionAction {
    /// Commit and complete now (suppliership already held).
    Complete,
    /// Commit; wait for the suppliership message in flight.
    WaitSupplier,
    /// Fail the attempt and schedule a retry.
    Retry,
    /// Defer the decision until more collider responses arrive.
    Defer,
    /// Complete an invalidating write hit from the intact local copy.
    CompleteLocal,
    /// Commit to a memory fill.
    MemFetch,
}

impl std::fmt::Display for DecisionAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DecisionAction::Complete => "complete",
            DecisionAction::WaitSupplier => "wait-supplier",
            DecisionAction::Retry => "retry",
            DecisionAction::Defer => "defer",
            DecisionAction::CompleteLocal => "complete-local",
            DecisionAction::MemFetch => "mem-fetch",
        };
        f.write_str(s)
    }
}

/// One guarded row of the decision table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionRow {
    /// Response class the row matches.
    pub resp: RespClass,
    /// Guard cube.
    pub guard: DecisionGuard,
    /// Action taken.
    pub action: DecisionAction,
}

/// The declarative requester decision table (paper §3.3, §4.4, §5.3).
///
/// [`crate::RingAgent`] implements this logic in `own_response` /
/// `try_decide`; `ring-model` replays every explored transition
/// through both encodings and flags divergence.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTable {
    rows: Vec<DecisionRow>,
}

impl DecisionTable {
    /// The canonical decision table.
    pub fn canonical() -> Self {
        use DecisionAction as A;
        use RespClass as R;
        let g = |f: fn(&mut DecisionGuard)| {
            let mut guard = DecisionGuard::ANY;
            f(&mut guard);
            guard
        };
        let rows = vec![
            // A positive response commits the win (§5.3's point of no
            // return); completion waits only for the suppliership.
            DecisionRow {
                resp: R::Positive,
                guard: g(|c| {
                    c.has_suppliership = Some(true);
                    c.stale_suppliership = Some(false);
                }),
                action: A::Complete,
            },
            // An ownership-only suppliership bound while the local copy
            // is compromised by a colliding write: completing would write
            // against stale data, so the attempt fails and retries (the
            // retry reissues as a WriteMiss and fetches current data).
            DecisionRow {
                resp: R::Positive,
                guard: g(|c| {
                    c.has_suppliership = Some(true);
                    c.stale_suppliership = Some(true);
                }),
                action: A::Retry,
            },
            DecisionRow {
                resp: R::Positive,
                guard: g(|c| c.has_suppliership = Some(false)),
                action: A::WaitSupplier,
            },
            // A squashed positive fails over, but the positive proves a
            // suppliership is inbound: with it already bound the attempt
            // retries at once (flushing a with-data payload to memory);
            // without it the abort parks until the transfer lands —
            // retrying immediately would race the reissue against the
            // only current copy still on the wire and bind stale memory.
            DecisionRow {
                resp: R::PosSquashed,
                guard: g(|c| c.has_suppliership = Some(true)),
                action: A::Retry,
            },
            DecisionRow {
                resp: R::PosSquashed,
                guard: g(|c| c.has_suppliership = Some(false)),
                action: A::WaitSupplier,
            },
            // A marked negative always retries (squash or Loser Hint).
            DecisionRow {
                resp: R::NegMarked,
                guard: DecisionGuard::ANY,
                action: A::Retry,
            },
            // A clean negative after a passing r+ proved us the loser.
            DecisionRow {
                resp: R::NegClean,
                guard: g(|c| c.lost = Some(true)),
                action: A::Retry,
            },
            // Undecided collisions defer (the §4.4 reorderings).
            DecisionRow {
                resp: R::NegClean,
                guard: g(|c| {
                    c.lost = Some(false);
                    c.colliders_seen = Some(false);
                }),
                action: A::Defer,
            },
            // All collider responses seen and at least one beats us.
            DecisionRow {
                resp: R::NegClean,
                guard: g(|c| {
                    c.lost = Some(false);
                    c.colliders_seen = Some(true);
                    c.beats_all = Some(false);
                }),
                action: A::Retry,
            },
            // Winner with an intact local copy: the invalidating write
            // hit completes without memory.
            DecisionRow {
                resp: R::NegClean,
                guard: g(|c| {
                    c.lost = Some(false);
                    c.colliders_seen = Some(true);
                    c.beats_all = Some(true);
                    c.local_write_ok = Some(true);
                }),
                action: A::CompleteLocal,
            },
            // Winner without usable local data: memory fill.
            DecisionRow {
                resp: R::NegClean,
                guard: g(|c| {
                    c.lost = Some(false);
                    c.colliders_seen = Some(true);
                    c.beats_all = Some(true);
                    c.local_write_ok = Some(false);
                }),
                action: A::MemFetch,
            },
        ];
        DecisionTable { rows }
    }

    /// The raw rows (for analysis and mutation).
    pub fn rows(&self) -> &[DecisionRow] {
        &self.rows
    }

    /// Returns a copy of the table with row `i` replaced.
    pub fn with_row(&self, i: usize, row: DecisionRow) -> Self {
        let mut t = self.clone();
        t.rows[i] = row;
        t
    }

    /// The unique action for a response class under a concrete context.
    pub fn decide(&self, resp: RespClass, ctx: DecisionCtx) -> Result<DecisionAction, TableError> {
        let mut found = None;
        for row in &self.rows {
            if row.resp == resp && row.guard.admits(ctx) {
                if found.is_some() {
                    return Err(TableError::Ambiguous);
                }
                found = Some(row.action);
            }
        }
        found.ok_or(TableError::Unhandled)
    }

    /// Completeness/determinism analysis: every `class × context` point
    /// must be matched by exactly one row.
    pub fn analyze(&self) -> TableAnalysis {
        let mut out = TableAnalysis::default();
        for resp in RespClass::ALL {
            for ctx in DecisionCtx::enumerate() {
                match self.decide(resp, ctx) {
                    Ok(_) => {}
                    Err(TableError::Unhandled) => out.holes.push(format!("{resp} x {ctx:?}")),
                    Err(TableError::Ambiguous) => out.ambiguities.push(format!("{resp} x {ctx:?}")),
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ProtocolKind, ProtocolVariant};

    #[test]
    fn canonical_supplier_table_is_sound_for_all_variants() {
        let t = SupplierTable::canonical();
        for v in ProtocolVariant::ALL {
            for keep in [false, true] {
                let mut cfg = v.config();
                cfg.reads_keep_supplier = keep;
                let a = t.analyze(&cfg);
                assert!(
                    a.is_sound(),
                    "{v} keep={keep}: holes={:?} ambiguities={:?}",
                    a.holes,
                    a.ambiguities
                );
            }
        }
    }

    #[test]
    fn canonical_decision_table_is_sound() {
        let a = DecisionTable::canonical().analyze();
        assert!(a.is_sound(), "{:?}", a);
    }

    #[test]
    fn supplier_lookup_matches_legacy_semantics() {
        let t = SupplierTable::canonical();
        let cfg = ProtocolConfig::paper(ProtocolKind::Eager);
        // Dirty supplier hands Tagged to a reader and demotes to Shared.
        let row = t.lookup(SnoopState::Dirty, TxnKind::Read, &cfg).unwrap();
        assert!(row.positive);
        assert_eq!(
            row.supply,
            Some(SupplyAction {
                with_data: true,
                requester_state: LineState::Tagged
            })
        );
        assert_eq!(row.next_state, Some(LineState::Shared));
        // WriteHit gets ownership only.
        let row = t
            .lookup(SnoopState::MasterShared, TxnKind::WriteHit, &cfg)
            .unwrap();
        assert!(row.positive);
        assert_eq!(
            row.supply,
            Some(SupplyAction {
                with_data: false,
                requester_state: LineState::Dirty
            })
        );
        assert_eq!(row.next_state, Some(LineState::Invalid));
        // An exclusive-class supplier proves the WriteHit requester's
        // copy is stale, so those transfers carry data.
        for st in [SnoopState::Exclusive, SnoopState::Dirty, SnoopState::Tagged] {
            let row = t.lookup(st, TxnKind::WriteHit, &cfg).unwrap();
            assert_eq!(row.supply.map(|s| s.with_data), Some(true), "{st}");
            assert_eq!(row.next_state, Some(LineState::Invalid));
        }
        // Shared copies are invalidated by writes but stay for reads.
        let row = t
            .lookup(SnoopState::Shared, TxnKind::WriteMiss, &cfg)
            .unwrap();
        assert!(!row.positive);
        assert_eq!(row.next_state, Some(LineState::Invalid));
        let row = t.lookup(SnoopState::Shared, TxnKind::Read, &cfg).unwrap();
        assert_eq!(row.next_state, None);
        // Transient copies never answer positive and are left alone.
        for k in [TxnKind::Read, TxnKind::WriteMiss, TxnKind::WriteHit] {
            let row = t.lookup(SnoopState::Transient, k, &cfg).unwrap();
            assert!(!row.positive);
            assert_eq!(row.next_state, None);
        }
    }

    #[test]
    fn keep_supplier_guard_switches_read_rows() {
        let t = SupplierTable::canonical();
        let mut cfg = ProtocolConfig::paper(ProtocolKind::Uncorq);
        cfg.reads_keep_supplier = true;
        let row = t
            .lookup(SnoopState::Exclusive, TxnKind::Read, &cfg)
            .unwrap();
        assert_eq!(row.next_state, Some(LineState::MasterShared));
        assert_eq!(
            row.supply.map(|s| s.requester_state),
            Some(LineState::Shared)
        );
        let row = t.lookup(SnoopState::Tagged, TxnKind::Read, &cfg).unwrap();
        assert_eq!(row.next_state, Some(LineState::Tagged));
    }

    #[test]
    fn removed_row_is_reported_as_hole() {
        let t = SupplierTable::canonical();
        let cfg = ProtocolConfig::paper(ProtocolKind::Eager);
        // Replace the E x Read transfer row with a duplicate of another
        // pair: its own pair becomes a hole, the other's ambiguous.
        let i = t
            .rows()
            .iter()
            .position(|r| {
                r.state == SnoopState::Exclusive
                    && r.req == TxnKind::Read
                    && r.guard == SupplierGuard::TransferSupplier
            })
            .unwrap();
        let dup = t.rows()[0];
        let broken = t.with_row(i, dup);
        let a = broken.analyze(&cfg);
        assert!(a.holes.iter().any(|h| h == "E x read"), "{:?}", a.holes);
        assert!(!a.ambiguities.is_empty());
    }

    #[test]
    fn decision_table_matches_known_points() {
        let t = DecisionTable::canonical();
        let base = DecisionCtx {
            lost: false,
            has_suppliership: false,
            colliders_seen: true,
            beats_all: true,
            local_write_ok: false,
            stale_suppliership: false,
        };
        assert_eq!(
            t.decide(RespClass::NegClean, base),
            Ok(DecisionAction::MemFetch)
        );
        assert_eq!(
            t.decide(
                RespClass::NegClean,
                DecisionCtx {
                    local_write_ok: true,
                    ..base
                }
            ),
            Ok(DecisionAction::CompleteLocal)
        );
        assert_eq!(
            t.decide(
                RespClass::NegClean,
                DecisionCtx {
                    beats_all: false,
                    ..base
                }
            ),
            Ok(DecisionAction::Retry)
        );
        assert_eq!(
            t.decide(
                RespClass::NegClean,
                DecisionCtx {
                    colliders_seen: false,
                    beats_all: false,
                    ..base
                }
            ),
            Ok(DecisionAction::Defer)
        );
        assert_eq!(
            t.decide(RespClass::NegClean, DecisionCtx { lost: true, ..base }),
            Ok(DecisionAction::Retry)
        );
        assert_eq!(
            t.decide(
                RespClass::Positive,
                DecisionCtx {
                    has_suppliership: true,
                    ..base
                }
            ),
            Ok(DecisionAction::Complete)
        );
        assert_eq!(
            t.decide(
                RespClass::Positive,
                DecisionCtx {
                    has_suppliership: true,
                    stale_suppliership: true,
                    ..base
                }
            ),
            Ok(DecisionAction::Retry)
        );
        assert_eq!(
            t.decide(RespClass::Positive, base),
            Ok(DecisionAction::WaitSupplier)
        );
        assert_eq!(
            t.decide(RespClass::NegMarked, base),
            Ok(DecisionAction::Retry)
        );
    }

    #[test]
    fn ambiguous_decision_mutation_is_reported() {
        let t = DecisionTable::canonical();
        // Widening the marked-retry row to ANY context is harmless (it
        // already is ANY); instead widen the lost-retry row to overlap
        // the defer row.
        let i = t
            .rows()
            .iter()
            .position(|r| r.resp == RespClass::NegClean && r.guard.lost == Some(true))
            .unwrap();
        let mut row = t.rows()[i];
        row.guard = DecisionGuard::ANY;
        let broken = t.with_row(i, row);
        assert!(!broken.analyze().is_sound());
    }
}
