//! Snoop presence filter for the Flexible Snooping algorithms.

use ring_cache::LineAddr;
use serde::{Deserialize, Serialize};

/// A *superset* presence filter: answers "might this node cache the
/// line?" with no false negatives (if the line is cached, the filter says
/// maybe) but possible false positives.
///
/// The Flexible Snooping algorithms (SupersetCon / SupersetAgg, the
/// paper's reference \[14\])
/// consult this filter on every request passing the node: a negative
/// answer skips the snoop entirely (saving energy and, for SupersetCon,
/// latency); a positive answer triggers a snoop.
///
/// Implemented as a counting Bloom-style signature table: hashing a line
/// to `hashes` counters; a line "may be present" iff all its counters are
/// non-zero. Counting allows removal on eviction/invalidation.
///
/// # Examples
///
/// ```
/// use ring_coherence::PresenceFilter;
/// use ring_cache::LineAddr;
///
/// let mut f = PresenceFilter::new(1024, 2);
/// let a = LineAddr::new(77);
/// assert!(!f.may_contain(a));
/// f.insert(a);
/// assert!(f.may_contain(a));
/// f.remove(a);
/// assert!(!f.may_contain(a));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PresenceFilter {
    counters: Vec<u16>,
    hashes: u32,
    lookups: u64,
    positives: u64,
}

impl PresenceFilter {
    /// Creates a filter with `slots` counters and `hashes` hash
    /// functions.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is not a power of two or `hashes` is zero.
    pub fn new(slots: usize, hashes: u32) -> Self {
        assert!(
            slots.is_power_of_two(),
            "filter slots must be a power of two"
        );
        assert!(hashes > 0, "filter needs at least one hash");
        PresenceFilter {
            counters: vec![0; slots],
            hashes,
            lookups: 0,
            positives: 0,
        }
    }

    fn slot(&self, addr: LineAddr, i: u32) -> usize {
        // SplitMix64-style mixing, salted per hash function.
        let mut x = addr
            .raw()
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(i) + 1));
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        (x as usize) & (self.counters.len() - 1)
    }

    /// Registers a line as cached.
    pub fn insert(&mut self, addr: LineAddr) {
        for i in 0..self.hashes {
            let s = self.slot(addr, i);
            self.counters[s] = self.counters[s].saturating_add(1);
        }
    }

    /// Unregisters a line (eviction or invalidation). Must be paired with
    /// a prior [`PresenceFilter::insert`] for the same line, otherwise the
    /// filter may develop false negatives.
    pub fn remove(&mut self, addr: LineAddr) {
        for i in 0..self.hashes {
            let s = self.slot(addr, i);
            self.counters[s] = self.counters[s].saturating_sub(1);
        }
    }

    /// Whether the line may be cached here (superset semantics).
    pub fn may_contain(&self, addr: LineAddr) -> bool {
        (0..self.hashes).all(|i| self.counters[self.slot(addr, i)] > 0)
    }

    /// Like [`PresenceFilter::may_contain`] but counts the lookup for the
    /// filter-efficiency statistics.
    pub fn query(&mut self, addr: LineAddr) -> bool {
        self.lookups += 1;
        let hit = self.may_contain(addr);
        if hit {
            self.positives += 1;
        }
        hit
    }

    /// Total counted lookups.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Counted lookups that answered "maybe present".
    pub fn positives(&self) -> u64 {
        self.positives
    }

    /// Hashes the filter's behavioral state (the counters) into `h`,
    /// excluding the lookup statistics. Used by the `ring-model`
    /// state-space explorer.
    pub fn digest(&self, h: &mut impl std::hash::Hasher) {
        use std::hash::Hash;
        self.counters.hash(h);
        self.hashes.hash(h);
    }
}

impl PresenceFilter {
    /// Serializes the filter: counters plus lookup statistics.
    pub fn snap_save(&self, w: &mut ring_snapshot::SnapWriter) {
        w.put(&self.counters);
        w.put(&self.hashes);
        w.put(&self.lookups);
        w.put(&self.positives);
    }

    /// Rebuilds a filter from a snapshot.
    pub fn snap_load(
        r: &mut ring_snapshot::SnapReader<'_>,
    ) -> Result<Self, ring_snapshot::SnapshotError> {
        let counters: Vec<u16> = r.get()?;
        if !counters.len().is_power_of_two() {
            return Err(r.malformed("filter slot count is not a power of two"));
        }
        let hashes: u32 = r.get()?;
        if hashes == 0 {
            return Err(r.malformed("filter hash count is zero"));
        }
        Ok(PresenceFilter {
            counters,
            hashes,
            lookups: r.get()?,
            positives: r.get()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = PresenceFilter::new(256, 2);
        for i in 0..100 {
            f.insert(LineAddr::new(i));
        }
        for i in 0..100 {
            assert!(f.may_contain(LineAddr::new(i)));
        }
    }

    #[test]
    fn remove_restores_absence_when_unaliased() {
        let mut f = PresenceFilter::new(4096, 2);
        let a = LineAddr::new(1);
        f.insert(a);
        f.remove(a);
        assert!(!f.may_contain(a));
    }

    #[test]
    fn aliased_lines_keep_superset_property() {
        let mut f = PresenceFilter::new(4, 1); // heavy aliasing
        f.insert(LineAddr::new(1));
        f.insert(LineAddr::new(2));
        f.remove(LineAddr::new(2));
        // Line 1 must still test positive regardless of aliasing.
        assert!(f.may_contain(LineAddr::new(1)));
    }

    #[test]
    fn query_counts() {
        let mut f = PresenceFilter::new(256, 2);
        f.insert(LineAddr::new(5));
        assert!(f.query(LineAddr::new(5)));
        f.query(LineAddr::new(1_000_000));
        assert_eq!(f.lookups(), 2);
        assert!(f.positives() >= 1);
    }

    #[test]
    fn false_positive_rate_reasonable() {
        let mut f = PresenceFilter::new(4096, 2);
        for i in 0..256 {
            f.insert(LineAddr::new(i));
        }
        let fp = (10_000..20_000)
            .filter(|&i| f.may_contain(LineAddr::new(i)))
            .count();
        assert!(fp < 500, "false positive count {fp} too high");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_rejected() {
        let _ = PresenceFilter::new(100, 2);
    }
}
