//! Coherence protocol messages.

use ring_cache::{LineAddr, LineState};
use ring_noc::NodeId;
use serde::{Deserialize, Serialize};

use crate::txn::{Priority, TxnId, TxnKind};

/// Size of a control message (R, r, suppliership-without-data, acks) in
/// bytes, for traffic accounting.
pub const CONTROL_BYTES: u64 = 8;

/// Size of a data-carrying message (64 B line + 8 B header) in bytes.
pub const DATA_BYTES: u64 = 72;

/// A snoop request (`R`) message.
///
/// Under Eager and Flexible Snooping, `R` traverses the ring; under
/// Uncorq, read `R`s are delivered over any network path (multicast)
/// while write `R`s still use the ring (paper §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RequestMsg {
    /// Identity of the transaction.
    pub txn: TxnId,
    /// The line being requested.
    pub line: LineAddr,
    /// Read, write miss, or invalidating write hit.
    pub kind: TxnKind,
    /// Winner-selection priority, fixed at issue.
    pub priority: Priority,
}

impl RequestMsg {
    /// The requesting node (shorthand for `txn.node`).
    pub fn requester(&self) -> NodeId {
        self.txn.node
    }
}

/// A combined snoop response (`r`) message; always traverses the ring.
///
/// Carries the combined outcome of the snoops performed so far, plus the
/// serialization metadata of §3–§5: the squash mark, the Loser Hint bit
/// (Uncorq, no-supplier forced serialization), and the starving-node ID
/// (SNID) used for forward progress in Uncorq.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ResponseMsg {
    /// Identity of the transaction this response belongs to.
    pub txn: TxnId,
    /// The line of the transaction.
    pub line: LineAddr,
    /// Kind of the originating request.
    pub kind: TxnKind,
    /// Winner-selection priority of the transaction.
    pub priority: Priority,
    /// `true` for `r+` (a supplier was found), `false` for `r-`.
    pub positive: bool,
    /// Whether any visited node keeps a Shared copy (used by the
    /// requester to choose Exclusive vs MasterShared on a memory fill).
    pub sharers: bool,
    /// Number of snoop outcomes combined so far.
    pub outcomes: u32,
    /// Squash mark: the transaction lost a collision and must retry.
    pub squashed: bool,
    /// Loser Hint (Uncorq §4.4): set by the winner of a no-supplier
    /// forced-serialization collision on the loser's `r-`.
    pub loser_hint: bool,
    /// Starving-node ID (Uncorq §5.2.2): reserves the next suppliership.
    pub snid: Option<NodeId>,
}

impl ResponseMsg {
    /// The initial negative response a requester places on the ring right
    /// behind (or together with) its request.
    pub fn initial(req: &RequestMsg) -> Self {
        ResponseMsg {
            txn: req.txn,
            line: req.line,
            kind: req.kind,
            priority: req.priority,
            positive: false,
            sharers: false,
            outcomes: 0,
            squashed: false,
            loser_hint: false,
            snid: None,
        }
    }

    /// The requesting node (shorthand for `txn.node`).
    pub fn requester(&self) -> NodeId {
        self.txn.node
    }

    /// Whether this response tells its owner to retry. The two marks
    /// have different strengths. A squash is applied by a node whose
    /// *committed* win serialized before this transaction — its snoop
    /// outcome in this very response predates that win and is stale, so
    /// the combined response is unsound no matter what joins it later: a
    /// supplier downstream of the squasher may still combine it
    /// positive, but completing on it would leave the squasher's
    /// post-win copy unaccounted (its invalidation was never performed).
    /// Squash therefore dominates even a positive. The Loser Hint is
    /// only a pairwise guess between two undecided transactions and is
    /// overridden when the response later combines positive.
    pub fn must_retry(&self) -> bool {
        self.squashed || (!self.positive && self.loser_hint)
    }
}

/// A message traveling on the logical ring: either a request or a
/// combined response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RingMsg {
    /// A snoop request.
    Request(RequestMsg),
    /// A combined snoop response.
    Response(ResponseMsg),
}

impl RingMsg {
    /// The line this message concerns.
    pub fn line(&self) -> LineAddr {
        match self {
            RingMsg::Request(m) => m.line,
            RingMsg::Response(m) => m.line,
        }
    }

    /// The transaction this message belongs to.
    pub fn txn(&self) -> TxnId {
        match self {
            RingMsg::Request(m) => m.txn,
            RingMsg::Response(m) => m.txn,
        }
    }

    /// Message size in bytes for traffic accounting.
    pub fn bytes(&self) -> u64 {
        CONTROL_BYTES
    }
}

/// The suppliership message: sent by the supplier directly to the
/// requester over the shortest network path, carrying the data (unless
/// the requester already caches it) and the state the requester will
/// install on completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SupplierMsg {
    /// Transaction being serviced.
    pub txn: TxnId,
    /// Line being supplied.
    pub line: LineAddr,
    /// Whether the line's data travels with the message (false for
    /// ownership-only transfers to a `WriteHit` requester).
    pub with_data: bool,
    /// State the requester installs when the transaction completes.
    pub new_state: LineState,
}

impl SupplierMsg {
    /// Message size in bytes for traffic accounting.
    pub fn bytes(&self) -> u64 {
        if self.with_data {
            DATA_BYTES
        } else {
            CONTROL_BYTES
        }
    }
}

impl ring_snapshot::Snap for RequestMsg {
    fn save(&self, w: &mut ring_snapshot::SnapWriter) {
        w.put(&self.txn);
        w.put(&self.line);
        w.put(&self.kind);
        w.put(&self.priority);
    }
    fn load(r: &mut ring_snapshot::SnapReader<'_>) -> Result<Self, ring_snapshot::SnapshotError> {
        Ok(RequestMsg {
            txn: r.get()?,
            line: r.get()?,
            kind: r.get()?,
            priority: r.get()?,
        })
    }
}

impl ring_snapshot::Snap for ResponseMsg {
    fn save(&self, w: &mut ring_snapshot::SnapWriter) {
        w.put(&self.txn);
        w.put(&self.line);
        w.put(&self.kind);
        w.put(&self.priority);
        w.put(&self.positive);
        w.put(&self.sharers);
        w.put(&self.outcomes);
        w.put(&self.squashed);
        w.put(&self.loser_hint);
        w.put(&self.snid);
    }
    fn load(r: &mut ring_snapshot::SnapReader<'_>) -> Result<Self, ring_snapshot::SnapshotError> {
        Ok(ResponseMsg {
            txn: r.get()?,
            line: r.get()?,
            kind: r.get()?,
            priority: r.get()?,
            positive: r.get()?,
            sharers: r.get()?,
            outcomes: r.get()?,
            squashed: r.get()?,
            loser_hint: r.get()?,
            snid: r.get()?,
        })
    }
}

impl ring_snapshot::Snap for SupplierMsg {
    fn save(&self, w: &mut ring_snapshot::SnapWriter) {
        w.put(&self.txn);
        w.put(&self.line);
        w.put(&self.with_data);
        w.put(&self.new_state);
    }
    fn load(r: &mut ring_snapshot::SnapReader<'_>) -> Result<Self, ring_snapshot::SnapshotError> {
        Ok(SupplierMsg {
            txn: r.get()?,
            line: r.get()?,
            with_data: r.get()?,
            new_state: r.get()?,
        })
    }
}

impl ring_snapshot::Snap for RingMsg {
    fn save(&self, w: &mut ring_snapshot::SnapWriter) {
        match self {
            RingMsg::Request(m) => {
                w.put(&0u8);
                w.put(m);
            }
            RingMsg::Response(m) => {
                w.put(&1u8);
                w.put(m);
            }
        }
    }
    fn load(r: &mut ring_snapshot::SnapReader<'_>) -> Result<Self, ring_snapshot::SnapshotError> {
        Ok(match r.get::<u8>()? {
            0 => RingMsg::Request(r.get()?),
            1 => RingMsg::Response(r.get()?),
            other => return Err(r.malformed(format!("RingMsg tag {other}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req() -> RequestMsg {
        RequestMsg {
            txn: TxnId {
                node: NodeId(3),
                serial: 1,
            },
            line: LineAddr::new(42),
            kind: TxnKind::Read,
            priority: Priority::new(TxnKind::Read, 5, NodeId(3)),
        }
    }

    #[test]
    fn initial_response_is_clean_negative() {
        let r = ResponseMsg::initial(&req());
        assert!(!r.positive);
        assert!(!r.squashed);
        assert!(!r.loser_hint);
        assert!(!r.sharers);
        assert_eq!(r.outcomes, 0);
        assert_eq!(r.snid, None);
        assert!(!r.must_retry());
        assert_eq!(r.requester(), NodeId(3));
    }

    #[test]
    fn must_retry_on_either_mark() {
        let mut r = ResponseMsg::initial(&req());
        r.squashed = true;
        assert!(r.must_retry());
        r.squashed = false;
        r.loser_hint = true;
        assert!(r.must_retry());
    }

    #[test]
    fn positive_response_overrides_loser_hint_but_not_squash() {
        // A Loser Hint set before the response reached the supplier is
        // overridden when the supplier combines it positive...
        let mut r = ResponseMsg::initial(&req());
        r.loser_hint = true;
        r.positive = true;
        assert!(!r.must_retry());
        // ...but a squash is not: it records a committed winner's stale
        // snoop outcome in this response, which no later supply can fix.
        r.squashed = true;
        assert!(r.must_retry());
    }

    #[test]
    fn ring_msg_accessors() {
        let m = RingMsg::Request(req());
        assert_eq!(m.line(), LineAddr::new(42));
        assert_eq!(m.txn().node, NodeId(3));
        assert_eq!(m.bytes(), CONTROL_BYTES);
    }

    #[test]
    fn supplier_msg_sizes() {
        let base = SupplierMsg {
            txn: req().txn,
            line: LineAddr::new(42),
            with_data: true,
            new_state: LineState::MasterShared,
        };
        assert_eq!(base.bytes(), DATA_BYTES);
        let own_only = SupplierMsg {
            with_data: false,
            ..base
        };
        assert_eq!(own_only.bytes(), CONTROL_BYTES);
    }
}
