//! Protocol selection and timing knobs.

use ring_sim::Cycle;
use serde::{Deserialize, Serialize};

use crate::ltt::LttConfig;

/// Which embedded-ring snoop algorithm a machine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProtocolKind {
    /// Eager Forwarding (paper §2.1): `R` uses the ring, forwarded at each
    /// node before the local snoop starts.
    Eager,
    /// Flexible Snooping, *Superset Conservative*: a per-node presence
    /// filter; filter-positive nodes stall `R` behind the snoop,
    /// filter-negative nodes forward without snooping.
    SupersetCon,
    /// Flexible Snooping, *Superset Aggressive*: filter-positive nodes
    /// snoop in parallel with forwarding; filter-negative nodes forward
    /// without snooping. Forwarding always pays the filter lookup.
    SupersetAgg,
    /// Uncorq (paper §4): read `R`s are multicast over any network path;
    /// write `R`s still use the ring (§6); `r` always uses the ring; the
    /// LTT enforces the Ordering invariant.
    Uncorq,
}

impl ProtocolKind {
    /// All ring-based protocols, in the order Figure 9 plots them.
    pub const ALL: [ProtocolKind; 4] = [
        ProtocolKind::Eager,
        ProtocolKind::SupersetCon,
        ProtocolKind::SupersetAgg,
        ProtocolKind::Uncorq,
    ];

    /// Whether this protocol uses a snoop presence filter.
    pub fn uses_filter(self) -> bool {
        matches!(self, ProtocolKind::SupersetCon | ProtocolKind::SupersetAgg)
    }

    /// Whether read requests are delivered off-ring (multicast).
    pub fn multicast_reads(self) -> bool {
        matches!(self, ProtocolKind::Uncorq)
    }
}

impl std::fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ProtocolKind::Eager => "Eager",
            ProtocolKind::SupersetCon => "SupersetCon",
            ProtocolKind::SupersetAgg => "SupersetAgg",
            ProtocolKind::Uncorq => "Uncorq",
        };
        f.write_str(s)
    }
}

/// One of the five evaluated protocol variants (the paper's Figure 9
/// lines): the four [`ProtocolKind`]s in their paper configuration plus
/// Uncorq with the §5.4 prefetching optimization.
///
/// This is the single source of truth for "run every protocol" sweeps
/// (`chaoscheck`, `chaos_sweep`, `modelcheck`); binaries should iterate
/// [`ProtocolVariant::ALL`] rather than re-deriving the list by hand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProtocolVariant {
    /// Eager Forwarding, paper configuration.
    Eager,
    /// Flexible Snooping, Superset Conservative, paper configuration.
    SupersetCon,
    /// Flexible Snooping, Superset Aggressive, paper configuration.
    SupersetAgg,
    /// Uncorq, paper configuration.
    Uncorq,
    /// Uncorq with §5.4 prefetching ("Uncorq+Pref").
    UncorqPref,
}

impl ProtocolVariant {
    /// The five variants, in the order Figure 9 plots them.
    pub const ALL: [ProtocolVariant; 5] = [
        ProtocolVariant::Eager,
        ProtocolVariant::SupersetCon,
        ProtocolVariant::SupersetAgg,
        ProtocolVariant::Uncorq,
        ProtocolVariant::UncorqPref,
    ];

    /// The underlying protocol kind.
    pub fn kind(self) -> ProtocolKind {
        match self {
            ProtocolVariant::Eager => ProtocolKind::Eager,
            ProtocolVariant::SupersetCon => ProtocolKind::SupersetCon,
            ProtocolVariant::SupersetAgg => ProtocolKind::SupersetAgg,
            ProtocolVariant::Uncorq | ProtocolVariant::UncorqPref => ProtocolKind::Uncorq,
        }
    }

    /// The paper configuration for this variant.
    pub fn config(self) -> ProtocolConfig {
        match self {
            ProtocolVariant::UncorqPref => ProtocolConfig::uncorq_pref(),
            other => ProtocolConfig::paper(other.kind()),
        }
    }

    /// The CLI-facing lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolVariant::Eager => "eager",
            ProtocolVariant::SupersetCon => "supersetcon",
            ProtocolVariant::SupersetAgg => "supersetagg",
            ProtocolVariant::Uncorq => "uncorq",
            ProtocolVariant::UncorqPref => "uncorq+pref",
        }
    }

    /// Parses a CLI name (case-insensitive; accepts `uncorq+pref` and
    /// `uncorq-pref`).
    pub fn by_name(name: &str) -> Option<Self> {
        let n = name.to_lowercase();
        ProtocolVariant::ALL
            .into_iter()
            .find(|v| v.name() == n || (n == "uncorq-pref" && *v == ProtocolVariant::UncorqPref))
    }
}

impl std::fmt::Display for ProtocolVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-node protocol agent configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProtocolConfig {
    /// The algorithm.
    pub kind: ProtocolKind,
    /// Enable the §5.4 prefetching optimization (meaningful with
    /// [`ProtocolKind::Uncorq`]: "Uncorq+Pref"; reads only).
    pub prefetch: bool,
    /// L2 snoop (tag access) latency in cycles.
    pub snoop_latency: Cycle,
    /// Snoop-filter lookup latency (SupersetCon/Agg only).
    pub filter_latency: Cycle,
    /// LTT geometry.
    pub ltt: LttConfig,
    /// Maximum outstanding transactions per node (MSHR entries).
    pub max_outstanding: usize,
    /// Base retry backoff after a squashed transaction, in cycles.
    pub retry_backoff: Cycle,
    /// Retries after which a node declares itself starving and engages
    /// the forward-progress mechanism (§5.2).
    pub starvation_threshold: u32,
    /// How long an SNID suppliership reservation is held (§5.2.2).
    pub reservation_cycles: Cycle,
    /// Node Prefetch Predictor capacity in line addresses (8K in the
    /// paper); 0 disables the NPP even when `prefetch` is on.
    pub npp_entries: usize,
    /// Ablation: replace the §3.3.2 winner-selection hierarchy
    /// (type > random > node id) with bare node-id priority — "unfair,
    /// but it never ties".
    pub winner_node_id_only: bool,
    /// The §5.5 extension (described but not evaluated in the paper):
    /// cache-to-cache *read* misses do not transfer supplier status. The
    /// old supplier keeps the designation (E→MS, D→T) and the requester
    /// installs a plain Shared copy, so colliding cache-to-cache reads
    /// are always serviced without squashes.
    pub reads_keep_supplier: bool,
}

impl ProtocolConfig {
    /// The paper's configuration for a given protocol kind.
    pub fn paper(kind: ProtocolKind) -> Self {
        ProtocolConfig {
            kind,
            prefetch: false,
            snoop_latency: 7,
            filter_latency: 3,
            ltt: LttConfig::default(),
            max_outstanding: 16,
            retry_backoff: 32,
            starvation_threshold: 4,
            reservation_cycles: 1024,
            npp_entries: 8 * 1024,
            winner_node_id_only: false,
            reads_keep_supplier: false,
        }
    }

    /// Uncorq+Pref: Uncorq with the §5.4 prefetching optimization.
    pub fn uncorq_pref() -> Self {
        ProtocolConfig {
            prefetch: true,
            ..Self::paper(ProtocolKind::Uncorq)
        }
    }

    /// Rejects degenerate configurations that would silently break the
    /// forward-progress machinery (§5.2) or the agent's bookkeeping.
    ///
    /// The agent used to clamp some of these at use sites (e.g.
    /// `retry_backoff.max(1)`), which hid misconfiguration; callers now
    /// validate up front and get a typed error instead.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.max_outstanding == 0 {
            return Err(ConfigError::ZeroMaxOutstanding);
        }
        if self.retry_backoff == 0 {
            return Err(ConfigError::ZeroRetryBackoff);
        }
        if self.starvation_threshold == 0 {
            return Err(ConfigError::ZeroStarvationThreshold);
        }
        if self.reservation_cycles == 0 {
            return Err(ConfigError::ZeroReservationCycles);
        }
        if self.snoop_latency == 0 {
            return Err(ConfigError::ZeroSnoopLatency);
        }
        if self.kind.uses_filter() && self.filter_latency == 0 {
            return Err(ConfigError::ZeroFilterLatency);
        }
        if self.ltt.entries == 0 || self.ltt.ways == 0 {
            return Err(ConfigError::EmptyLtt {
                entries: self.ltt.entries,
                ways: self.ltt.ways,
            });
        }
        if self.ltt.ways > self.ltt.entries || !self.ltt.entries.is_multiple_of(self.ltt.ways) {
            return Err(ConfigError::LttGeometry {
                entries: self.ltt.entries,
                ways: self.ltt.ways,
            });
        }
        Ok(())
    }
}

/// A degenerate [`ProtocolConfig`] value, detected by
/// [`ProtocolConfig::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `max_outstanding == 0`: the node could never issue a request.
    ZeroMaxOutstanding,
    /// `retry_backoff == 0`: squashed transactions would retry with no
    /// jitter window, so colliding requesters can livelock in lockstep.
    ZeroRetryBackoff,
    /// `starvation_threshold == 0`: every first attempt would claim the
    /// starvation escape hatch, defeating the §5.2 fairness mechanism.
    ZeroStarvationThreshold,
    /// `reservation_cycles == 0`: a starving node's SNID reservation
    /// would expire immediately, so starvation could never resolve.
    ZeroReservationCycles,
    /// `snoop_latency == 0`: an L2 tag access takes at least a cycle.
    ZeroSnoopLatency,
    /// `filter_latency == 0` on a filter-based protocol: the filter
    /// lookup takes at least a cycle.
    ZeroFilterLatency,
    /// LTT with zero entries or zero ways can hold no transactions.
    EmptyLtt {
        /// Configured total entry count.
        entries: usize,
        /// Configured associativity.
        ways: usize,
    },
    /// LTT entry count must be a positive multiple of the way count.
    LttGeometry {
        /// Configured total entry count.
        entries: usize,
        /// Configured associativity.
        ways: usize,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroMaxOutstanding => {
                write!(f, "max_outstanding must be >= 1 (node could never issue)")
            }
            ConfigError::ZeroRetryBackoff => write!(
                f,
                "retry_backoff must be >= 1 (zero jitter window can livelock colliding retries)"
            ),
            ConfigError::ZeroStarvationThreshold => write!(
                f,
                "starvation_threshold must be >= 1 (zero would engage the escape hatch on \
                 every first attempt)"
            ),
            ConfigError::ZeroReservationCycles => write!(
                f,
                "reservation_cycles must be >= 1 (a reservation expiring immediately cannot \
                 resolve starvation)"
            ),
            ConfigError::ZeroSnoopLatency => {
                write!(f, "snoop_latency must be >= 1 cycle")
            }
            ConfigError::ZeroFilterLatency => {
                write!(
                    f,
                    "filter_latency must be >= 1 cycle on filter-based protocols"
                )
            }
            ConfigError::EmptyLtt { entries, ways } => write!(
                f,
                "LTT geometry {entries} entries x {ways} ways holds no transactions"
            ),
            ConfigError::LttGeometry { entries, ways } => write!(
                f,
                "LTT entries ({entries}) must be a positive multiple of ways ({ways})"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_classification() {
        assert!(!ProtocolKind::Eager.uses_filter());
        assert!(ProtocolKind::SupersetCon.uses_filter());
        assert!(ProtocolKind::SupersetAgg.uses_filter());
        assert!(!ProtocolKind::Uncorq.uses_filter());
        assert!(ProtocolKind::Uncorq.multicast_reads());
        assert!(!ProtocolKind::Eager.multicast_reads());
    }

    #[test]
    fn paper_config_defaults() {
        let c = ProtocolConfig::paper(ProtocolKind::Eager);
        assert_eq!(c.snoop_latency, 7);
        assert_eq!(c.ltt.entries, 512);
        assert_eq!(c.ltt.ways, 64);
        assert!(!c.prefetch);
    }

    #[test]
    fn uncorq_pref_enables_prefetch() {
        let c = ProtocolConfig::uncorq_pref();
        assert_eq!(c.kind, ProtocolKind::Uncorq);
        assert!(c.prefetch);
    }

    #[test]
    fn display_names() {
        assert_eq!(ProtocolKind::Uncorq.to_string(), "Uncorq");
        assert_eq!(ProtocolKind::SupersetAgg.to_string(), "SupersetAgg");
    }

    #[test]
    fn variant_list_covers_figure_9() {
        assert_eq!(ProtocolVariant::ALL.len(), 5);
        for v in ProtocolVariant::ALL {
            assert_eq!(ProtocolVariant::by_name(v.name()), Some(v));
            v.config().validate().unwrap();
        }
        assert_eq!(
            ProtocolVariant::by_name("UNCORQ-PREF"),
            Some(ProtocolVariant::UncorqPref)
        );
        assert!(ProtocolVariant::UncorqPref.config().prefetch);
        assert_eq!(ProtocolVariant::UncorqPref.kind(), ProtocolKind::Uncorq);
        assert!(ProtocolVariant::by_name("bogus").is_none());
    }

    #[test]
    fn paper_configs_validate() {
        for kind in ProtocolKind::ALL {
            ProtocolConfig::paper(kind).validate().unwrap();
        }
        ProtocolConfig::uncorq_pref().validate().unwrap();
    }

    #[test]
    fn degenerate_values_are_rejected() {
        let base = ProtocolConfig::paper(ProtocolKind::Uncorq);
        let cases = [
            (
                ProtocolConfig {
                    retry_backoff: 0,
                    ..base
                },
                ConfigError::ZeroRetryBackoff,
            ),
            (
                ProtocolConfig {
                    starvation_threshold: 0,
                    ..base
                },
                ConfigError::ZeroStarvationThreshold,
            ),
            (
                ProtocolConfig {
                    max_outstanding: 0,
                    ..base
                },
                ConfigError::ZeroMaxOutstanding,
            ),
            (
                ProtocolConfig {
                    reservation_cycles: 0,
                    ..base
                },
                ConfigError::ZeroReservationCycles,
            ),
            (
                ProtocolConfig {
                    snoop_latency: 0,
                    ..base
                },
                ConfigError::ZeroSnoopLatency,
            ),
        ];
        for (cfg, want) in cases {
            assert_eq!(cfg.validate(), Err(want));
        }
    }

    #[test]
    fn filter_latency_only_checked_for_filter_protocols() {
        let mut c = ProtocolConfig::paper(ProtocolKind::Uncorq);
        c.filter_latency = 0;
        c.validate().unwrap();
        let mut c = ProtocolConfig::paper(ProtocolKind::SupersetCon);
        c.filter_latency = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroFilterLatency));
    }

    #[test]
    fn ltt_geometry_is_checked() {
        let mut c = ProtocolConfig::paper(ProtocolKind::Eager);
        c.ltt.entries = 0;
        assert!(matches!(c.validate(), Err(ConfigError::EmptyLtt { .. })));
        let mut c = ProtocolConfig::paper(ProtocolKind::Eager);
        c.ltt.entries = 100;
        c.ltt.ways = 64;
        assert!(matches!(c.validate(), Err(ConfigError::LttGeometry { .. })));
    }

    #[test]
    fn config_error_display_is_actionable() {
        assert!(ConfigError::ZeroRetryBackoff
            .to_string()
            .contains("retry_backoff"));
        assert!(ConfigError::ZeroStarvationThreshold
            .to_string()
            .contains("starvation_threshold"));
    }
}
