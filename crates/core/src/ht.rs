//! A cache-coherent HyperTransport-style broadcast baseline (paper §7.4).
//!
//! In HT, every address has a *serialization point* (home node) in the
//! network. A miss sends a request to the home; the home broadcasts probes
//! to all other nodes; every probed node responds *directly to the
//! requester* (responses are not combined); the supplier ships the data.
//! The home also fetches the line from memory speculatively, which makes
//! memory-to-cache transfers faster than in ring protocols — at the price
//! of one extra "node hop" on cache-to-cache transfers and much more
//! response traffic (Figure 11).
//!
//! Collisions are resolved by construction: the home activates one
//! transaction per line at a time and queues the rest, releasing the next
//! when the requester's completion (`Done`) message arrives.

use std::collections::{BTreeMap, VecDeque};

use ring_cache::{CacheArray, CacheConfig, LineAddr, LineState, Mshr};
use ring_noc::NodeId;
use ring_sim::Cycle;
use ring_trace::{EventKind as TraceKind, OpClass, TraceEvent};
use serde::{Deserialize, Serialize};

use crate::txn::TxnId;

fn ht_op(write: bool) -> OpClass {
    if write {
        OpClass::WriteMiss
    } else {
        OpClass::Read
    }
}

macro_rules! tev {
    ($self:ident, $now:expr, $txn:expr, $line:expr, $kind:expr) => {
        if $self.trace_on {
            let txn: TxnId = $txn;
            $self.trace_buf.push(TraceEvent {
                cycle: $now,
                node: $self.node.0 as u32,
                txn_node: txn.node.0 as u32,
                txn_serial: txn.serial,
                line: $line.raw(),
                kind: $kind,
            });
        }
    };
}

/// A request from a missing node to the line's home.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HtReq {
    /// Transaction identity (requester + serial).
    pub txn: TxnId,
    /// Line requested.
    pub line: LineAddr,
    /// Whether the transaction is a write (needs exclusive ownership).
    pub write: bool,
}

/// A probe broadcast by the home to every node except the requester.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HtProbe {
    /// The transaction being serviced.
    pub req: HtReq,
}

/// A probed node's response, sent directly to the requester.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HtResp {
    /// The transaction.
    pub txn: TxnId,
    /// Line concerned.
    pub line: LineAddr,
    /// Whether this node supplied the data (a data message follows).
    pub supplied: bool,
    /// Whether this node keeps a Shared copy.
    pub sharer: bool,
}

/// A data message to the requester, either from the supplier cache or
/// from the home's speculative memory fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HtData {
    /// The transaction.
    pub txn: TxnId,
    /// Line carried.
    pub line: LineAddr,
    /// `true` when the data came from memory via the home.
    pub from_memory: bool,
    /// State the requester installs (supplier-sourced data only; memory
    /// fills decide from sharer responses).
    pub new_state: LineState,
}

/// The requester's completion notification releasing the home's
/// serialization queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HtDone {
    /// The completed transaction.
    pub txn: TxnId,
    /// Its line.
    pub line: LineAddr,
}

/// Inputs delivered to an [`HtAgent`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HtInput {
    /// The local core needs a transaction.
    CoreRequest {
        /// Line to transact on.
        line: LineAddr,
        /// Whether it is a store.
        write: bool,
    },
    /// A request arrived at this node in its role as home.
    Request(HtReq),
    /// A probe arrived.
    Probe(HtProbe),
    /// A probe's snoop completed locally.
    ProbeSnoopDone(HtProbe),
    /// A response arrived at this node in its role as requester.
    Response(HtResp),
    /// A data message arrived at the requester.
    Data(HtData),
    /// The home's speculative memory fetch completed.
    MemData {
        /// Line fetched.
        line: LineAddr,
    },
    /// A completion notification arrived at the home.
    Done(HtDone),
}

/// Effects an [`HtAgent`] asks the machine to carry out.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HtEffect {
    /// Send a request to the line's home node.
    SendRequest {
        /// Home node.
        home: NodeId,
        /// The request.
        req: HtReq,
    },
    /// Broadcast a probe to every node except the requester.
    Broadcast(HtProbe),
    /// Schedule `ProbeSnoopDone` after `delay` cycles.
    StartSnoop {
        /// The probe to finish.
        probe: HtProbe,
        /// Snoop latency.
        delay: Cycle,
    },
    /// Send a response to the requester.
    SendResponse {
        /// Requester node.
        to: NodeId,
        /// The response.
        resp: HtResp,
    },
    /// Send a data message to the requester.
    SendData {
        /// Requester node.
        to: NodeId,
        /// The data.
        data: HtData,
    },
    /// Fetch the line from memory (home's speculative fetch).
    MemFetch {
        /// Line to fetch.
        line: LineAddr,
    },
    /// Notify the home that the transaction completed.
    SendDone {
        /// Home node.
        home: NodeId,
        /// The notification.
        done: HtDone,
    },
    /// Data became usable at the requester.
    Bound {
        /// Line bound.
        line: LineAddr,
        /// Store?
        write: bool,
        /// Cycles from issue to binding.
        latency: Cycle,
        /// Supplied by a cache?
        c2c: bool,
    },
    /// The transaction completed (all responses collected).
    Complete {
        /// Line completed.
        line: LineAddr,
        /// Store?
        write: bool,
        /// Supplied by a cache?
        c2c: bool,
    },
    /// The node's L2 lost this line; the machine must invalidate the
    /// core's L1 copy to preserve inclusion.
    L1Invalidate {
        /// Line to drop from the L1.
        line: LineAddr,
    },
}

/// HT statistics counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HtStats {
    /// Transactions issued.
    pub issued: u64,
    /// Transactions completed.
    pub completed: u64,
    /// Cache-to-cache completions.
    pub completed_c2c: u64,
    /// Probes snooped.
    pub snoops: u64,
    /// Requests that waited in a home serialization queue.
    pub serialized: u64,
    /// Speculative memory fetches issued by the home role.
    pub mem_fetches: u64,
}

/// One node of the HT machine: requester, snooper and home in one.
#[derive(Debug, Clone)]
pub struct HtAgent {
    node: NodeId,
    nodes: usize,
    snoop_latency: Cycle,
    l2: CacheArray,
    outstanding: Mshr<HtTx>,
    /// Core requests deferred on a full MSHR or a same-line transaction.
    pending: Vec<(LineAddr, bool)>,
    /// Home role: per-line serialization state.
    home_lines: BTreeMap<LineAddr, HomeLine>,
    serial: u64,
    stats: HtStats,
    trace_on: bool,
    trace_buf: Vec<TraceEvent>,
}

#[derive(Debug, Clone)]
struct HtTx {
    txn: TxnId,
    write: bool,
    issued_at: Cycle,
    responses: u32,
    supplied: bool,
    sharers: bool,
    data_at: Option<Cycle>,
    data_c2c: bool,
    mem_data: Option<HtData>,
    bound_emitted: bool,
}

#[derive(Debug, Clone, Default)]
struct HomeLine {
    active: Option<HtReq>,
    /// Memory data fetched for the active transaction, pending forward.
    mem_ready: bool,
    waiting: VecDeque<HtReq>,
}

impl HtAgent {
    /// Creates the HT agent for `node` in a machine of `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes < 2`.
    pub fn new(node: NodeId, nodes: usize, snoop_latency: Cycle, l2_cfg: CacheConfig) -> Self {
        assert!(nodes >= 2, "HT machine needs at least two nodes");
        HtAgent {
            node,
            nodes,
            snoop_latency,
            l2: CacheArray::new(l2_cfg),
            outstanding: Mshr::new(32),
            pending: Vec::new(),
            home_lines: BTreeMap::new(),
            serial: 0,
            stats: HtStats::default(),
            trace_on: false,
            trace_buf: Vec::new(),
        }
    }

    /// Switches structured event tracing on or off.
    pub fn set_tracing(&mut self, on: bool) {
        self.trace_on = on;
    }

    /// Takes the events accumulated since the last drain.
    pub fn drain_trace(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.trace_buf)
    }

    /// The home (serialization point) of a line: address-interleaved
    /// across all nodes.
    pub fn home_of(line: LineAddr, nodes: usize) -> NodeId {
        NodeId((line.raw() as usize) % nodes)
    }

    /// This agent's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Read access to the node's L2.
    pub fn l2(&self) -> &CacheArray {
        &self.l2
    }

    /// The agent's counters.
    pub fn stats(&self) -> &HtStats {
        &self.stats
    }

    /// Whether a transaction for `line` is outstanding here.
    pub fn has_outstanding(&self, line: LineAddr) -> bool {
        self.outstanding.contains(line)
    }

    /// Whether `line` has an outstanding or deferred transaction here.
    pub fn is_line_engaged(&self, line: LineAddr) -> bool {
        self.outstanding.contains(line) || self.pending.iter().any(|&(l, _)| l == line)
    }

    /// Classifies a store: `None` if it can proceed silently.
    pub fn classify_store(&self, line: LineAddr) -> Option<bool> {
        if self.l2.state(line).can_write_silently() {
            None
        } else {
            Some(true)
        }
    }

    /// Directly installs a line (warm-up).
    pub fn install_line(&mut self, line: LineAddr, state: LineState) {
        self.l2.insert(line, state);
    }

    /// Handles one input at cycle `now`.
    pub fn handle(&mut self, now: Cycle, input: HtInput) -> Vec<HtEffect> {
        let mut fx = Vec::new();
        match input {
            HtInput::CoreRequest { line, write } => self.core_request(now, line, write, &mut fx),
            HtInput::Request(req) => self.home_request(now, req, &mut fx),
            HtInput::Probe(p) => fx.push(HtEffect::StartSnoop {
                probe: p,
                delay: self.snoop_latency,
            }),
            HtInput::ProbeSnoopDone(p) => self.probe_snoop(now, p, &mut fx),
            HtInput::Response(r) => self.response(now, r, &mut fx),
            HtInput::Data(d) => self.data(now, d, &mut fx),
            HtInput::MemData { line } => self.home_mem_data(line, &mut fx),
            HtInput::Done(d) => self.home_done(now, d, &mut fx),
        }
        fx
    }

    fn core_request(&mut self, now: Cycle, line: LineAddr, write: bool, fx: &mut Vec<HtEffect>) {
        if self.outstanding.contains(line) || self.outstanding.is_full() {
            if !self.pending.iter().any(|&(l, _)| l == line) {
                self.pending.push((line, write));
            }
            return;
        }
        self.serial += 1;
        let txn = TxnId {
            node: self.node,
            serial: self.serial,
        };
        let alloc = self.outstanding.allocate(
            line,
            HtTx {
                txn,
                write,
                issued_at: now,
                responses: 0,
                supplied: false,
                sharers: false,
                data_at: None,
                data_c2c: false,
                mem_data: None,
                bound_emitted: false,
            },
        );
        if alloc.is_err() {
            // The caller vetted capacity and uniqueness, so a failure here
            // means a duplicated input re-entered issue; drop the request
            // rather than crash.
            return;
        }
        self.stats.issued += 1;
        tev!(
            self,
            now,
            txn,
            line,
            TraceKind::RequestIssue {
                op: ht_op(write),
                retry: false,
            }
        );
        fx.push(HtEffect::SendRequest {
            home: Self::home_of(line, self.nodes),
            req: HtReq { txn, line, write },
        });
    }

    fn home_request(&mut self, now: Cycle, req: HtReq, fx: &mut Vec<HtEffect>) {
        debug_assert_eq!(Self::home_of(req.line, self.nodes), self.node);
        let entry = self.home_lines.entry(req.line).or_default();
        if entry.active.is_some() {
            self.stats.serialized += 1;
            entry.waiting.push_back(req);
        } else {
            entry.active = Some(req);
            entry.mem_ready = false;
            fx.push(HtEffect::Broadcast(HtProbe { req }));
            fx.push(HtEffect::MemFetch { line: req.line });
            self.stats.mem_fetches += 1;
            tev!(
                self,
                now,
                req.txn,
                req.line,
                TraceKind::MemFetch { prefetch: false }
            );
        }
    }

    fn probe_snoop(&mut self, now: Cycle, p: HtProbe, fx: &mut Vec<HtEffect>) {
        self.stats.snoops += 1;
        let line = p.req.line;
        let requester = p.req.txn.node;
        let state = self.l2.state(line);
        // A node with its own (queued) transaction outstanding still
        // answers from its current stable state; the home's serialization
        // guarantees the states are not in transition here.
        let supplies = state.is_supplier();
        tev!(
            self,
            now,
            p.req.txn,
            line,
            TraceKind::SnoopPerform { positive: supplies }
        );
        if supplies {
            tev!(
                self,
                now,
                p.req.txn,
                line,
                TraceKind::Suppliership {
                    to: requester.0 as u32,
                    with_data: true,
                }
            );
        }
        let sharer;
        if supplies {
            let new_state = if p.req.write {
                LineState::Dirty
            } else {
                state.read_requester_state()
            };
            if p.req.write {
                self.l2.invalidate(line);
                fx.push(HtEffect::L1Invalidate { line });
                sharer = false;
            } else {
                self.l2.set_state(line, state.read_supplier_demotion());
                sharer = true;
            }
            fx.push(HtEffect::SendData {
                to: requester,
                data: HtData {
                    txn: p.req.txn,
                    line,
                    from_memory: false,
                    new_state,
                },
            });
        } else if state.is_valid() {
            if p.req.write {
                self.l2.invalidate(line);
                fx.push(HtEffect::L1Invalidate { line });
                sharer = false;
            } else {
                sharer = true;
            }
        } else {
            sharer = false;
        }
        fx.push(HtEffect::SendResponse {
            to: requester,
            resp: HtResp {
                txn: p.req.txn,
                line,
                supplied: supplies,
                sharer,
            },
        });
    }

    fn response(&mut self, now: Cycle, r: HtResp, fx: &mut Vec<HtEffect>) {
        let Some(tx) = self.outstanding.get_mut(r.line) else {
            return;
        };
        if tx.txn != r.txn {
            return; // stale
        }
        tx.responses += 1;
        tx.supplied |= r.supplied;
        tx.sharers |= r.sharer;
        self.try_complete(now, r.line, fx);
    }

    fn data(&mut self, now: Cycle, d: HtData, fx: &mut Vec<HtEffect>) {
        let Some(tx) = self.outstanding.get_mut(d.line) else {
            return;
        };
        if tx.txn != d.txn {
            return;
        }
        if d.from_memory {
            tx.mem_data = Some(d);
        } else {
            tx.data_at = Some(now);
            tx.data_c2c = true;
            let (line, write, latency, txn) = (d.line, tx.write, now - tx.issued_at, tx.txn);
            let emitted = std::mem::replace(&mut tx.bound_emitted, true);
            // Install the supplied state immediately; completion (for
            // write ordering) still waits for all responses.
            if let Some(ev) = self.l2.insert(d.line, d.new_state) {
                fx.push(HtEffect::L1Invalidate { line: ev.addr });
            }
            if !emitted {
                tev!(
                    self,
                    now,
                    txn,
                    line,
                    TraceKind::Bound { latency, c2c: true }
                );
                fx.push(HtEffect::Bound {
                    line,
                    write,
                    latency,
                    c2c: true,
                });
            }
        }
        self.try_complete(now, d.line, fx);
    }

    fn try_complete(&mut self, now: Cycle, line: LineAddr, fx: &mut Vec<HtEffect>) {
        let expected = (self.nodes - 1) as u32;
        let Some(tx) = self.outstanding.get_mut(line) else {
            return;
        };
        if tx.responses < expected {
            return;
        }
        // All responses in. Cache-supplied data?
        if tx.supplied && tx.data_at.is_none() {
            return; // data still in flight
        }
        if !tx.supplied {
            // Memory fill: wait for the home's speculative data.
            let Some(md) = tx.mem_data else {
                return;
            };
            let state = if tx.write {
                LineState::Dirty
            } else if tx.sharers {
                LineState::MasterShared
            } else {
                LineState::Exclusive
            };
            let (write, latency, txn) = (tx.write, now - tx.issued_at, tx.txn);
            let emitted = std::mem::replace(&mut tx.bound_emitted, true);
            if let Some(ev) = self.l2.insert(md.line, state) {
                fx.push(HtEffect::L1Invalidate { line: ev.addr });
            }
            if !emitted {
                tev!(
                    self,
                    now,
                    txn,
                    line,
                    TraceKind::Bound {
                        latency,
                        c2c: false,
                    }
                );
                fx.push(HtEffect::Bound {
                    line,
                    write,
                    latency,
                    c2c: false,
                });
            }
        }
        // The entry was just inspected via get_mut, so release can only
        // fail if the table was corrupted mid-call; bail out rather than
        // crash.
        let Some(tx) = self.outstanding.release(line) else {
            return;
        };
        self.stats.completed += 1;
        if tx.data_c2c {
            self.stats.completed_c2c += 1;
        }
        tev!(
            self,
            now,
            tx.txn,
            line,
            TraceKind::Complete {
                op: ht_op(tx.write),
                c2c: tx.data_c2c,
                latency: now - tx.issued_at,
            }
        );
        fx.push(HtEffect::Complete {
            line,
            write: tx.write,
            c2c: tx.data_c2c,
        });
        fx.push(HtEffect::SendDone {
            home: Self::home_of(line, self.nodes),
            done: HtDone { txn: tx.txn, line },
        });
        // Re-issue any deferred core requests that can now proceed.
        let deferred = std::mem::take(&mut self.pending);
        for (l, w) in deferred {
            self.core_request(now, l, w, fx);
        }
    }

    fn home_mem_data(&mut self, line: LineAddr, fx: &mut Vec<HtEffect>) {
        let Some(entry) = self.home_lines.get_mut(&line) else {
            return;
        };
        let Some(active) = entry.active else {
            return; // transaction already done; data discarded
        };
        entry.mem_ready = true;
        fx.push(HtEffect::SendData {
            to: active.txn.node,
            data: HtData {
                txn: active.txn,
                line,
                from_memory: true,
                new_state: LineState::Exclusive,
            },
        });
    }

    fn home_done(&mut self, now: Cycle, d: HtDone, fx: &mut Vec<HtEffect>) {
        let Some(entry) = self.home_lines.get_mut(&d.line) else {
            return;
        };
        if entry.active.map(|a| a.txn) != Some(d.txn) {
            return; // stale
        }
        entry.active = None;
        entry.mem_ready = false;
        if let Some(next) = entry.waiting.pop_front() {
            entry.active = Some(next);
            fx.push(HtEffect::Broadcast(HtProbe { req: next }));
            fx.push(HtEffect::MemFetch { line: next.line });
            self.stats.mem_fetches += 1;
            tev!(
                self,
                now,
                next.txn,
                next.line,
                TraceKind::MemFetch { prefetch: false }
            );
        } else {
            self.home_lines.remove(&d.line);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agent(node: usize) -> HtAgent {
        HtAgent::new(NodeId(node), 4, 7, CacheConfig::l2_512k())
    }

    fn line() -> LineAddr {
        LineAddr::new(100)
    }

    #[test]
    fn home_mapping_is_interleaved() {
        assert_eq!(HtAgent::home_of(LineAddr::new(0), 4), NodeId(0));
        assert_eq!(HtAgent::home_of(LineAddr::new(5), 4), NodeId(1));
        assert_eq!(HtAgent::home_of(LineAddr::new(7), 4), NodeId(3));
    }

    #[test]
    fn miss_sends_request_to_home() {
        let mut a = agent(2);
        let fx = a.handle(
            0,
            HtInput::CoreRequest {
                line: line(),
                write: false,
            },
        );
        assert!(matches!(fx[0], HtEffect::SendRequest { home, .. } if home == NodeId(0)));
        assert!(a.has_outstanding(line()));
    }

    #[test]
    fn home_broadcasts_and_fetches() {
        let mut h = agent(0);
        let req = HtReq {
            txn: TxnId {
                node: NodeId(2),
                serial: 1,
            },
            line: line(),
            write: false,
        };
        let fx = h.handle(0, HtInput::Request(req));
        assert!(fx.iter().any(|e| matches!(e, HtEffect::Broadcast(_))));
        assert!(fx.iter().any(|e| matches!(e, HtEffect::MemFetch { .. })));
    }

    #[test]
    fn home_serializes_same_line() {
        let mut h = agent(0);
        let mk = |node: usize| HtReq {
            txn: TxnId {
                node: NodeId(node),
                serial: 1,
            },
            line: line(),
            write: true,
        };
        h.handle(0, HtInput::Request(mk(1)));
        let fx2 = h.handle(0, HtInput::Request(mk(2)));
        assert!(fx2.is_empty(), "second request must queue");
        assert_eq!(h.stats().serialized, 1);
        // Done releases the next.
        let fx3 = h.handle(
            10,
            HtInput::Done(HtDone {
                txn: TxnId {
                    node: NodeId(1),
                    serial: 1,
                },
                line: line(),
            }),
        );
        assert!(fx3
            .iter()
            .any(|e| matches!(e, HtEffect::Broadcast(p) if p.req.txn.node == NodeId(2))));
    }

    #[test]
    fn supplier_probe_ships_data_and_demotes() {
        let mut a = agent(1);
        a.install_line(line(), LineState::Dirty);
        let probe = HtProbe {
            req: HtReq {
                txn: TxnId {
                    node: NodeId(3),
                    serial: 1,
                },
                line: line(),
                write: false,
            },
        };
        let fx = a.handle(0, HtInput::ProbeSnoopDone(probe));
        assert!(fx.iter().any(
            |e| matches!(e, HtEffect::SendData { to, data } if *to == NodeId(3) && data.new_state == LineState::Tagged)
        ));
        assert_eq!(a.l2().state(line()), LineState::Shared);
    }

    #[test]
    fn write_probe_invalidates_sharers() {
        let mut a = agent(1);
        a.install_line(line(), LineState::Shared);
        let probe = HtProbe {
            req: HtReq {
                txn: TxnId {
                    node: NodeId(3),
                    serial: 1,
                },
                line: line(),
                write: true,
            },
        };
        let fx = a.handle(0, HtInput::ProbeSnoopDone(probe));
        assert_eq!(a.l2().state(line()), LineState::Invalid);
        assert!(fx.iter().any(
            |e| matches!(e, HtEffect::SendResponse { resp, .. } if !resp.supplied && !resp.sharer)
        ));
    }

    #[test]
    fn requester_completes_after_data_and_all_responses() {
        let mut a = agent(2); // 4-node machine: expects 3 responses
        let l = line();
        let fx = a.handle(
            0,
            HtInput::CoreRequest {
                line: l,
                write: false,
            },
        );
        let txn = match fx[0] {
            HtEffect::SendRequest { req, .. } => req.txn,
            _ => panic!("expected request"),
        };
        // Two negative responses.
        for _ in 0..2 {
            let fx = a.handle(
                10,
                HtInput::Response(HtResp {
                    txn,
                    line: l,
                    supplied: false,
                    sharer: false,
                }),
            );
            assert!(fx.is_empty());
        }
        // Supplier responds and ships data.
        a.handle(
            20,
            HtInput::Response(HtResp {
                txn,
                line: l,
                supplied: true,
                sharer: true,
            }),
        );
        let fx = a.handle(
            30,
            HtInput::Data(HtData {
                txn,
                line: l,
                from_memory: false,
                new_state: LineState::MasterShared,
            }),
        );
        assert!(fx.iter().any(|e| matches!(
            e,
            HtEffect::Bound {
                c2c: true,
                latency: 30,
                ..
            }
        )));
        assert!(fx
            .iter()
            .any(|e| matches!(e, HtEffect::Complete { c2c: true, .. })));
        assert!(fx.iter().any(|e| matches!(e, HtEffect::SendDone { .. })));
        assert_eq!(a.l2().state(l), LineState::MasterShared);
    }

    #[test]
    fn memory_fill_when_no_supplier() {
        let mut a = agent(2);
        let l = line();
        let fx = a.handle(
            0,
            HtInput::CoreRequest {
                line: l,
                write: false,
            },
        );
        let txn = match fx[0] {
            HtEffect::SendRequest { req, .. } => req.txn,
            _ => panic!(),
        };
        for _ in 0..3 {
            a.handle(
                10,
                HtInput::Response(HtResp {
                    txn,
                    line: l,
                    supplied: false,
                    sharer: false,
                }),
            );
        }
        // All negative: waits for home's memory data.
        assert!(a.has_outstanding(l));
        let fx = a.handle(
            250,
            HtInput::Data(HtData {
                txn,
                line: l,
                from_memory: true,
                new_state: LineState::Exclusive,
            }),
        );
        assert!(fx
            .iter()
            .any(|e| matches!(e, HtEffect::Bound { c2c: false, .. })));
        assert_eq!(a.l2().state(l), LineState::Exclusive);
    }

    #[test]
    fn home_forwards_memory_data_for_active_txn() {
        let mut h = agent(0);
        let req = HtReq {
            txn: TxnId {
                node: NodeId(2),
                serial: 1,
            },
            line: line(),
            write: false,
        };
        h.handle(0, HtInput::Request(req));
        let fx = h.handle(224, HtInput::MemData { line: line() });
        assert!(fx.iter().any(
            |e| matches!(e, HtEffect::SendData { to, data } if *to == NodeId(2) && data.from_memory)
        ));
    }

    #[test]
    fn stale_done_ignored() {
        let mut h = agent(0);
        let fx = h.handle(
            0,
            HtInput::Done(HtDone {
                txn: TxnId {
                    node: NodeId(1),
                    serial: 9,
                },
                line: line(),
            }),
        );
        assert!(fx.is_empty());
    }
}
