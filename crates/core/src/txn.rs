//! Transaction identity, kinds, and the winner-selection priority.

use ring_noc::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of coherence transaction a node initiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, PartialOrd, Ord)]
pub enum TxnKind {
    /// Load miss: needs the line's data (and, in the paper's default
    /// protocol, supplier status).
    Read,
    /// Store miss: needs the data and exclusive ownership; invalidates all
    /// other copies.
    WriteMiss,
    /// Store to a locally cached but not silently-writable line (Shared,
    /// MasterShared or Tagged): sends invalidations; needs ownership but
    /// not data. The paper calls this "a write hit that sends
    /// invalidations".
    WriteHit,
}

impl TxnKind {
    /// Whether the transaction invalidates other copies.
    pub fn is_write(self) -> bool {
        !matches!(self, TxnKind::Read)
    }

    /// Whether the requester needs the line's data shipped (a `WriteHit`
    /// already caches the data and needs only ownership).
    pub fn needs_data(self) -> bool {
        !matches!(self, TxnKind::WriteHit)
    }

    /// Winner-selection rank (paper §3.3.2): a write hit beats a write
    /// miss beats a read miss. Selecting the write hit minimizes memory
    /// accesses; selecting a write miss over a read can speed up lock
    /// transfer.
    pub fn rank(self) -> u8 {
        match self {
            TxnKind::WriteHit => 2,
            TxnKind::WriteMiss => 1,
            TxnKind::Read => 0,
        }
    }
}

impl fmt::Display for TxnKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TxnKind::Read => "read",
            TxnKind::WriteMiss => "write-miss",
            TxnKind::WriteHit => "write-hit",
        };
        f.write_str(s)
    }
}

/// Globally unique transaction identity: the requesting node plus a
/// per-node serial number. Retries are *new* transactions with fresh
/// serials (and fresh random tiebreaks).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct TxnId {
    /// The node that initiated the transaction.
    pub node: NodeId,
    /// Per-node monotonically increasing serial.
    pub serial: u64,
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.node, self.serial)
    }
}

/// The hierarchical winner-selection priority of §3.3.2, carried in every
/// `R` and `r` message so that all nodes resolve any pair of colliding
/// transactions identically.
///
/// The hierarchy is: transaction type first (write hit > write miss >
/// read), then a random number attached at issue (fair), then the node ID
/// (total, never ties).
///
/// `Priority` is a total order: [`Ord`] implements exactly this
/// hierarchy, so `a > b` means "a wins over b".
///
/// # Examples
///
/// ```
/// use ring_coherence::{Priority, TxnKind};
/// use ring_noc::NodeId;
///
/// let write = Priority::new(TxnKind::WriteMiss, 0, NodeId(1));
/// let read = Priority::new(TxnKind::Read, u32::MAX, NodeId(2));
/// assert!(write > read); // type outranks the random tiebreak
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Priority {
    kind_rank: u8,
    random: u32,
    node: usize,
}

impl Priority {
    /// Builds the priority of a transaction of `kind` from `node` with
    /// the issue-time `random` tiebreak.
    pub fn new(kind: TxnKind, random: u32, node: NodeId) -> Self {
        Priority {
            kind_rank: kind.rank(),
            random,
            node: node.0,
        }
    }

    /// Whether `self` wins against `other` (strictly higher priority).
    pub fn beats(self, other: Priority) -> bool {
        self > other
    }
}

impl PartialOrd for Priority {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Priority {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.kind_rank, self.random, self.node).cmp(&(other.kind_rank, other.random, other.node))
    }
}

impl ring_snapshot::Snap for TxnKind {
    fn save(&self, w: &mut ring_snapshot::SnapWriter) {
        w.put(&self.rank());
    }
    fn load(r: &mut ring_snapshot::SnapReader<'_>) -> Result<Self, ring_snapshot::SnapshotError> {
        Ok(match r.get::<u8>()? {
            0 => TxnKind::Read,
            1 => TxnKind::WriteMiss,
            2 => TxnKind::WriteHit,
            other => return Err(r.malformed(format!("TxnKind rank {other}"))),
        })
    }
}

impl ring_snapshot::Snap for TxnId {
    fn save(&self, w: &mut ring_snapshot::SnapWriter) {
        w.put(&self.node);
        w.put(&self.serial);
    }
    fn load(r: &mut ring_snapshot::SnapReader<'_>) -> Result<Self, ring_snapshot::SnapshotError> {
        Ok(TxnId {
            node: r.get()?,
            serial: r.get()?,
        })
    }
}

impl ring_snapshot::Snap for Priority {
    fn save(&self, w: &mut ring_snapshot::SnapWriter) {
        w.put(&self.kind_rank);
        w.put(&self.random);
        w.put(&(self.node as u64));
    }
    fn load(r: &mut ring_snapshot::SnapReader<'_>) -> Result<Self, ring_snapshot::SnapshotError> {
        Ok(Priority {
            kind_rank: r.get()?,
            random: r.get()?,
            node: r.get::<u64>()? as usize,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_ranks_follow_paper_hierarchy() {
        assert!(TxnKind::WriteHit.rank() > TxnKind::WriteMiss.rank());
        assert!(TxnKind::WriteMiss.rank() > TxnKind::Read.rank());
    }

    #[test]
    fn write_classification() {
        assert!(!TxnKind::Read.is_write());
        assert!(TxnKind::WriteMiss.is_write());
        assert!(TxnKind::WriteHit.is_write());
    }

    #[test]
    fn data_need() {
        assert!(TxnKind::Read.needs_data());
        assert!(TxnKind::WriteMiss.needs_data());
        assert!(!TxnKind::WriteHit.needs_data());
    }

    #[test]
    fn priority_type_dominates_random() {
        let hi = Priority::new(TxnKind::WriteHit, 0, NodeId(0));
        let lo = Priority::new(TxnKind::Read, u32::MAX, NodeId(63));
        assert!(hi.beats(lo));
        assert!(!lo.beats(hi));
    }

    #[test]
    fn priority_random_dominates_node() {
        let a = Priority::new(TxnKind::Read, 10, NodeId(0));
        let b = Priority::new(TxnKind::Read, 5, NodeId(63));
        assert!(a.beats(b));
    }

    #[test]
    fn priority_node_breaks_final_ties() {
        let a = Priority::new(TxnKind::Read, 7, NodeId(9));
        let b = Priority::new(TxnKind::Read, 7, NodeId(3));
        assert!(a.beats(b));
        assert!(!b.beats(a));
    }

    #[test]
    fn priority_is_total_never_self_beating() {
        let a = Priority::new(TxnKind::Read, 7, NodeId(9));
        assert!(!a.beats(a));
        assert_eq!(a, a);
    }

    #[test]
    fn txn_id_display() {
        let id = TxnId {
            node: NodeId(3),
            serial: 7,
        };
        assert_eq!(id.to_string(), "N3#7");
    }
}
