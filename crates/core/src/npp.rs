//! The Node Prefetch Predictor (paper §5.4).

use ring_cache::LineAddr;
use ring_sim::FxHashMap;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// The per-node half of the prefetching optimization.
///
/// The NPP records "the line addresses of cache miss and invalidation
/// transactions recently seen in the ring". When the node issues a request
/// whose address is *not* in the table, the line is unlikely to be on chip
/// and a memory prefetch is issued in parallel with the ring transaction.
///
/// Modeled as an LRU table of the most recent *distinct* addresses
/// (paper configuration: 8K line addresses).
///
/// # Examples
///
/// ```
/// use ring_coherence::NodePrefetchPredictor;
/// use ring_cache::LineAddr;
///
/// let mut npp = NodePrefetchPredictor::new(1024);
/// let a = LineAddr::new(9);
/// assert!(npp.should_prefetch(a)); // unseen → likely in memory
/// npp.observe(a);
/// assert!(!npp.should_prefetch(a)); // seen in ring traffic → on chip
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NodePrefetchPredictor {
    capacity: usize,
    /// Lazy LRU queue of (addr, stamp); stale entries are skipped.
    queue: VecDeque<(LineAddr, u64)>,
    /// addr -> latest observation stamp. Keyed by small integers whose
    /// iteration order is never observed, so the fast deterministic
    /// hasher applies.
    present: FxHashMap<LineAddr, u64>,
    tick: u64,
    observations: u64,
    prefetch_hits: u64,
    prefetch_suppressions: u64,
}

impl NodePrefetchPredictor {
    /// Creates a predictor remembering up to `capacity` distinct
    /// addresses. A capacity of 0 yields a predictor that always
    /// recommends prefetching.
    pub fn new(capacity: usize) -> Self {
        NodePrefetchPredictor {
            capacity,
            ..Self::default()
        }
    }

    /// Records a transaction address observed in ring traffic. Re-seen
    /// addresses are refreshed (moved to most-recently-used); distinct
    /// addresses beyond capacity evict the least recently observed.
    pub fn observe(&mut self, addr: LineAddr) {
        if self.capacity == 0 {
            return;
        }
        self.observations += 1;
        self.tick += 1;
        self.present.insert(addr, self.tick);
        self.queue.push_back((addr, self.tick));
        // Evict least-recently-observed distinct addresses, skipping
        // stale queue entries superseded by a refresh.
        while self.present.len() > self.capacity {
            // Every present entry has a live queue entry, so the queue
            // cannot drain before the table shrinks below capacity.
            let Some((old, stamp)) = self.queue.pop_front() else {
                break;
            };
            if self.present.get(&old) == Some(&stamp) {
                self.present.remove(&old);
            }
        }
        // Bound the lazy queue by trimming leading stale entries only
        // (live entries stay in place to preserve LRU order).
        while self.queue.len() > self.capacity * 4 {
            match self.queue.front() {
                Some(&(old, stamp)) if self.present.get(&old) != Some(&stamp) => {
                    self.queue.pop_front();
                }
                _ => break,
            }
        }
    }

    /// Decides whether a miss on `addr` should send a prefetch to the
    /// memory controller: yes iff the address has not been seen recently.
    pub fn should_prefetch(&mut self, addr: LineAddr) -> bool {
        let seen = self.present.contains_key(&addr);
        if seen {
            self.prefetch_suppressions += 1;
        } else {
            self.prefetch_hits += 1;
        }
        !seen
    }

    /// Number of ring observations recorded.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Times the predictor recommended prefetching.
    pub fn prefetches_recommended(&self) -> u64 {
        self.prefetch_hits
    }

    /// Times the predictor suppressed a prefetch.
    pub fn prefetches_suppressed(&self) -> u64 {
        self.prefetch_suppressions
    }

    /// Distinct addresses currently remembered.
    pub fn len(&self) -> usize {
        self.present.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.present.is_empty()
    }

    /// Hashes the predictor's behavioral state into `h`: the live LRU
    /// sequence (stale queue entries and raw stamps are canonicalized
    /// away) and the capacity. Statistics counters are excluded. Used by
    /// the `ring-model` state-space explorer.
    pub fn digest(&self, h: &mut impl std::hash::Hasher) {
        use std::hash::Hash;
        self.capacity.hash(h);
        let live: Vec<LineAddr> = self
            .queue
            .iter()
            .filter(|(a, stamp)| self.present.get(a) == Some(stamp))
            .map(|&(a, _)| a)
            .collect();
        live.hash(h);
    }
}

impl NodePrefetchPredictor {
    /// Serializes the predictor. The hashed presence table is emitted
    /// in sorted address order so the encoding is canonical regardless
    /// of hash-map iteration order.
    pub fn snap_save(&self, w: &mut ring_snapshot::SnapWriter) {
        w.put(&self.capacity);
        w.put(&self.queue);
        let mut present: Vec<(LineAddr, u64)> =
            self.present.iter().map(|(&a, &s)| (a, s)).collect();
        present.sort_unstable();
        w.put(&present);
        w.put(&self.tick);
        w.put(&self.observations);
        w.put(&self.prefetch_hits);
        w.put(&self.prefetch_suppressions);
    }

    /// Rebuilds a predictor from a snapshot.
    pub fn snap_load(
        r: &mut ring_snapshot::SnapReader<'_>,
    ) -> Result<Self, ring_snapshot::SnapshotError> {
        let capacity: usize = r.get()?;
        let queue: VecDeque<(LineAddr, u64)> = r.get()?;
        let present_vec: Vec<(LineAddr, u64)> = r.get()?;
        let mut present = FxHashMap::default();
        for (a, s) in present_vec {
            present.insert(a, s);
        }
        Ok(NodePrefetchPredictor {
            capacity,
            queue,
            present,
            tick: r.get()?,
            observations: r.get()?,
            prefetch_hits: r.get()?,
            prefetch_suppressions: r.get()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unseen_address_prefetches() {
        let mut npp = NodePrefetchPredictor::new(4);
        assert!(npp.should_prefetch(LineAddr::new(1)));
        assert_eq!(npp.prefetches_recommended(), 1);
    }

    #[test]
    fn observed_address_suppressed() {
        let mut npp = NodePrefetchPredictor::new(4);
        npp.observe(LineAddr::new(1));
        assert!(!npp.should_prefetch(LineAddr::new(1)));
        assert_eq!(npp.prefetches_suppressed(), 1);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut npp = NodePrefetchPredictor::new(2);
        npp.observe(LineAddr::new(1));
        npp.observe(LineAddr::new(2));
        npp.observe(LineAddr::new(3));
        assert!(npp.should_prefetch(LineAddr::new(1)), "1 evicted");
        assert!(!npp.should_prefetch(LineAddr::new(2)));
        assert!(!npp.should_prefetch(LineAddr::new(3)));
    }

    #[test]
    fn repeated_observation_keeps_address_resident() {
        let mut npp = NodePrefetchPredictor::new(2);
        npp.observe(LineAddr::new(1));
        npp.observe(LineAddr::new(1));
        npp.observe(LineAddr::new(2));
        // FIFO holds [1,1,2] trimmed to [1,2]: both still present.
        assert!(!npp.should_prefetch(LineAddr::new(1)));
        assert!(!npp.should_prefetch(LineAddr::new(2)));
    }

    #[test]
    fn zero_capacity_always_prefetches() {
        let mut npp = NodePrefetchPredictor::new(0);
        npp.observe(LineAddr::new(1));
        assert!(npp.should_prefetch(LineAddr::new(1)));
        assert!(npp.is_empty());
        assert_eq!(npp.observations(), 0);
    }

    #[test]
    fn len_counts_distinct() {
        let mut npp = NodePrefetchPredictor::new(8);
        npp.observe(LineAddr::new(1));
        npp.observe(LineAddr::new(1));
        npp.observe(LineAddr::new(2));
        assert_eq!(npp.len(), 2);
    }
}
