//! Embedded-ring snoopy cache-coherence protocols — the primary
//! contribution of the MICRO 2007 paper *Uncorq: Unconstrained Snoop
//! Request Delivery in Embedded-Ring Multiprocessors*.
//!
//! # Protocol family
//!
//! All protocols in this crate implement a single-supplier, invalidation-
//! based coherence scheme over a logical unidirectional ring embedded in a
//! point-to-point network (paper §2). They differ in how the snoop
//! *request* (`R`) is delivered; the combined snoop *response* (`r`)
//! always traverses the ring:
//!
//! | Protocol | `R` delivery | Extras |
//! |---|---|---|
//! | [`ProtocolKind::Eager`] | ring, forwarded before snooping | — |
//! | [`ProtocolKind::SupersetCon`] | ring, stalled behind the snoop at filter-positive nodes | per-node presence filter |
//! | [`ProtocolKind::SupersetAgg`] | ring, forwarded after a filter lookup | per-node presence filter |
//! | [`ProtocolKind::Uncorq`] | **any network path** (multicast) for reads; ring for writes | [`Ltt`] enforces the Ordering invariant |
//!
//! The Uncorq+Pref variant adds the hardware prefetching optimization of
//! §5.4 ([`NodePrefetchPredictor`] + the memory-side CPP in `ring-mem`).
//!
//! A HyperTransport-style broadcast baseline ([`ht`]) reproduces the
//! comparison of §7.4.
//!
//! # The Ordering invariant (paper §3.1)
//!
//! *Given two colliding transactions, the order in which their `r`
//! messages arrive at the first of the two requesting nodes found in ring
//! order after the supplier node must equal the order in which their `R`
//! messages arrived at the supplier.*
//!
//! Eager enforces it with same-direction, same-line-FIFO ring traversal;
//! Uncorq enforces it with the Local Transaction Table ([`Ltt`]), which
//! stalls negative responses that would otherwise overtake the winner's
//! positive response.
//!
//! # Architecture
//!
//! The protocol engine is a pure message-driven state machine:
//! [`RingAgent::handle`] consumes one [`AgentInput`] and returns
//! [`Effect`]s. The `ring-system` crate owns the event queue and network
//! timing and converts effects into future inputs. This split keeps the
//! protocol logic deterministic and directly testable: the collision
//! scenario tests drive agents with hand-ordered inputs and assert on the
//! resulting message sequences, mirroring the paper's Tables 1 and 2.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod agent;
pub mod config;
pub mod filter;
pub mod ht;
pub mod ltt;
pub mod msg;
pub mod npp;
pub mod table;
pub mod txn;

pub use agent::{AgentInput, AgentStats, Effect, OwnTxView, RingAgent};
pub use config::{ConfigError, ProtocolConfig, ProtocolKind, ProtocolVariant};
pub use filter::PresenceFilter;
pub use ltt::{Ltt, LttConfig};
pub use msg::{RequestMsg, ResponseMsg, RingMsg, SupplierMsg, CONTROL_BYTES, DATA_BYTES};
pub use npp::NodePrefetchPredictor;
pub use table::{
    DecisionAction, DecisionCtx, DecisionGuard, DecisionRow, DecisionTable, RespClass, SnoopRow,
    SnoopState, SupplierGuard, SupplierTable, SupplyAction, TableAnalysis, TableError,
};
pub use txn::{Priority, TxnId, TxnKind};
