//! The per-node embedded-ring protocol engine.
//!
//! [`RingAgent`] implements Eager, SupersetCon, SupersetAgg and Uncorq as
//! one message-driven state machine: the machine simulator feeds it
//! [`AgentInput`]s (with the current cycle) and executes the returned
//! [`Effect`]s — sending ring messages to the ring successor, multicasting
//! requests, starting snoops, fetching memory, and recording statistics.
//!
//! The agent owns the node's L2 array, its [`Ltt`], its presence filter
//! (Flexible Snooping), its [`NodePrefetchPredictor`], and the MSHRs for
//! its own outstanding transactions. All collision handling of the
//! paper's Tables 1 and 2 lives here.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::{Arc, OnceLock};

use ring_cache::{CacheArray, CacheConfig, LineAddr, LineState, Mshr};
use ring_noc::NodeId;
use ring_sim::{Cycle, DetRng};
use ring_trace::{ErrorClass, EventKind as TraceKind, OpClass, Payload, TraceEvent};
use serde::{Deserialize, Serialize};

use crate::config::{ProtocolConfig, ProtocolKind};
use crate::table::{SnoopState, SupplierTable};

/// Maps a protocol transaction kind onto the trace-layer operation
/// class.
fn op_class(kind: TxnKind) -> OpClass {
    match kind {
        TxnKind::Read => OpClass::Read,
        TxnKind::WriteMiss => OpClass::WriteMiss,
        TxnKind::WriteHit => OpClass::WriteHit,
    }
}

/// Pushes a [`TraceEvent`] onto the agent's buffer when tracing is on.
///
/// A macro rather than a method so it can be used while a disjoint
/// field of the agent (e.g. an MSHR entry) is mutably borrowed.
macro_rules! tev {
    ($self:ident, $now:expr, $txn:expr, $line:expr, $kind:expr) => {
        if $self.trace_on {
            let txn: TxnId = $txn;
            $self.trace_buf.push(TraceEvent {
                cycle: $now,
                node: $self.node.0 as u32,
                txn_node: txn.node.0 as u32,
                txn_serial: txn.serial,
                line: $line.raw(),
                kind: $kind,
            });
        }
    };
}
use crate::filter::PresenceFilter;
use crate::ltt::{Ltt, LttEntry};
use crate::msg::{RequestMsg, ResponseMsg, RingMsg, SupplierMsg};
use crate::npp::NodePrefetchPredictor;
use crate::txn::{Priority, TxnId, TxnKind};

/// An input delivered to a protocol agent at a point in simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AgentInput {
    /// The local core needs a coherence transaction for `line`.
    CoreRequest {
        /// Line to transact on.
        line: LineAddr,
        /// Kind of transaction (classified against the L2 by the caller).
        kind: TxnKind,
    },
    /// A ring message arrived from the ring predecessor.
    RingArrival(RingMsg),
    /// A multicast request arrived over the unconstrained path (Uncorq).
    DirectRequest(RequestMsg),
    /// A previously started local snoop finished.
    SnoopDone {
        /// Transaction the snoop serves.
        txn: TxnId,
        /// Line snooped.
        line: LineAddr,
    },
    /// A suppliership message arrived (directly from the supplier).
    Supplier(SupplierMsg),
    /// A demand memory fetch (or claimed prefetch) completed.
    MemData {
        /// Line whose data arrived.
        line: LineAddr,
    },
    /// A scheduled retry fired.
    RetryNow {
        /// Line to retry.
        line: LineAddr,
    },
}

/// A side effect the machine simulator must carry out for the agent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Effect {
    /// Send a ring message to the ring successor after `delay` extra
    /// cycles (filter lookup, stall-and-snoop forwarding).
    RingSend {
        /// The message.
        msg: RingMsg,
        /// Extra cycles before injection.
        delay: Cycle,
    },
    /// Multicast a request to every other node over any network path.
    MulticastRequest(RequestMsg),
    /// Send a suppliership message directly to `to`.
    SendSupplier {
        /// Destination (the requester).
        to: NodeId,
        /// The suppliership.
        msg: SupplierMsg,
    },
    /// Schedule `SnoopDone { txn, line }` after `delay` cycles.
    StartSnoop {
        /// Transaction being snooped.
        txn: TxnId,
        /// Line being snooped.
        line: LineAddr,
        /// Snoop latency (includes filter lookup where applicable).
        delay: Cycle,
    },
    /// Re-deliver `SnoopDone` after `delay` (SNID reservation stall).
    DelaySnoop {
        /// Transaction stalled.
        txn: TxnId,
        /// Line stalled.
        line: LineAddr,
        /// Stall length in cycles.
        delay: Cycle,
    },
    /// Fetch `line` from memory; `prefetch` distinguishes the §5.4
    /// speculative prefetch from a demand fetch after `r-`.
    MemFetch {
        /// Line to fetch.
        line: LineAddr,
        /// Whether this is a speculative prefetch.
        prefetch: bool,
    },
    /// Write a dirty victim back to memory.
    Writeback {
        /// Victim line.
        line: LineAddr,
    },
    /// The requested data (or ownership) became usable — the load/store
    /// binds. Read-miss latency is measured here.
    Bound {
        /// Line bound.
        line: LineAddr,
        /// Transaction kind.
        kind: TxnKind,
        /// Cycles from first issue (including retries) to binding.
        latency: Cycle,
        /// Serviced by a cache-to-cache transfer?
        c2c: bool,
    },
    /// The transaction completed (own `r` consumed; all copies
    /// invalidated for writes).
    Complete {
        /// Line completed.
        line: LineAddr,
        /// Transaction kind.
        kind: TxnKind,
        /// Serviced cache-to-cache?
        c2c: bool,
        /// Times the transaction was squashed and retried.
        retries: u32,
        /// Whether a §5.4 prefetch was issued for it.
        prefetch_issued: bool,
        /// Cycles from first issue to completion — the "time to response
        /// reception" of the paper's Figure 5(b).
        latency: Cycle,
    },
    /// Schedule `RetryNow { line }` after `delay` cycles.
    Retry {
        /// Line to retry.
        line: LineAddr,
        /// Backoff delay.
        delay: Cycle,
    },
    /// The node's L2 lost this line (invalidation or eviction); the
    /// machine must invalidate the core's L1 copy to preserve inclusion.
    L1Invalidate {
        /// Line to drop from the L1.
        line: LineAddr,
    },
}

/// Counters the agent maintains about its own operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AgentStats {
    /// Transactions issued (first attempts).
    pub issued: u64,
    /// Transactions completed.
    pub completed: u64,
    /// Completions serviced cache-to-cache.
    pub completed_c2c: u64,
    /// Squash/loser retries.
    pub retries: u64,
    /// Collisions observed (foreign transaction overlapping an own one).
    pub collisions: u64,
    /// Local snoop operations performed.
    pub snoops: u64,
    /// Snoops skipped thanks to the presence filter.
    pub snoops_skipped: u64,
    /// Suppliership messages sent.
    pub supplierships_sent: u64,
    /// Responses this node marked as squashed.
    pub squash_marks: u64,
    /// Responses this node marked with the Loser Hint.
    pub loser_hint_marks: u64,
    /// Starvation episodes (forward-progress mechanism engaged).
    pub starvation_events: u64,
    /// §5.4 prefetches issued.
    pub prefetches_issued: u64,
    /// Protocol-state errors detected and recovered from (e.g. an MSHR
    /// or LTT slot missing where the protocol required one). Always 0 in
    /// a correct run, including runs under in-spec fault injection.
    pub protocol_errors: u64,
}

/// Per-collider bookkeeping inside an own transaction.
#[derive(Debug, Clone, Copy)]
struct Collider {
    priority: Priority,
    kind: TxnKind,
    response_seen: bool,
}

/// State of one own outstanding transaction (an MSHR payload).
#[derive(Debug, Clone)]
struct OwnTx {
    txn: TxnId,
    kind: TxnKind,
    priority: Priority,
    first_issued_at: Cycle,
    retries: u32,
    suppliership: Option<SupplierMsg>,
    own_resp: Option<ResponseMsg>,
    /// Point of no return: own `r` consumed and this transaction won
    /// (committed to suppliership wait or memory).
    committed: bool,
    lost: bool,
    colliders: BTreeMap<TxnId, Collider>,
    must_invalidate: bool,
    /// A squashed positive was consumed before the suppliership landed:
    /// the attempt must fail over, but a transfer is already in flight
    /// to us (the positive proves a supplier serviced this attempt), so
    /// the abort is parked until it arrives — failing immediately would
    /// let the retry bind stale memory while the only current copy is
    /// still on the wire.
    doomed: bool,
    /// Our resident copy was evicted out from under a WriteHit.
    copy_lost: bool,
    /// Sharers observed by our own combined response.
    sharers_seen: bool,
    prefetch_issued: bool,
    mem_waiting: bool,
}

impl OwnTx {
    fn all_collider_responses_seen(&self) -> bool {
        self.colliders.values().all(|c| c.response_seen)
    }

    fn beats_all_colliders(&self) -> bool {
        self.colliders
            .values()
            .all(|c| self.priority.beats(c.priority))
    }
}

/// The process-wide canonical supplier table, shared by every agent that
/// has not been handed a replacement.
fn canonical_supplier_table() -> Arc<SupplierTable> {
    static CANONICAL: OnceLock<Arc<SupplierTable>> = OnceLock::new();
    Arc::clone(CANONICAL.get_or_init(|| Arc::new(SupplierTable::canonical())))
}

/// A read-only snapshot of one own outstanding transaction, exposing the
/// requester-side decision inputs the `ring-model` conformance checker
/// replays against [`crate::DecisionTable`].
#[derive(Debug, Clone)]
pub struct OwnTxView {
    /// The transaction's identity.
    pub txn: TxnId,
    /// Current kind (a WriteHit degrades to WriteMiss on copy loss).
    pub kind: TxnKind,
    /// Winner-selection priority.
    pub priority: Priority,
    /// Own `r` consumed and won (point of no return).
    pub committed: bool,
    /// A passing `r+` proved this transaction lost.
    pub lost: bool,
    /// Committed to a memory fill that has not arrived yet.
    pub mem_waiting: bool,
    /// The suppliership message has arrived.
    pub has_suppliership: bool,
    /// Whether the bound suppliership carries data (`None` until one
    /// arrives).
    pub suppliership_with_data: Option<bool>,
    /// Whether the own combined response has been consumed, and if so
    /// whether it was positive.
    pub own_resp_positive: Option<bool>,
    /// A colliding write obligates invalidation of the local copy.
    pub must_invalidate: bool,
    /// A squashed positive parked this attempt until its in-flight
    /// suppliership lands (it then flushes and fails over).
    pub doomed: bool,
    /// The resident copy was evicted out from under a WriteHit.
    pub copy_lost: bool,
    /// Known colliders as `(txn, priority, response_seen)`.
    pub colliders: Vec<(TxnId, Priority, bool)>,
}

impl OwnTxView {
    /// Whether every known collider's response has been observed.
    pub fn colliders_seen(&self) -> bool {
        self.colliders.iter().all(|&(_, _, seen)| seen)
    }

    /// Whether this transaction's priority beats every known collider's.
    pub fn beats_all(&self) -> bool {
        self.colliders
            .iter()
            .all(|&(_, p, _)| self.priority.beats(p))
    }
}

/// Retry bookkeeping that survives across attempts on a line.
#[derive(Debug, Clone, Copy)]
struct RetryInfo {
    kind: TxnKind,
    count: u32,
    first_issued_at: Cycle,
}

/// The per-node protocol engine. See the crate docs for the protocol
/// family and the module docs for the interaction model.
#[derive(Debug, Clone)]
pub struct RingAgent {
    node: NodeId,
    cfg: ProtocolConfig,
    l2: CacheArray,
    ltt: Ltt,
    filter: Option<PresenceFilter>,
    npp: NodePrefetchPredictor,
    outstanding: Mshr<OwnTx>,
    pending_core: VecDeque<(LineAddr, TxnKind)>,
    retry_info: BTreeMap<LineAddr, RetryInfo>,
    squash_set: BTreeMap<LineAddr, BTreeSet<TxnId>>,
    /// Foreign requests intercepted while starving (Eager §5.2.1).
    held_requests: Vec<RequestMsg>,
    /// SupersetCon: requests to forward once their snoop completes.
    forward_on_snoop: BTreeSet<TxnId>,
    /// Remaining SNID-stall re-deliveries per snoop (bounded).
    snoop_delay_budget: BTreeMap<TxnId, u32>,
    starving: Option<LineAddr>,
    serial: u64,
    rng: DetRng,
    /// The declarative supplier-side snoop table this agent consults on
    /// every [`AgentInput::SnoopDone`]. Shared (the canonical table by
    /// default); replaceable for the model-checker's mutation harness.
    table: Arc<SupplierTable>,
    stats: AgentStats,
    /// Whether trace events are collected (off by default: the hot path
    /// then only tests one bool per site).
    trace_on: bool,
    trace_buf: Vec<TraceEvent>,
}

impl RingAgent {
    /// Creates the agent for `node` with an empty L2 of geometry
    /// `l2_cfg`.
    ///
    /// # Panics
    ///
    /// Panics when `cfg` fails [`ProtocolConfig::validate`] — agents no
    /// longer clamp degenerate values at use sites, so construction is
    /// the last line of defense. Callers wanting a recoverable error
    /// should validate first.
    pub fn new(node: NodeId, cfg: ProtocolConfig, l2_cfg: CacheConfig, rng: DetRng) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid protocol config for node {}: {e}", node.0);
        }
        let filter = cfg.kind.uses_filter().then(|| PresenceFilter::new(8192, 2));
        RingAgent {
            node,
            l2: CacheArray::new(l2_cfg),
            ltt: Ltt::new(cfg.ltt),
            filter,
            npp: NodePrefetchPredictor::new(if cfg.prefetch { cfg.npp_entries } else { 0 }),
            outstanding: Mshr::new(cfg.max_outstanding),
            pending_core: VecDeque::new(),
            retry_info: BTreeMap::new(),
            squash_set: BTreeMap::new(),
            held_requests: Vec::new(),
            forward_on_snoop: BTreeSet::new(),
            snoop_delay_budget: BTreeMap::new(),
            starving: None,
            serial: 0,
            rng,
            table: canonical_supplier_table(),
            cfg,
            stats: AgentStats::default(),
            trace_on: false,
            trace_buf: Vec::new(),
        }
    }

    /// Turns trace-event collection on or off. While off (the default)
    /// the agent never constructs a [`TraceEvent`].
    pub fn set_tracing(&mut self, on: bool) {
        self.trace_on = on;
    }

    /// Takes the trace events accumulated since the last drain, in
    /// emission (chronological) order.
    pub fn drain_trace(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.trace_buf)
    }

    /// This agent's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The protocol configuration.
    pub fn config(&self) -> &ProtocolConfig {
        &self.cfg
    }

    /// Read access to the node's L2 array.
    pub fn l2(&self) -> &CacheArray {
        &self.l2
    }

    /// Read access to the LTT.
    pub fn ltt(&self) -> &Ltt {
        &self.ltt
    }

    /// The agent's counters.
    pub fn stats(&self) -> &AgentStats {
        &self.stats
    }

    /// The supplier-side snoop table this agent consults.
    pub fn supplier_table(&self) -> &SupplierTable {
        &self.table
    }

    /// Replaces the supplier table (the model checker's mutation harness
    /// injects deliberately broken tables here; production code keeps the
    /// canonical default).
    pub fn set_supplier_table(&mut self, table: Arc<SupplierTable>) {
        self.table = table;
    }

    /// A snapshot of the own outstanding transaction on `line`, exposing
    /// the requester-side decision inputs for differential conformance
    /// checking. `None` when no transaction is outstanding there.
    pub fn own_txn_view(&self, line: LineAddr) -> Option<OwnTxView> {
        let tx = self.outstanding.get(line)?;
        Some(OwnTxView {
            txn: tx.txn,
            kind: tx.kind,
            priority: tx.priority,
            committed: tx.committed,
            lost: tx.lost,
            mem_waiting: tx.mem_waiting,
            has_suppliership: tx.suppliership.is_some(),
            suppliership_with_data: tx.suppliership.map(|s| s.with_data),
            own_resp_positive: tx.own_resp.map(|r| r.positive),
            must_invalidate: tx.must_invalidate,
            doomed: tx.doomed,
            copy_lost: tx.copy_lost,
            colliders: tx
                .colliders
                .iter()
                .map(|(id, c)| (*id, c.priority, c.response_seen))
                .collect(),
        })
    }

    /// Hashes the agent's complete protocol-relevant state into `h`, so
    /// the `ring-model` explorer can deduplicate global states. Includes
    /// everything future behavior depends on (L2 contents, LTT, MSHR
    /// payloads, retry/squash/starvation bookkeeping, filter and NPP
    /// state, the RNG) and excludes pure statistics and the trace buffer.
    pub fn digest(&self, h: &mut impl std::hash::Hasher) {
        use std::hash::Hash;
        self.node.hash(h);
        // L2 resident lines: CacheArray::iter walks sets in index order
        // and ways in physical order; sort for canonical form (way order
        // within a set is allocation history, not behavior — LRU ranks
        // would matter for evictions, but model configs are sized so the
        // working set fits, and the tiebreak is deterministic anyway).
        let mut lines: Vec<(LineAddr, LineState)> = self.l2.iter().collect();
        lines.sort_unstable();
        lines.hash(h);
        self.ltt.digest(h);
        if let Some(f) = self.filter.as_ref() {
            f.digest(h);
        }
        self.npp.digest(h);
        self.outstanding.len().hash(h);
        for (line, tx) in self.outstanding.iter() {
            line.hash(h);
            tx.txn.hash(h);
            tx.kind.hash(h);
            tx.priority.hash(h);
            tx.first_issued_at.hash(h);
            tx.retries.hash(h);
            tx.suppliership.hash(h);
            tx.own_resp.hash(h);
            tx.committed.hash(h);
            tx.lost.hash(h);
            tx.colliders.len().hash(h);
            for (id, c) in &tx.colliders {
                id.hash(h);
                c.priority.hash(h);
                c.response_seen.hash(h);
            }
            tx.must_invalidate.hash(h);
            tx.doomed.hash(h);
            tx.copy_lost.hash(h);
            tx.sharers_seen.hash(h);
            tx.prefetch_issued.hash(h);
            tx.mem_waiting.hash(h);
        }
        self.pending_core.hash(h);
        self.retry_info.len().hash(h);
        for (line, info) in &self.retry_info {
            line.hash(h);
            info.kind.hash(h);
            info.count.hash(h);
            info.first_issued_at.hash(h);
        }
        self.squash_set.hash(h);
        self.held_requests.hash(h);
        self.forward_on_snoop.hash(h);
        self.snoop_delay_budget.hash(h);
        self.starving.hash(h);
        self.serial.hash(h);
        self.rng.state().hash(h);
    }

    /// Whether a transaction for `line` is outstanding at this node.
    pub fn has_outstanding(&self, line: LineAddr) -> bool {
        self.outstanding.contains(line)
    }

    /// Whether `line` is engaged by this node in any form: an outstanding
    /// transaction, a deferred core request, or a retry in backoff. The
    /// machine treats engaged lines as store-to-load-forwardable so cores
    /// do not issue duplicate transactions.
    pub fn is_line_engaged(&self, line: LineAddr) -> bool {
        self.outstanding.contains(line)
            || self.retry_info.contains_key(&line)
            || self.pending_core.iter().any(|&(l, _)| l == line)
    }

    /// Number of own outstanding transactions.
    pub fn outstanding_count(&self) -> usize {
        self.outstanding.len()
    }

    /// Lines currently in retry backoff, with their retry counts
    /// (stall-report introspection).
    pub fn retry_lines(&self) -> Vec<(LineAddr, u32)> {
        self.retry_info.iter().map(|(l, i)| (*l, i.count)).collect()
    }

    /// The line this node is starving on, if the §5.2 forward-progress
    /// mechanism is engaged.
    pub fn starving_line(&self) -> Option<LineAddr> {
        self.starving
    }

    /// Core requests deferred behind the MSHR/IPTR limits.
    pub fn pending_core_len(&self) -> usize {
        self.pending_core.len()
    }

    /// Classifies a store against the current L2 state: `None` if it can
    /// proceed silently, otherwise the transaction kind needed.
    pub fn classify_store(&self, line: LineAddr) -> Option<TxnKind> {
        match self.l2.state(line) {
            s if s.can_write_silently() => None,
            LineState::Shared | LineState::MasterShared | LineState::Tagged => {
                Some(TxnKind::WriteHit)
            }
            LineState::Invalid => Some(TxnKind::WriteMiss),
            _ => unreachable!("can_write_silently covers E and D"),
        }
    }

    /// Records `line` as recently seen in ring traffic (warm-up hook for
    /// the Node Prefetch Predictor: the paper's runs skip initialization,
    /// during which this traffic would have been observed).
    pub fn npp_observe(&mut self, line: LineAddr) {
        self.npp.observe(line);
    }

    /// Directly installs a line (test setup / warm-up), updating the
    /// filter. Returns a dirty victim to write back, if any.
    pub fn install_line(&mut self, line: LineAddr, state: LineState) -> Option<LineAddr> {
        let evicted = self.l2.insert(line, state);
        if let Some(f) = self.filter.as_mut() {
            f.insert(line);
            if let Some(ev) = evicted {
                f.remove(ev.addr);
            }
        }
        evicted.and_then(|ev| ev.state.is_dirty().then_some(ev.addr))
    }

    /// Handles one input at cycle `now`, returning the effects to apply.
    pub fn handle(&mut self, now: Cycle, input: AgentInput) -> Vec<Effect> {
        let mut fx = Vec::new();
        self.handle_into(now, input, &mut fx);
        fx
    }

    /// [`RingAgent::handle`] into a caller-owned effect buffer, so the
    /// event loop can reuse one allocation across all events. Effects
    /// are appended; the caller clears the buffer between events.
    pub fn handle_into(&mut self, now: Cycle, input: AgentInput, fx: &mut Vec<Effect>) {
        match input {
            AgentInput::CoreRequest { line, kind } => {
                self.core_request(now, line, kind, fx);
            }
            AgentInput::RingArrival(RingMsg::Request(req)) => {
                self.ring_request(now, req, fx);
            }
            AgentInput::RingArrival(RingMsg::Response(resp)) => {
                self.response_arrival(now, resp, fx);
            }
            AgentInput::DirectRequest(req) => {
                self.direct_request(now, req, fx);
            }
            AgentInput::SnoopDone { txn, line } => {
                self.snoop_done(now, txn, line, fx);
            }
            AgentInput::Supplier(msg) => {
                self.supplier_arrival(now, msg, fx);
            }
            AgentInput::MemData { line } => {
                self.mem_data(now, line, fx);
            }
            AgentInput::RetryNow { line } => {
                self.retry_now(now, line, fx);
            }
        }
        self.drain_pending_core(now, fx);
    }

    // ------------------------------------------------------------------
    // Issue path
    // ------------------------------------------------------------------

    fn core_request(&mut self, now: Cycle, line: LineAddr, kind: TxnKind, fx: &mut Vec<Effect>) {
        if !self.can_issue(line) {
            if !self.pending_core.iter().any(|&(l, _)| l == line) {
                self.pending_core.push_back((line, kind));
            }
            return;
        }
        self.issue(now, line, kind, fx);
    }

    /// The In-Progress Transaction Restriction (§3.2) plus MSHR limits.
    /// A starving node bypasses the IPTR for its starved line (§5.2).
    fn can_issue(&self, line: LineAddr) -> bool {
        if self.outstanding.contains(line) {
            return false;
        }
        if self.outstanding.is_full() {
            return false;
        }
        if self.ltt.line_busy(line) && self.starving != Some(line) {
            return false;
        }
        true
    }

    fn issue(&mut self, now: Cycle, line: LineAddr, kind: TxnKind, fx: &mut Vec<Effect>) {
        let info = self.retry_info.get(&line).copied();
        let (kind, retries, first_issued_at) = match info {
            Some(i) => (i.kind, i.count, i.first_issued_at),
            None => (kind, 0, now),
        };
        // A store's kind freezes when it is parked (`pending_core`,
        // `retry_info`): a snoop can invalidate the copy before the
        // request finally issues. A WriteHit without a valid copy would
        // ride the ring claiming it needs no data, so suppliers would
        // answer ownership-only — re-derive the honest kind here.
        let kind = if kind == TxnKind::WriteHit && !self.l2.state(line).is_valid() {
            TxnKind::WriteMiss
        } else {
            kind
        };
        self.serial += 1;
        let txn = TxnId {
            node: self.node,
            serial: self.serial,
        };
        let priority = if self.cfg.winner_node_id_only {
            // Ablation: node-id-only priority (paper §3.3.2's "unfair,
            // but it never ties" strawman).
            Priority::new(TxnKind::Read, 0, self.node)
        } else {
            Priority::new(kind, self.rng.next_u64() as u32, self.node)
        };
        let req = RequestMsg {
            txn,
            line,
            kind,
            priority,
        };
        tev!(
            self,
            now,
            txn,
            line,
            TraceKind::RequestIssue {
                op: op_class(kind),
                retry: retries > 0,
            }
        );
        let mut tx = OwnTx {
            txn,
            kind,
            priority,
            first_issued_at,
            retries,
            suppliership: None,
            own_resp: None,
            committed: false,
            lost: false,
            colliders: BTreeMap::new(),
            must_invalidate: false,
            doomed: false,
            copy_lost: false,
            sharers_seen: false,
            prefetch_issued: false,
            mem_waiting: false,
        };
        // Adopt every foreign transaction already in flight at this node
        // as a collider. The In-Progress Transaction Restriction normally
        // prevents issuing while one is pending, but the §5.2 starvation
        // path legitimately bypasses it — and the new transaction must
        // still serialize against (and, if it wins, squash) those
        // transactions.
        if let Some(entry) = self.ltt.entry(line) {
            for slot in entry.slots() {
                if slot.txn.node == self.node {
                    continue;
                }
                let info = slot
                    .request
                    .map(|r| (r.priority, r.kind))
                    .or_else(|| slot.response.map(|r| (r.priority, r.kind)));
                if let Some((priority, fkind)) = info {
                    tx.colliders.insert(
                        slot.txn,
                        Collider {
                            priority,
                            kind: fkind,
                            response_seen: slot.response.is_some(),
                        },
                    );
                    if fkind.is_write() {
                        tx.must_invalidate = true;
                    }
                }
            }
        }
        // §5.4 prefetch: reads only, Uncorq+Pref only.
        if self.cfg.prefetch && kind == TxnKind::Read && self.npp.should_prefetch(line) {
            tx.prefetch_issued = true;
            self.stats.prefetches_issued += 1;
            tev!(self, now, txn, line, TraceKind::MemFetch { prefetch: true });
            fx.push(Effect::MemFetch {
                line,
                prefetch: true,
            });
        }
        if self.outstanding.allocate(line, tx).is_err() {
            // can_issue() already checked capacity and the IPTR, so an
            // allocation failure here means the agent's own bookkeeping
            // is corrupt (e.g. a duplicated delivery re-entered issue).
            // Surface it through the trace layer instead of crashing.
            self.protocol_error(now, txn, line, ErrorClass::MshrOverflow);
            return;
        }
        if retries == 0 {
            self.stats.issued += 1;
        }
        // Request delivery: multicast for Uncorq reads, ring otherwise.
        if kind == TxnKind::Read && self.cfg.kind.multicast_reads() {
            fx.push(Effect::MulticastRequest(req));
        } else {
            fx.push(Effect::RingSend {
                msg: RingMsg::Request(req),
                delay: 0,
            });
        }
        // The response follows on the ring.
        fx.push(Effect::RingSend {
            msg: RingMsg::Response(ResponseMsg::initial(&req)),
            delay: 0,
        });
        // A starving Eager node releases held foreign requests behind its
        // own (§5.2.1).
        if self.starving == Some(line) && !self.held_requests.is_empty() {
            for held in std::mem::take(&mut self.held_requests) {
                fx.push(Effect::RingSend {
                    msg: RingMsg::Request(held),
                    delay: 0,
                });
            }
        }
    }

    fn retry_now(&mut self, now: Cycle, line: LineAddr, fx: &mut Vec<Effect>) {
        if self.outstanding.contains(line) {
            // Already re-issued (starvation interception fast path).
            return;
        }
        let Some(info) = self.retry_info.get(&line).copied() else {
            return; // completed meanwhile
        };
        if self.can_issue(line) {
            self.issue(now, line, info.kind, fx);
        } else if !self.pending_core.iter().any(|&(l, _)| l == line) {
            self.pending_core.push_back((line, info.kind));
        }
    }

    fn drain_pending_core(&mut self, now: Cycle, fx: &mut Vec<Effect>) {
        let mut remaining = VecDeque::new();
        while let Some((line, kind)) = self.pending_core.pop_front() {
            if self.can_issue(line) {
                self.issue(now, line, kind, fx);
            } else {
                remaining.push_back((line, kind));
            }
        }
        self.pending_core = remaining;
    }

    // ------------------------------------------------------------------
    // Request arrival
    // ------------------------------------------------------------------

    fn ring_request(&mut self, now: Cycle, req: RequestMsg, fx: &mut Vec<Effect>) {
        tev!(
            self,
            now,
            req.txn,
            req.line,
            TraceKind::RingRecv {
                payload: Payload::Request {
                    op: op_class(req.kind),
                },
            }
        );
        if req.requester() == self.node {
            // Own request completed its lap; consumed silently.
            return;
        }
        self.npp.observe(req.line);
        // Starvation interception (Eager/ring delivery, §5.2.1): hold the
        // forwarding of conflicting requests; the snoop still proceeds.
        let mut forward = true;
        if self.starving == Some(req.line)
            && !self.outstanding.contains(req.line)
            && self.retry_info.contains_key(&req.line)
        {
            self.held_requests.push(req);
            forward = false;
            // Issue our own request ahead of the held one right now.
            if self.can_issue(req.line) {
                let info = self.retry_info[&req.line];
                self.issue(now, req.line, info.kind, fx);
            }
        }
        match self.cfg.kind {
            ProtocolKind::Eager | ProtocolKind::Uncorq => {
                if forward {
                    fx.push(Effect::RingSend {
                        msg: RingMsg::Request(req),
                        delay: 0,
                    });
                }
                self.accept_request(now, req, fx);
                fx.push(Effect::StartSnoop {
                    txn: req.txn,
                    line: req.line,
                    delay: self.cfg.snoop_latency,
                });
            }
            ProtocolKind::SupersetCon => {
                let hit = self
                    .filter
                    .as_mut()
                    .map(|f| f.query(req.line))
                    .unwrap_or(true);
                self.accept_request(now, req, fx);
                if hit {
                    // Stall the request behind the snoop.
                    if forward {
                        self.forward_on_snoop.insert(req.txn);
                    }
                    fx.push(Effect::StartSnoop {
                        txn: req.txn,
                        line: req.line,
                        delay: self.cfg.filter_latency + self.cfg.snoop_latency,
                    });
                } else {
                    if forward {
                        fx.push(Effect::RingSend {
                            msg: RingMsg::Request(req),
                            delay: self.cfg.filter_latency,
                        });
                    }
                    self.skip_snoop(now, req, fx);
                }
            }
            ProtocolKind::SupersetAgg => {
                let hit = self
                    .filter
                    .as_mut()
                    .map(|f| f.query(req.line))
                    .unwrap_or(true);
                if forward {
                    fx.push(Effect::RingSend {
                        msg: RingMsg::Request(req),
                        delay: self.cfg.filter_latency,
                    });
                }
                self.accept_request(now, req, fx);
                if hit {
                    fx.push(Effect::StartSnoop {
                        txn: req.txn,
                        line: req.line,
                        delay: self.cfg.filter_latency + self.cfg.snoop_latency,
                    });
                } else {
                    self.skip_snoop(now, req, fx);
                }
            }
        }
    }

    fn direct_request(&mut self, now: Cycle, req: RequestMsg, fx: &mut Vec<Effect>) {
        debug_assert_ne!(req.requester(), self.node, "multicast excludes the root");
        self.npp.observe(req.line);
        self.accept_request(now, req, fx);
        fx.push(Effect::StartSnoop {
            txn: req.txn,
            line: req.line,
            delay: self.cfg.snoop_latency,
        });
    }

    /// Common per-request bookkeeping: LTT slot and collision detection.
    fn accept_request(&mut self, now: Cycle, req: RequestMsg, _fx: &mut [Effect]) {
        let fresh = self
            .ltt
            .entry(req.line)
            .and_then(|e| e.slot(req.txn))
            .is_none();
        self.ltt.see_request(req);
        if fresh {
            tev!(
                self,
                now,
                req.txn,
                req.line,
                TraceKind::LttInsert {
                    occupancy: self.ltt.len() as u32,
                }
            );
        }
        if let Some(tx) = self.outstanding.get_mut(req.line) {
            self.stats.collisions += 1;
            tev!(
                self,
                now,
                tx.txn,
                req.line,
                TraceKind::Collision {
                    other_node: req.txn.node.0 as u32,
                    other_serial: req.txn.serial,
                }
            );
            tx.colliders.entry(req.txn).or_insert(Collider {
                priority: req.priority,
                kind: req.kind,
                response_seen: false,
            });
            if req.kind.is_write() {
                tx.must_invalidate = true;
            }
        }
    }

    /// The filter proved absence: complete the "snoop" instantly with a
    /// negative outcome (no tag access, no invalidation needed).
    fn skip_snoop(&mut self, now: Cycle, req: RequestMsg, fx: &mut Vec<Effect>) {
        self.stats.snoops_skipped += 1;
        tev!(self, now, req.txn, req.line, TraceKind::SnoopSkip);
        self.ltt.snoop_complete(req.txn, req.line, false);
        self.drain_responses(now, req.line, fx);
    }

    // ------------------------------------------------------------------
    // Snoop completion
    // ------------------------------------------------------------------

    fn snoop_done(&mut self, now: Cycle, txn: TxnId, line: LineAddr, fx: &mut Vec<Effect>) {
        // SNID reservation (§5.2.2): the new supplier briefly refuses to
        // service nodes other than the reserved starving node.
        if let Some((holder, _)) = self.ltt.reservation(line) {
            if holder != txn.node && !self.ltt.clear_reservation(line, now, false) {
                let budget = self.snoop_delay_budget.entry(txn).or_insert(8);
                if *budget > 0 {
                    *budget -= 1;
                    fx.push(Effect::DelaySnoop {
                        txn,
                        line,
                        delay: 64,
                    });
                    return;
                }
                // Budget exhausted: break the reservation to preserve
                // liveness.
                self.ltt.clear_reservation(line, now, true);
            }
        }
        self.snoop_delay_budget.remove(&txn);
        self.stats.snoops += 1;
        let Some(req) = self
            .ltt
            .entry(line)
            .and_then(|e| e.slot(txn))
            .and_then(|s| s.request)
        else {
            return; // slot vanished (defensive)
        };
        let state = self.l2.state(line);
        let transient = self.outstanding.contains(line);
        // Consult the declarative supplier table — the same artifact the
        // `ring-model` checker proves complete and deterministic — for
        // the snoop outcome, the suppliership, and our copy's next state.
        let snoop_state = SnoopState::classify(state, transient);
        let row = match self.table.lookup(snoop_state, req.kind, &self.cfg) {
            Ok(row) => *row,
            Err(_) => {
                // A hole or ambiguity (only possible with a mutated
                // table): record the error and degrade to a negative
                // snoop so the protocol stays live for the checker.
                self.protocol_error(now, txn, line, ErrorClass::TableMiss);
                tev!(
                    self,
                    now,
                    txn,
                    line,
                    TraceKind::SnoopPerform { positive: false }
                );
                self.ltt.snoop_complete(txn, line, false);
                if self.forward_on_snoop.remove(&txn) {
                    fx.push(Effect::RingSend {
                        msg: RingMsg::Request(req),
                        delay: 0,
                    });
                }
                self.drain_responses(now, line, fx);
                return;
            }
        };
        let positive = row.positive;
        tev!(self, now, txn, line, TraceKind::SnoopPerform { positive });
        if let Some(supply) = row.supply {
            tev!(
                self,
                now,
                txn,
                line,
                TraceKind::Suppliership {
                    to: req.requester().0 as u32,
                    with_data: supply.with_data,
                }
            );
            fx.push(Effect::SendSupplier {
                to: req.requester(),
                msg: SupplierMsg {
                    txn,
                    line,
                    with_data: supply.with_data,
                    new_state: supply.requester_state,
                },
            });
            self.stats.supplierships_sent += 1;
        }
        match row.next_state {
            Some(LineState::Invalid) => {
                self.l2.invalidate(line);
                if let Some(f) = self.filter.as_mut() {
                    f.remove(line);
                }
                fx.push(Effect::L1Invalidate { line });
            }
            Some(next) => {
                self.l2.set_state(line, next);
            }
            None => {}
        }
        self.ltt.snoop_complete(txn, line, positive);
        if self.forward_on_snoop.remove(&txn) {
            fx.push(Effect::RingSend {
                msg: RingMsg::Request(req),
                delay: 0,
            });
        }
        self.drain_responses(now, line, fx);
    }

    // ------------------------------------------------------------------
    // Response arrival and forwarding
    // ------------------------------------------------------------------

    fn response_arrival(&mut self, now: Cycle, resp: ResponseMsg, fx: &mut Vec<Effect>) {
        tev!(
            self,
            now,
            resp.txn,
            resp.line,
            TraceKind::RingRecv {
                payload: Payload::Response {
                    positive: resp.positive,
                    squashed: resp.squashed,
                    loser_hint: resp.loser_hint,
                    outcomes: resp.outcomes,
                },
            }
        );
        self.npp.observe(resp.line);
        if resp.requester() == self.node {
            self.own_response(now, resp, fx);
            return;
        }
        // Collision bookkeeping against an own outstanding transaction.
        let mut cancel_memory_path = false;
        if let Some(tx) = self.outstanding.get_mut(resp.line) {
            let fresh_collider = !tx.colliders.contains_key(&resp.txn);
            if fresh_collider {
                self.stats.collisions += 1;
                tev!(
                    self,
                    now,
                    tx.txn,
                    resp.line,
                    TraceKind::Collision {
                        other_node: resp.txn.node.0 as u32,
                        other_serial: resp.txn.serial,
                    }
                );
            }
            let collider = tx.colliders.entry(resp.txn).or_insert(Collider {
                priority: resp.priority,
                kind: resp.kind,
                response_seen: false,
            });
            collider.response_seen = true;
            if resp.positive {
                tx.lost = true;
                // A passing positive response proves a live supplier epoch
                // this transaction's own lap missed (a suppliership chain
                // in motion). If we have committed to a memory fill but
                // the data has not arrived, nothing is bound yet (§5.3),
                // so the commit is revocable: cancel and retry rather than
                // install a second supplier copy from stale memory.
                if tx.mem_waiting {
                    cancel_memory_path = true;
                }
            }
        }
        if cancel_memory_path {
            self.fail_txn(now, resp.line, fx);
        }
        let fresh_slot = self
            .ltt
            .entry(resp.line)
            .and_then(|e| e.slot(resp.txn))
            .is_none();
        let stalled = self.ltt.see_response(resp);
        if fresh_slot {
            tev!(
                self,
                now,
                resp.txn,
                resp.line,
                TraceKind::LttInsert {
                    occupancy: self.ltt.len() as u32,
                }
            );
        }
        if stalled {
            tev!(self, now, resp.txn, resp.line, TraceKind::LttStall);
        }
        // An own transaction deferring its decision may now be decidable.
        // Deciding BEFORE draining is essential: if this response was the
        // last unseen collider and our transaction wins, completing first
        // places the loser in the squash set while its response is still
        // buffered — so the very response that decided us carries the
        // squash mark back to its owner (Table 1's natural-serialization
        // squash). Draining first would forward it clean and let the
        // loser double-commit from memory.
        self.try_decide(now, resp.line, fx);
        self.drain_responses(now, resp.line, fx);
    }

    /// Forwards every response the LTT says is ready, combining outcomes
    /// and applying serialization marks.
    fn drain_responses(&mut self, now: Cycle, line: LineAddr, fx: &mut Vec<Effect>) {
        // Nothing in the drain loop changes the L2, so one probe (taken
        // lazily — most calls drain nothing) serves every response.
        let mut shared_copy = None;
        loop {
            let Some(txn) = self.ltt.entry(line).and_then(LttEntry::first_ready) else {
                return;
            };
            let Some(slot) = self.ltt.take(line, txn) else {
                // entry().ready() just reported this slot; its absence
                // means LTT state was corrupted mid-drain.
                self.protocol_error(now, txn, line, ErrorClass::LttSlotMissing);
                return;
            };
            tev!(
                self,
                now,
                txn,
                line,
                TraceKind::LttRemove {
                    occupancy: self.ltt.len() as u32,
                }
            );
            let Some(mut combined) = slot.response else {
                // ready() requires a buffered response; drop the slot and
                // surface the inconsistency rather than crash.
                self.protocol_error(now, txn, line, ErrorClass::LttResponseMissing);
                return;
            };
            // Combine the local snoop outcome.
            combined.outcomes += 1;
            if slot.snoop_done && slot.snoop_positive {
                combined.positive = true;
            }
            let shared =
                *shared_copy.get_or_insert_with(|| self.l2.state(line) == LineState::Shared);
            if shared {
                combined.sharers = true;
            }
            self.apply_marks(line, &mut combined);
            // SNID stamping by a starving node (§5.2.2).
            if self.starving == Some(line) && combined.requester() != self.node {
                combined.snid = Some(self.node);
            }
            fx.push(Effect::RingSend {
                msg: RingMsg::Response(combined),
                delay: 0,
            });
        }
    }

    /// Applies squash and Loser Hint marks to a combined response about
    /// to be forwarded.
    fn apply_marks(&mut self, line: LineAddr, resp: &mut ResponseMsg) {
        if resp.positive {
            return; // positives are never marked
        }
        // Squash set: transactions our completed transaction overlapped.
        if let Some(set) = self.squash_set.get_mut(&line) {
            if set.remove(&resp.txn) {
                resp.squashed = true;
                self.stats.squash_marks += 1;
                if set.is_empty() {
                    self.squash_set.remove(&line);
                }
                return;
            }
        }
        let keep_supplier_reads = self.cfg.reads_keep_supplier;
        let Some(tx) = self.outstanding.get_mut(line) else {
            return;
        };
        if tx.doomed {
            // A doomed attempt is the serialization point of in-flight
            // current data: a supplier has already demoted itself and
            // shipped us the line (the positive proves it), but nothing is
            // bound and memory may be stale until the transfer lands and
            // is flushed. Any response passing now combined its outcomes
            // after that demotion — a clean negative here could send a
            // third party to stale memory — so every passer retries.
            resp.squashed = true;
            self.stats.squash_marks += 1;
            return;
        }
        if tx.committed || tx.suppliership.is_some() {
            // We are the already-committed winner — either our own positive
            // response arrived, or the suppliership did (the transaction is
            // bound and cannot be undone, §5.3). Our win is serialized
            // before the passing transaction at the supplier, so the
            // passing loser must retry (the natural-serialization squash of
            // Tables 1/2) — but only when the win actually staled the
            // passing response's collected outcomes. A squash now dominates
            // even a downstream positive, so it must be precise:
            //  * our win is an invalidating write — every outcome collected
            //    before our completion is stale;
            //  * the passer is a write — it must come back to invalidate
            //    the copy our win installs (complete_txn defers
            //    must_invalidate to exactly this squash-retry);
            //  * our read win moved the suppliership to us — the passing
            //    response may have crossed the ring during the
            //    no-supplier window and combined a false clean negative.
            // A read win that leaves the designation in place (§5.5
            // keep-supplier) perturbs nothing a passing read relies on:
            // the still-designated supplier services it, so it rides
            // unmarked. Everything else — a bound supplier-class
            // transfer, a memory fill (installs Exclusive/MasterShared),
            // or an unbound base-protocol transfer — makes this node the
            // supplier and opens the moving-supplier window.
            let wins_supplier_state = match tx.suppliership {
                Some(s) => s.new_state.is_supplier(),
                None => tx.mem_waiting || !keep_supplier_reads,
            };
            if tx.kind.is_write() || resp.kind.is_write() || wins_supplier_state {
                resp.squashed = true;
                self.stats.squash_marks += 1;
            }
        } else if !tx.lost && tx.priority.beats(resp.priority) {
            // No winner known yet: pairwise winner selection; hint the
            // loser (the §4.4 Loser Hint). The paper introduces the bit
            // for Uncorq's response reorderings; we apply it in the Eager
            // family too, because with three or more overlapping
            // transactions (plus retries) the paper's symmetric-knowledge
            // argument breaks: a transaction issued in the gap after a
            // collider's messages passed is blind to it, and without the
            // hint both sides can commit to memory. The hint rides an
            // existing message and is ignored when the response later
            // combines positive, so it is always safe.
            resp.loser_hint = true;
            self.stats.loser_hint_marks += 1;
        }
    }

    fn own_response(&mut self, now: Cycle, resp: ResponseMsg, fx: &mut Vec<Effect>) {
        // SNID reservation on suppliership arrival at the new supplier.
        // A squashed positive fails over below, so no reservation: the
        // transfer is being declined, not accepted.
        if resp.positive && !resp.must_retry() {
            if let Some(snid) = resp.snid {
                if snid != self.node {
                    self.ltt
                        .reserve(resp.line, snid, now + self.cfg.reservation_cycles);
                }
            }
        }
        let Some(tx) = self.outstanding.get_mut(resp.line) else {
            return; // stale (transaction already failed over)
        };
        if tx.txn != resp.txn {
            return; // response of a previous, already-retried attempt
        }
        tev!(
            self,
            now,
            resp.txn,
            resp.line,
            TraceKind::ResponseConsume {
                positive: resp.positive,
                squashed: resp.squashed,
                loser_hint: resp.loser_hint,
                outcomes: resp.outcomes,
            }
        );
        tx.own_resp = Some(resp);
        tx.sharers_seen = resp.sharers;
        if resp.must_retry() || (!resp.positive && tx.lost) {
            if resp.positive && tx.suppliership.is_none() {
                // A squashed positive: the positive proves a supplier
                // already sent us a transfer that has not landed yet.
                // Failing over now would let the retry reissue and bind
                // stale memory while the only current copy is still on
                // the wire — park the abort until the transfer arrives
                // (`supplier_arrival` then flushes it and fails over).
                tx.doomed = true;
                return;
            }
            self.fail_txn(now, resp.line, fx);
            return;
        }
        if resp.positive {
            // An ownership-only suppliership is usable only while the
            // local copy still holds current data. If a colliding write
            // compromised the copy (`must_invalidate`/`copy_lost`),
            // completing now would commit the write against stale data —
            // fail instead; the retry invalidates and reissues as a
            // WriteMiss, fetching current data.
            if let Some(sup) = tx.suppliership {
                if !sup.with_data && (tx.must_invalidate || tx.copy_lost) {
                    self.fail_txn(now, resp.line, fx);
                    return;
                }
            }
            tx.committed = true;
            tev!(
                self,
                now,
                resp.txn,
                resp.line,
                TraceKind::WinnerSelected {
                    winner_node: resp.txn.node.0 as u32,
                    winner_serial: resp.txn.serial,
                }
            );
            if tx.suppliership.is_some() {
                self.complete_txn(now, resp.line, true, fx);
            }
            // else: wait for the suppliership already in flight.
            return;
        }
        // Clean negative: no supplier on chip.
        self.try_decide(now, resp.line, fx);
    }

    /// Acts on a clean negative own response once every known collider's
    /// response has been observed (Uncorq defers across the two §4.4
    /// reorderings; with no collision this fires immediately).
    fn try_decide(&mut self, now: Cycle, line: LineAddr, fx: &mut Vec<Effect>) {
        let Some(tx) = self.outstanding.get_mut(line) else {
            return;
        };
        let Some(own) = tx.own_resp else {
            return;
        };
        if own.positive || tx.committed || tx.mem_waiting {
            return;
        }
        if tx.lost {
            self.fail_txn(now, line, fx);
            return;
        }
        if !tx.all_collider_responses_seen() {
            return; // decision deferred
        }
        if !tx.beats_all_colliders() {
            self.fail_txn(now, line, fx);
            return;
        }
        // Winner (or no collision): commit.
        tx.committed = true;
        tev!(
            self,
            now,
            tx.txn,
            line,
            TraceKind::WinnerSelected {
                winner_node: tx.txn.node.0 as u32,
                winner_serial: tx.txn.serial,
            }
        );
        if tx.kind == TxnKind::WriteHit && !tx.copy_lost && self.l2.state(line).is_valid() {
            // Locally cached data + all remote copies invalidated by the
            // completed lap: the store completes without memory.
            self.complete_txn(now, line, true, fx);
            return;
        }
        if tx.kind == TxnKind::WriteHit {
            // Copy lost under us: degrade to a miss-style memory fill.
            tx.kind = TxnKind::WriteMiss;
        }
        tx.mem_waiting = true;
        tev!(
            self,
            now,
            tx.txn,
            line,
            TraceKind::MemFetch { prefetch: false }
        );
        fx.push(Effect::MemFetch {
            line,
            prefetch: false,
        });
    }

    fn mem_data(&mut self, now: Cycle, line: LineAddr, fx: &mut Vec<Effect>) {
        let Some(tx) = self.outstanding.get_mut(line) else {
            return; // prefetch completion for a line no longer waited on
        };
        if !tx.mem_waiting {
            return;
        }
        let state = match tx.kind {
            TxnKind::Read => {
                if tx.sharers_seen {
                    LineState::MasterShared
                } else {
                    LineState::Exclusive
                }
            }
            TxnKind::WriteMiss | TxnKind::WriteHit => LineState::Dirty,
        };
        let kind = tx.kind;
        let txn = tx.txn;
        let latency = now - tx.first_issued_at;
        self.install(now, line, state, fx);
        tev!(
            self,
            now,
            txn,
            line,
            TraceKind::Bound {
                latency,
                c2c: false,
            }
        );
        fx.push(Effect::Bound {
            line,
            kind,
            latency,
            c2c: false,
        });
        self.complete_txn(now, line, false, fx);
    }

    fn supplier_arrival(&mut self, now: Cycle, msg: SupplierMsg, fx: &mut Vec<Effect>) {
        let matched = self
            .outstanding
            .get_mut(msg.line)
            .filter(|tx| tx.txn == msg.txn && tx.suppliership.is_none());
        let Some(tx) = matched else {
            // Suppliership for a transaction that already failed over (a
            // squash consumed before the supply landed, or a previous
            // attempt's supply reaching its retry). The old supplier
            // demoted itself when it sent this message, so a with-data
            // transfer is now the only current copy in the system: flush
            // it to memory so the retry — and every other requester —
            // finds current data there. The line itself is not
            // installed; the retry re-acquires it through the protocol.
            if msg.with_data {
                tev!(self, now, msg.txn, msg.line, TraceKind::Writeback);
                fx.push(Effect::Writeback { line: msg.line });
            }
            return;
        };
        if tx.doomed {
            // The parked abort of a squashed positive: the in-flight
            // transfer has landed. Bind it so `fail_txn` flushes a
            // with-data payload to memory, then fail over.
            tx.suppliership = Some(msg);
            self.fail_txn(now, msg.line, fx);
            return;
        }
        // Same stale-upgrade guard as `own_response`: a committed
        // transaction must not complete an ownership-only transfer onto a
        // compromised copy.
        if !msg.with_data
            && (tx.must_invalidate || tx.copy_lost)
            && tx.own_resp.map(|r| r.positive).unwrap_or(false)
        {
            self.fail_txn(now, msg.line, fx);
            return;
        }
        tx.suppliership = Some(msg);
        let latency = now - tx.first_issued_at;
        tev!(
            self,
            now,
            msg.txn,
            msg.line,
            TraceKind::Bound { latency, c2c: true }
        );
        fx.push(Effect::Bound {
            line: msg.line,
            kind: tx.kind,
            latency,
            c2c: true,
        });
        if tx.own_resp.map(|r| r.positive).unwrap_or(false) {
            self.complete_txn(now, msg.line, true, fx);
        }
    }

    /// Installs a line into the L2, handling filter updates, dirty
    /// writebacks, and eviction of lines with outstanding WriteHits.
    fn install(&mut self, now: Cycle, line: LineAddr, state: LineState, fx: &mut Vec<Effect>) {
        let evicted = self.l2.insert(line, state);
        if let Some(f) = self.filter.as_mut() {
            f.insert(line);
        }
        if let Some(ev) = evicted {
            if let Some(f) = self.filter.as_mut() {
                f.remove(ev.addr);
            }
            fx.push(Effect::L1Invalidate { line: ev.addr });
            if ev.state.is_dirty() {
                // Evictions are not part of any transaction; serial 0 is
                // reserved (real transactions start at 1).
                tev!(
                    self,
                    now,
                    TxnId {
                        node: self.node,
                        serial: 0,
                    },
                    ev.addr,
                    TraceKind::Writeback
                );
                fx.push(Effect::Writeback { line: ev.addr });
            }
            if let Some(victim_tx) = self.outstanding.get_mut(ev.addr) {
                victim_tx.copy_lost = true;
            }
        }
    }

    fn complete_txn(&mut self, now: Cycle, line: LineAddr, c2c: bool, fx: &mut Vec<Effect>) {
        let Some(tx) = self.outstanding.release(line) else {
            return;
        };
        // Install the supplied state (memory fills install in mem_data).
        if let Some(sup) = tx.suppliership {
            self.install(now, line, sup.new_state, fx);
        } else if tx.kind == TxnKind::WriteHit && c2c {
            // Local completion of an invalidating write hit.
            self.l2.set_state(line, LineState::Dirty);
        }
        // Foreign transactions that overlapped ours and whose responses we
        // have not yet forwarded must be squashed when they pass (the
        // natural-serialization squash of Tables 1 and 2) — under the same
        // precision as `apply_marks`: only when our completion staled their
        // collected outcomes (we wrote, or took the suppliership), or the
        // collider is a write that must come back to invalidate the copy
        // we just installed.
        let win_stales_outcomes =
            tx.kind.is_write() || tx.suppliership.is_none_or(|s| s.new_state.is_supplier());
        let unserviced: BTreeSet<TxnId> = tx
            .colliders
            .iter()
            .filter(|(id, c)| {
                !c.response_seen || self.ltt.entry(line).and_then(|e| e.slot(**id)).is_some()
            })
            .filter(|(_, c)| win_stales_outcomes || c.kind.is_write())
            .map(|(id, _)| *id)
            .collect();
        if !unserviced.is_empty() {
            self.squash_set.entry(line).or_default().extend(unserviced);
        }
        self.retry_info.remove(&line);
        if self.starving == Some(line) {
            self.starving = None;
        }
        self.stats.completed += 1;
        if c2c {
            self.stats.completed_c2c += 1;
        }
        let latency = now - tx.first_issued_at;
        tev!(
            self,
            now,
            tx.txn,
            line,
            TraceKind::Complete {
                op: op_class(tx.kind),
                c2c,
                latency,
            }
        );
        fx.push(Effect::Complete {
            line,
            kind: tx.kind,
            c2c,
            retries: tx.retries,
            prefetch_issued: tx.prefetch_issued,
            latency,
        });
    }

    /// Records a recovered protocol-state error: counted in
    /// [`AgentStats::protocol_errors`] and surfaced as a
    /// [`TraceKind::ProtocolError`] event so `tracecheck`/`chaoscheck`
    /// flag the run. These paths replace `expect()`s that a duplicated
    /// or reordered delivery could otherwise have turned into a crash.
    fn protocol_error(&mut self, now: Cycle, txn: TxnId, line: LineAddr, error: ErrorClass) {
        self.stats.protocol_errors += 1;
        tev!(self, now, txn, line, TraceKind::ProtocolError { error });
    }

    fn fail_txn(&mut self, now: Cycle, line: LineAddr, fx: &mut Vec<Effect>) {
        let Some(tx) = self.outstanding.release(line) else {
            return;
        };
        self.stats.retries += 1;
        // A with-data suppliership already bound to the failing attempt
        // is the only current copy (the supplier demoted itself when it
        // sent it): flush it to memory before abandoning the attempt so
        // no write is lost and subsequent memory fills are current.
        if tx.suppliership.is_some_and(|s| s.with_data) {
            tev!(self, now, tx.txn, line, TraceKind::Writeback);
            fx.push(Effect::Writeback { line });
        }
        let mut kind = tx.kind;
        if tx.must_invalidate || tx.copy_lost {
            if self.l2.invalidate(line) {
                if let Some(f) = self.filter.as_mut() {
                    f.remove(line);
                }
                fx.push(Effect::L1Invalidate { line });
            }
            if kind == TxnKind::WriteHit {
                kind = TxnKind::WriteMiss;
            }
        }
        let count = tx.retries + 1;
        self.retry_info.insert(
            line,
            RetryInfo {
                kind,
                count,
                first_issued_at: tx.first_issued_at,
            },
        );
        if count >= self.cfg.starvation_threshold && self.starving.is_none() {
            self.starving = Some(line);
            self.stats.starvation_events += 1;
            tev!(
                self,
                now,
                tx.txn,
                line,
                TraceKind::Starvation {
                    snid: self.node.0 as u32,
                }
            );
        }
        // retry_backoff >= 1 is guaranteed by ProtocolConfig::validate.
        let jitter = self.rng.below(self.cfg.retry_backoff);
        let delay = self.cfg.retry_backoff + jitter;
        tev!(self, now, tx.txn, line, TraceKind::Retry { delay });
        fx.push(Effect::Retry { line, delay });
    }
}

impl ring_snapshot::Snap for AgentStats {
    fn save(&self, w: &mut ring_snapshot::SnapWriter) {
        w.put(&self.issued);
        w.put(&self.completed);
        w.put(&self.completed_c2c);
        w.put(&self.retries);
        w.put(&self.collisions);
        w.put(&self.snoops);
        w.put(&self.snoops_skipped);
        w.put(&self.supplierships_sent);
        w.put(&self.squash_marks);
        w.put(&self.loser_hint_marks);
        w.put(&self.starvation_events);
        w.put(&self.prefetches_issued);
        w.put(&self.protocol_errors);
    }
    fn load(r: &mut ring_snapshot::SnapReader<'_>) -> Result<Self, ring_snapshot::SnapshotError> {
        Ok(AgentStats {
            issued: r.get()?,
            completed: r.get()?,
            completed_c2c: r.get()?,
            retries: r.get()?,
            collisions: r.get()?,
            snoops: r.get()?,
            snoops_skipped: r.get()?,
            supplierships_sent: r.get()?,
            squash_marks: r.get()?,
            loser_hint_marks: r.get()?,
            starvation_events: r.get()?,
            prefetches_issued: r.get()?,
            protocol_errors: r.get()?,
        })
    }
}

impl ring_snapshot::Snap for AgentInput {
    fn save(&self, w: &mut ring_snapshot::SnapWriter) {
        match self {
            AgentInput::CoreRequest { line, kind } => {
                w.put(&0u8);
                w.put(line);
                w.put(kind);
            }
            AgentInput::RingArrival(m) => {
                w.put(&1u8);
                w.put(m);
            }
            AgentInput::DirectRequest(m) => {
                w.put(&2u8);
                w.put(m);
            }
            AgentInput::SnoopDone { txn, line } => {
                w.put(&3u8);
                w.put(txn);
                w.put(line);
            }
            AgentInput::Supplier(m) => {
                w.put(&4u8);
                w.put(m);
            }
            AgentInput::MemData { line } => {
                w.put(&5u8);
                w.put(line);
            }
            AgentInput::RetryNow { line } => {
                w.put(&6u8);
                w.put(line);
            }
        }
    }
    fn load(r: &mut ring_snapshot::SnapReader<'_>) -> Result<Self, ring_snapshot::SnapshotError> {
        Ok(match r.get::<u8>()? {
            0 => AgentInput::CoreRequest {
                line: r.get()?,
                kind: r.get()?,
            },
            1 => AgentInput::RingArrival(r.get()?),
            2 => AgentInput::DirectRequest(r.get()?),
            3 => AgentInput::SnoopDone {
                txn: r.get()?,
                line: r.get()?,
            },
            4 => AgentInput::Supplier(r.get()?),
            5 => AgentInput::MemData { line: r.get()? },
            6 => AgentInput::RetryNow { line: r.get()? },
            other => return Err(r.malformed(format!("AgentInput tag {other}"))),
        })
    }
}

impl ring_snapshot::Snap for Collider {
    fn save(&self, w: &mut ring_snapshot::SnapWriter) {
        w.put(&self.priority);
        w.put(&self.kind);
        w.put(&self.response_seen);
    }
    fn load(r: &mut ring_snapshot::SnapReader<'_>) -> Result<Self, ring_snapshot::SnapshotError> {
        Ok(Collider {
            priority: r.get()?,
            kind: r.get()?,
            response_seen: r.get()?,
        })
    }
}

impl ring_snapshot::Snap for OwnTx {
    fn save(&self, w: &mut ring_snapshot::SnapWriter) {
        w.put(&self.txn);
        w.put(&self.kind);
        w.put(&self.priority);
        w.put(&self.first_issued_at);
        w.put(&self.retries);
        w.put(&self.suppliership);
        w.put(&self.own_resp);
        w.put(&self.committed);
        w.put(&self.lost);
        w.put(&self.colliders);
        w.put(&self.must_invalidate);
        w.put(&self.doomed);
        w.put(&self.copy_lost);
        w.put(&self.sharers_seen);
        w.put(&self.prefetch_issued);
        w.put(&self.mem_waiting);
    }
    fn load(r: &mut ring_snapshot::SnapReader<'_>) -> Result<Self, ring_snapshot::SnapshotError> {
        Ok(OwnTx {
            txn: r.get()?,
            kind: r.get()?,
            priority: r.get()?,
            first_issued_at: r.get()?,
            retries: r.get()?,
            suppliership: r.get()?,
            own_resp: r.get()?,
            committed: r.get()?,
            lost: r.get()?,
            colliders: r.get()?,
            must_invalidate: r.get()?,
            doomed: r.get()?,
            copy_lost: r.get()?,
            sharers_seen: r.get()?,
            prefetch_issued: r.get()?,
            mem_waiting: r.get()?,
        })
    }
}

impl ring_snapshot::Snap for RetryInfo {
    fn save(&self, w: &mut ring_snapshot::SnapWriter) {
        w.put(&self.kind);
        w.put(&self.count);
        w.put(&self.first_issued_at);
    }
    fn load(r: &mut ring_snapshot::SnapReader<'_>) -> Result<Self, ring_snapshot::SnapshotError> {
        Ok(RetryInfo {
            kind: r.get()?,
            count: r.get()?,
            first_issued_at: r.get()?,
        })
    }
}

impl RingAgent {
    /// Serializes the agent's complete protocol state: L2 array, LTT,
    /// presence filter, prefetch predictor, outstanding transactions,
    /// queues, retry/squash bookkeeping, the RNG mid-stream, and the
    /// statistics counters. The supplier table is not stored — every
    /// production agent consults the shared canonical table.
    pub fn snap_save(&self, w: &mut ring_snapshot::SnapWriter) {
        self.l2.snap_save(w);
        self.ltt.snap_save(w);
        match &self.filter {
            None => w.put(&false),
            Some(f) => {
                w.put(&true);
                f.snap_save(w);
            }
        }
        self.npp.snap_save(w);
        self.outstanding.snap_save_with(w, |w, tx| w.put(tx));
        w.put(&self.pending_core);
        w.put(&self.retry_info);
        w.put(&self.squash_set);
        w.put(&self.held_requests);
        w.put(&self.forward_on_snoop);
        w.put(&self.snoop_delay_budget);
        w.put(&self.starving);
        w.put(&self.serial);
        w.put(&self.rng.state());
        w.put(&self.stats);
        w.put(
            &self
                .trace_buf
                .iter()
                .map(|ev| ev.to_jsonl())
                .collect::<Vec<String>>(),
        );
    }

    /// Rebuilds an agent from configuration plus snapshot state.
    pub fn snap_load(
        r: &mut ring_snapshot::SnapReader<'_>,
        node: NodeId,
        cfg: ProtocolConfig,
        l2_cfg: CacheConfig,
    ) -> Result<Self, ring_snapshot::SnapshotError> {
        let mut a = RingAgent::new(node, cfg, l2_cfg, DetRng::seed(0));
        a.l2 = CacheArray::snap_load(r, l2_cfg)?;
        a.ltt = Ltt::snap_load(r, cfg.ltt)?;
        let has_filter: bool = r.get()?;
        if has_filter != a.filter.is_some() {
            return Err(
                r.malformed("presence-filter presence does not match the protocol configuration")
            );
        }
        if has_filter {
            a.filter = Some(PresenceFilter::snap_load(r)?);
        }
        a.npp = NodePrefetchPredictor::snap_load(r)?;
        a.outstanding = Mshr::snap_load_with(r, |r| r.get::<OwnTx>())?;
        a.pending_core = r.get()?;
        a.retry_info = r.get()?;
        a.squash_set = r.get()?;
        a.held_requests = r.get()?;
        a.forward_on_snoop = r.get()?;
        a.snoop_delay_budget = r.get()?;
        a.starving = r.get()?;
        a.serial = r.get()?;
        a.rng = DetRng::from_state(r.get()?);
        a.stats = r.get()?;
        let trace: Vec<String> = r.get()?;
        a.trace_buf = trace
            .iter()
            .map(|line| {
                TraceEvent::from_jsonl(line).map_err(|e| r.malformed(format!("trace event: {e}")))
            })
            .collect::<Result<Vec<TraceEvent>, _>>()?;
        Ok(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::RingMsg;

    const LINE: u64 = 0x40;

    fn line() -> LineAddr {
        LineAddr::new(LINE)
    }

    fn agent(kind: ProtocolKind) -> RingAgent {
        RingAgent::new(
            NodeId(3),
            ProtocolConfig::paper(kind),
            CacheConfig::l2_512k(),
            DetRng::seed(9),
        )
    }

    fn foreign_req(node: usize, serial: u64, kind: TxnKind) -> RequestMsg {
        RequestMsg {
            txn: TxnId {
                node: NodeId(node),
                serial,
            },
            line: line(),
            kind,
            priority: Priority::new(kind, 1, NodeId(node)),
        }
    }

    fn own_request(fx: &[Effect]) -> RequestMsg {
        fx.iter()
            .find_map(|e| match e {
                Effect::RingSend {
                    msg: RingMsg::Request(r),
                    ..
                } => Some(*r),
                Effect::MulticastRequest(r) => Some(*r),
                _ => None,
            })
            .expect("request issued")
    }

    #[test]
    fn read_issue_effects_eager_vs_uncorq() {
        // Eager: R and r- both ride the ring.
        let mut e = agent(ProtocolKind::Eager);
        let fx = e.handle(
            0,
            AgentInput::CoreRequest {
                line: line(),
                kind: TxnKind::Read,
            },
        );
        assert!(fx.iter().any(|x| matches!(
            x,
            Effect::RingSend {
                msg: RingMsg::Request(_),
                ..
            }
        )));
        assert!(!fx.iter().any(|x| matches!(x, Effect::MulticastRequest(_))));
        // Uncorq: the read R is multicast.
        let mut u = agent(ProtocolKind::Uncorq);
        let fx = u.handle(
            0,
            AgentInput::CoreRequest {
                line: line(),
                kind: TxnKind::Read,
            },
        );
        assert!(fx.iter().any(|x| matches!(x, Effect::MulticastRequest(_))));
        // Both put the initial r- on the ring.
        assert!(fx.iter().any(|x| matches!(
            x,
            Effect::RingSend { msg: RingMsg::Response(r), .. } if !r.positive
        )));
    }

    #[test]
    fn uncorq_write_requests_still_use_the_ring() {
        // Paper §6: the improvement applies to reads only.
        let mut u = agent(ProtocolKind::Uncorq);
        u.install_line(line(), LineState::Shared);
        let fx = u.handle(
            0,
            AgentInput::CoreRequest {
                line: line(),
                kind: TxnKind::WriteHit,
            },
        );
        assert!(!fx.iter().any(|x| matches!(x, Effect::MulticastRequest(_))));
        assert!(fx.iter().any(|x| matches!(
            x,
            Effect::RingSend { msg: RingMsg::Request(r), .. } if r.kind == TxnKind::WriteHit
        )));
    }

    #[test]
    fn supplier_snoop_ships_data_and_demotes() {
        let mut a = agent(ProtocolKind::Eager);
        a.install_line(line(), LineState::Exclusive);
        let r = foreign_req(1, 1, TxnKind::Read);
        a.handle(0, AgentInput::RingArrival(RingMsg::Request(r)));
        let fx = a.handle(
            7,
            AgentInput::SnoopDone {
                txn: r.txn,
                line: line(),
            },
        );
        let sup = fx
            .iter()
            .find_map(|e| match e {
                Effect::SendSupplier { to, msg } => Some((*to, *msg)),
                _ => None,
            })
            .expect("suppliership sent");
        assert_eq!(sup.0, NodeId(1));
        assert!(sup.1.with_data);
        assert_eq!(sup.1.new_state, LineState::MasterShared);
        assert_eq!(a.l2().state(line()), LineState::Shared);
        assert_eq!(a.stats().supplierships_sent, 1);
    }

    #[test]
    fn write_snoop_invalidates_and_notifies_l1() {
        let mut a = agent(ProtocolKind::Eager);
        a.install_line(line(), LineState::Shared);
        let r = foreign_req(1, 1, TxnKind::WriteMiss);
        a.handle(0, AgentInput::RingArrival(RingMsg::Request(r)));
        let fx = a.handle(
            7,
            AgentInput::SnoopDone {
                txn: r.txn,
                line: line(),
            },
        );
        assert_eq!(a.l2().state(line()), LineState::Invalid);
        assert!(fx.iter().any(|e| matches!(e, Effect::L1Invalidate { .. })));
        assert!(!fx.iter().any(|e| matches!(e, Effect::SendSupplier { .. })));
    }

    #[test]
    fn prefetch_issued_only_for_unseen_reads() {
        let mut cfg = ProtocolConfig::uncorq_pref();
        cfg.npp_entries = 16;
        let mut a = RingAgent::new(NodeId(3), cfg, CacheConfig::l2_512k(), DetRng::seed(9));
        // Unseen address: prefetch fires.
        let fx = a.handle(
            0,
            AgentInput::CoreRequest {
                line: line(),
                kind: TxnKind::Read,
            },
        );
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::MemFetch { prefetch: true, .. })));
        // An address observed in ring traffic: no prefetch.
        let other = LineAddr::new(0x80);
        let r = RequestMsg {
            txn: TxnId {
                node: NodeId(1),
                serial: 1,
            },
            line: other,
            kind: TxnKind::Read,
            priority: Priority::new(TxnKind::Read, 0, NodeId(1)),
        };
        a.handle(5, AgentInput::DirectRequest(r));
        let fx = a.handle(
            10,
            AgentInput::CoreRequest {
                line: other,
                kind: TxnKind::Read,
            },
        );
        assert!(!fx
            .iter()
            .any(|e| matches!(e, Effect::MemFetch { prefetch: true, .. })));
        assert_eq!(a.stats().prefetches_issued, 1);
    }

    #[test]
    fn filter_negative_skips_snoop_superset_con() {
        let mut a = agent(ProtocolKind::SupersetCon);
        // Empty cache -> filter negative -> no StartSnoop, R forwarded
        // after the filter latency, and the snoop is logged as skipped.
        let r = foreign_req(1, 1, TxnKind::Read);
        let fx = a.handle(0, AgentInput::RingArrival(RingMsg::Request(r)));
        assert!(!fx.iter().any(|e| matches!(e, Effect::StartSnoop { .. })));
        assert!(fx.iter().any(|e| matches!(
            e,
            Effect::RingSend { msg: RingMsg::Request(_), delay } if *delay == a.config().filter_latency
        )));
        assert_eq!(a.stats().snoops_skipped, 1);
    }

    #[test]
    fn filter_positive_stalls_request_behind_snoop_superset_con() {
        let mut a = agent(ProtocolKind::SupersetCon);
        a.install_line(line(), LineState::Exclusive);
        let r = foreign_req(1, 1, TxnKind::Read);
        let fx = a.handle(0, AgentInput::RingArrival(RingMsg::Request(r)));
        // Not forwarded yet: stalled behind the snoop.
        assert!(!fx.iter().any(|e| matches!(
            e,
            Effect::RingSend {
                msg: RingMsg::Request(_),
                ..
            }
        )));
        let delay = fx
            .iter()
            .find_map(|e| match e {
                Effect::StartSnoop { delay, .. } => Some(*delay),
                _ => None,
            })
            .expect("snoop scheduled");
        assert_eq!(delay, a.config().filter_latency + a.config().snoop_latency);
        // The request forwards when the snoop completes.
        let fx = a.handle(
            delay,
            AgentInput::SnoopDone {
                txn: r.txn,
                line: line(),
            },
        );
        assert!(fx.iter().any(|e| matches!(
            e,
            Effect::RingSend {
                msg: RingMsg::Request(_),
                ..
            }
        )));
    }

    #[test]
    fn superset_agg_forwards_and_snoops_in_parallel() {
        let mut a = agent(ProtocolKind::SupersetAgg);
        a.install_line(line(), LineState::Exclusive);
        let r = foreign_req(1, 1, TxnKind::Read);
        let fx = a.handle(0, AgentInput::RingArrival(RingMsg::Request(r)));
        assert!(fx.iter().any(|e| matches!(
            e,
            Effect::RingSend { msg: RingMsg::Request(_), delay } if *delay == a.config().filter_latency
        )));
        assert!(fx.iter().any(|e| matches!(e, Effect::StartSnoop { .. })));
    }

    #[test]
    fn snid_reservation_defers_other_suppliership() {
        let mut a = agent(ProtocolKind::Uncorq);
        a.install_line(line(), LineState::Shared);
        // A's own WriteHit wins; its returning r+ carries an SNID.
        let fx = a.handle(
            0,
            AgentInput::CoreRequest {
                line: line(),
                kind: TxnKind::WriteHit,
            },
        );
        let own = own_request(&fx);
        a.handle(
            10,
            AgentInput::Supplier(SupplierMsg {
                txn: own.txn,
                line: line(),
                with_data: false,
                new_state: LineState::Dirty,
            }),
        );
        let mut rplus = ResponseMsg::initial(&own);
        rplus.positive = true;
        rplus.snid = Some(NodeId(9)); // node 9 is starving
        a.handle(600, AgentInput::RingArrival(RingMsg::Response(rplus)));
        assert_eq!(a.ltt().reservation(line()).map(|(n, _)| n), Some(NodeId(9)));
        // A request from a non-starving node is deferred...
        let other = foreign_req(1, 1, TxnKind::Read);
        a.handle(610, AgentInput::DirectRequest(other));
        let fx = a.handle(
            617,
            AgentInput::SnoopDone {
                txn: other.txn,
                line: line(),
            },
        );
        assert!(fx.iter().any(|e| matches!(e, Effect::DelaySnoop { .. })));
        assert!(!fx.iter().any(|e| matches!(e, Effect::SendSupplier { .. })));
        // ...while the starving node is serviced immediately.
        let starved = foreign_req(9, 1, TxnKind::Read);
        a.handle(620, AgentInput::DirectRequest(starved));
        let fx = a.handle(
            627,
            AgentInput::SnoopDone {
                txn: starved.txn,
                line: line(),
            },
        );
        assert!(fx.iter().any(|e| matches!(
            e,
            Effect::SendSupplier { to, .. } if *to == NodeId(9)
        )));
        assert_eq!(a.ltt().reservation(line()), None, "reservation consumed");
    }

    #[test]
    fn starving_node_stamps_snid_on_passing_responses() {
        let mut a = agent(ProtocolKind::Uncorq);
        // Drive the agent into starvation via repeated squashes: issue
        // once, then squash each reissued attempt.
        let mut retries = 0;
        let mut fx = a.handle(
            0,
            AgentInput::CoreRequest {
                line: line(),
                kind: TxnKind::Read,
            },
        );
        for i in 1..=5u64 {
            let own = own_request(&fx);
            let mut squashed = ResponseMsg::initial(&own);
            squashed.squashed = true;
            let out = a.handle(
                i * 1000 + 500,
                AgentInput::RingArrival(RingMsg::Response(squashed)),
            );
            if out.iter().any(|e| matches!(e, Effect::Retry { .. })) {
                retries += 1;
            }
            fx = a.handle(i * 1000 + 600, AgentInput::RetryNow { line: line() });
        }
        assert!(retries >= 4);
        assert!(
            a.stats().starvation_events >= 1,
            "agent must declare starvation"
        );
        // A foreign response passing through now gets stamped.
        let foreign = foreign_req(1, 7, TxnKind::Read);
        a.handle(10_000, AgentInput::DirectRequest(foreign));
        a.handle(
            10_007,
            AgentInput::SnoopDone {
                txn: foreign.txn,
                line: line(),
            },
        );
        let fx = a.handle(
            10_010,
            AgentInput::RingArrival(RingMsg::Response(ResponseMsg::initial(&foreign))),
        );
        let stamped = fx
            .iter()
            .find_map(|e| match e {
                Effect::RingSend {
                    msg: RingMsg::Response(r),
                    ..
                } => Some(*r),
                _ => None,
            })
            .expect("response forwarded");
        assert_eq!(stamped.snid, Some(NodeId(3)), "starving node stamps its id");
    }

    #[test]
    fn retry_backoff_grows_from_config() {
        let mut a = agent(ProtocolKind::Eager);
        let fx = a.handle(
            0,
            AgentInput::CoreRequest {
                line: line(),
                kind: TxnKind::Read,
            },
        );
        let own = own_request(&fx);
        let mut squashed = ResponseMsg::initial(&own);
        squashed.squashed = true;
        let fx = a.handle(500, AgentInput::RingArrival(RingMsg::Response(squashed)));
        let delay = fx
            .iter()
            .find_map(|e| match e {
                Effect::Retry { delay, .. } => Some(*delay),
                _ => None,
            })
            .expect("retry scheduled");
        let base = a.config().retry_backoff;
        assert!(delay >= base && delay < base * 2);
    }

    #[test]
    fn mshr_full_defers_core_requests() {
        let mut cfg = ProtocolConfig::paper(ProtocolKind::Eager);
        cfg.max_outstanding = 1;
        let mut a = RingAgent::new(NodeId(3), cfg, CacheConfig::l2_512k(), DetRng::seed(9));
        a.handle(
            0,
            AgentInput::CoreRequest {
                line: line(),
                kind: TxnKind::Read,
            },
        );
        let other = LineAddr::new(0x80);
        let fx = a.handle(
            1,
            AgentInput::CoreRequest {
                line: other,
                kind: TxnKind::Read,
            },
        );
        assert!(
            !fx.iter().any(|e| matches!(
                e,
                Effect::RingSend {
                    msg: RingMsg::Request(_),
                    ..
                }
            )),
            "second request must wait for an MSHR"
        );
        assert!(a.is_line_engaged(other), "deferred line counts as engaged");
    }

    #[test]
    fn sharers_flag_set_when_forwarding_past_shared_copy() {
        let mut a = agent(ProtocolKind::Eager);
        a.install_line(line(), LineState::Shared);
        let r = foreign_req(1, 1, TxnKind::Read);
        a.handle(0, AgentInput::RingArrival(RingMsg::Request(r)));
        a.handle(
            7,
            AgentInput::SnoopDone {
                txn: r.txn,
                line: line(),
            },
        );
        let fx = a.handle(
            10,
            AgentInput::RingArrival(RingMsg::Response(ResponseMsg::initial(&r))),
        );
        let fwd = fx
            .iter()
            .find_map(|e| match e {
                Effect::RingSend {
                    msg: RingMsg::Response(resp),
                    ..
                } => Some(*resp),
                _ => None,
            })
            .expect("forwarded");
        assert!(fwd.sharers, "Shared copy must set the sharers flag");
        assert!(!fwd.positive, "Shared is not a supplier");
        assert_eq!(fwd.outcomes, 1);
    }

    #[test]
    fn memory_fill_state_depends_on_sharers() {
        for (sharers, expect) in [
            (false, LineState::Exclusive),
            (true, LineState::MasterShared),
        ] {
            let mut a = agent(ProtocolKind::Eager);
            let fx = a.handle(
                0,
                AgentInput::CoreRequest {
                    line: line(),
                    kind: TxnKind::Read,
                },
            );
            let own = own_request(&fx);
            let mut rminus = ResponseMsg::initial(&own);
            rminus.sharers = sharers;
            a.handle(600, AgentInput::RingArrival(RingMsg::Response(rminus)));
            let fx = a.handle(830, AgentInput::MemData { line: line() });
            assert!(fx
                .iter()
                .any(|e| matches!(e, Effect::Complete { c2c: false, .. })));
            assert_eq!(a.l2().state(line()), expect);
        }
    }
}
