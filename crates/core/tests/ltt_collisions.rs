//! Deterministic LTT collision and winner-selection edge cases.
//!
//! The property tests in `proptest_ltt.rs` sweep arbitrary interleavings;
//! these tests pin the specific collision orderings the Ordering
//! invariant's mechanisms exist for (§4.3 mechanisms 1 and 2), plus the
//! §3.3.2 winner-selection hierarchy, so a regression reports the exact
//! broken rule rather than a shrunken counterexample.

use ring_cache::LineAddr;
use ring_coherence::{Ltt, LttConfig, Priority, RequestMsg, ResponseMsg, TxnId, TxnKind};
use ring_noc::NodeId;

fn line() -> LineAddr {
    LineAddr::new(0x140)
}

fn txn(node: usize) -> TxnId {
    TxnId {
        node: NodeId(node),
        serial: 1,
    }
}

fn req(node: usize, kind: TxnKind) -> RequestMsg {
    RequestMsg {
        txn: txn(node),
        line: line(),
        kind,
        priority: Priority::new(kind, node as u32, NodeId(node)),
    }
}

fn resp(node: usize, kind: TxnKind, positive: bool) -> ResponseMsg {
    let mut r = ResponseMsg::initial(&req(node, kind));
    r.positive = positive;
    r
}

/// Mechanism 1: after the supplier answers a winning snoop, the winner's
/// response drains before any colliding response that was already
/// buffered — even one that arrived first.
#[test]
fn supplier_drains_winner_before_earlier_loser() {
    let mut ltt = Ltt::new(LttConfig::default());
    ltt.see_request(req(1, TxnKind::Read));
    ltt.see_request(req(2, TxnKind::Read));
    // The loser's response arrives first and its snoop completes negative.
    assert!(!ltt.see_response(resp(2, TxnKind::Read, false)));
    ltt.snoop_complete(txn(2), line(), false);
    // Our snoop of txn 1 hits: we are the supplier, WID := node 1. The
    // loser, ready a moment ago, is now stalled behind the WID.
    ltt.snoop_complete(txn(1), line(), true);
    assert_eq!(ltt.entry(line()).unwrap().ready(), Vec::<TxnId>::new());
    // The winner's own response is never stalled by its own WID.
    assert!(!ltt.see_response(resp(1, TxnKind::Read, false)));
    // Drain order: winner first, then the formerly stalled loser.
    assert_eq!(ltt.entry(line()).unwrap().ready(), vec![txn(1)]);
    ltt.take(line(), txn(1)).expect("winner slot");
    assert_eq!(ltt.entry(line()).unwrap().ready(), vec![txn(2)]);
}

/// Mechanism 2: a passing positive response sets WID even at a
/// non-supplier node, stalling later negatives until the winner drains.
#[test]
fn passing_positive_stalls_later_negatives() {
    let mut ltt = Ltt::new(LttConfig::default());
    ltt.see_request(req(1, TxnKind::WriteMiss));
    ltt.see_request(req(3, TxnKind::WriteMiss));
    ltt.snoop_complete(txn(1), line(), false);
    ltt.snoop_complete(txn(3), line(), false);
    // Winner 1's positive passes first, then loser 3's negative.
    assert!(!ltt.see_response(resp(1, TxnKind::WriteMiss, true)));
    assert!(ltt.see_response(resp(3, TxnKind::WriteMiss, false)));
    assert_eq!(ltt.entry(line()).unwrap().wid, Some(NodeId(1)));
    assert_eq!(ltt.entry(line()).unwrap().ready(), vec![txn(1)]);
    // Taking the winner clears the WID and releases the loser.
    ltt.take(line(), txn(1)).expect("winner slot");
    assert_eq!(ltt.entry(line()).unwrap().wid, None);
    assert_eq!(ltt.entry(line()).unwrap().ready(), vec![txn(3)]);
}

/// A response buffered before its local snoop finishes (the RV-before-SV
/// stall) only becomes ready once the snoop completes.
#[test]
fn response_waits_for_local_snoop() {
    let mut ltt = Ltt::new(LttConfig::default());
    ltt.see_request(req(2, TxnKind::Read));
    assert!(!ltt.see_response(resp(2, TxnKind::Read, false)));
    assert_eq!(ltt.entry(line()).unwrap().ready(), Vec::<TxnId>::new());
    ltt.snoop_complete(txn(2), line(), false);
    assert_eq!(ltt.entry(line()).unwrap().ready(), vec![txn(2)]);
    let slot = ltt.take(line(), txn(2)).expect("slot");
    assert!(slot.snoop_done && !slot.snoop_positive);
    assert!(!ltt.line_busy(line()));
}

/// Three-way collision: the entry tracks every in-flight transaction in
/// its own slot and losers drain in response-arrival order after the
/// winner.
#[test]
fn three_way_collision_drains_in_arrival_order_after_winner() {
    let mut ltt = Ltt::new(LttConfig::default());
    for n in [1usize, 2, 3] {
        ltt.see_request(req(n, TxnKind::WriteMiss));
        ltt.snoop_complete(txn(n), line(), false);
    }
    assert_eq!(ltt.entry(line()).unwrap().in_flight(), 3);
    // Losers 3 then 2 arrive, then winner 1's positive.
    assert!(!ltt.see_response(resp(3, TxnKind::WriteMiss, false)));
    assert!(!ltt.see_response(resp(2, TxnKind::WriteMiss, false)));
    assert!(!ltt.see_response(resp(1, TxnKind::WriteMiss, true)));
    // While the winner's WID is held, only the winner is ready; the
    // losers then drain in response-arrival order.
    assert_eq!(ltt.entry(line()).unwrap().ready(), vec![txn(1)]);
    ltt.take(line(), txn(1)).expect("winner slot");
    assert_eq!(ltt.entry(line()).unwrap().ready(), vec![txn(3), txn(2)]);
}

/// §3.3.2 winner-selection hierarchy: transaction type outranks the
/// random tiebreak, which outranks the node ID.
#[test]
fn priority_hierarchy_type_then_random_then_node() {
    // Type: an invalidating write hit beats a write miss beats a read,
    // regardless of random draw or node id.
    let wh = Priority::new(TxnKind::WriteHit, 0, NodeId(9));
    let wm = Priority::new(TxnKind::WriteMiss, 100, NodeId(1));
    let rd = Priority::new(TxnKind::Read, 200, NodeId(0));
    assert!(wh.beats(wm) && wm.beats(rd) && wh.beats(rd));
    assert!(!wm.beats(wh) && !rd.beats(wm));
    // Random: same type, higher draw wins regardless of node id.
    let hi = Priority::new(TxnKind::Read, 7, NodeId(0));
    let lo = Priority::new(TxnKind::Read, 3, NodeId(5));
    assert!(hi.beats(lo) && !lo.beats(hi));
    // Node id breaks full ties, so two distinct requesters never tie.
    let a = Priority::new(TxnKind::Read, 7, NodeId(2));
    let b = Priority::new(TxnKind::Read, 7, NodeId(1));
    assert!(a.beats(b) ^ b.beats(a));
    // Selection is a strict total order: nothing beats itself.
    assert!(!a.beats(a));
}

/// Winner selection is deterministic across every pair of distinct
/// transactions: exactly one side of each collision wins.
#[test]
fn every_collision_pair_has_exactly_one_winner() {
    let kinds = [TxnKind::Read, TxnKind::WriteMiss, TxnKind::WriteHit];
    let mut all = Vec::new();
    for &k in &kinds {
        for r in 0..3u32 {
            for n in 0..3usize {
                all.push(Priority::new(k, r, NodeId(n)));
            }
        }
    }
    for (i, &a) in all.iter().enumerate() {
        for &b in &all[i + 1..] {
            assert!(
                a.beats(b) ^ b.beats(a),
                "collision {a:?} vs {b:?} must have exactly one winner"
            );
        }
    }
}
