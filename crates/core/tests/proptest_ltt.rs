//! Property tests of the Local Transaction Table: under arbitrary
//! interleavings of requests, snoops and responses, the Ordering
//! invariant's mechanical consequences must hold — a winner's positive
//! response is never preceded out of the node by a negative response that
//! arrived after it, and nothing is lost or duplicated.

use proptest::prelude::*;
use ring_cache::LineAddr;
use ring_coherence::{Ltt, LttConfig, Priority, RequestMsg, ResponseMsg, TxnId, TxnKind};
use ring_noc::NodeId;
use std::collections::BTreeSet;

#[derive(Debug, Clone, Copy)]
enum LttOp {
    SeeRequest(usize),
    SnoopDone(usize, bool),
    SeeResponse(usize, bool),
}

fn arb_ops(txns: usize) -> impl Strategy<Value = Vec<LttOp>> {
    let op = prop_oneof![
        (0..txns).prop_map(LttOp::SeeRequest),
        (0..txns, any::<bool>()).prop_map(|(t, p)| LttOp::SnoopDone(t, p)),
        (0..txns, any::<bool>()).prop_map(|(t, p)| LttOp::SeeResponse(t, p)),
    ];
    proptest::collection::vec(op, 1..60)
}

fn txn(i: usize) -> TxnId {
    TxnId {
        node: NodeId(i),
        serial: 1,
    }
}

fn req(i: usize) -> RequestMsg {
    RequestMsg {
        txn: txn(i),
        line: LineAddr::new(7),
        kind: TxnKind::Read,
        priority: Priority::new(TxnKind::Read, i as u32, NodeId(i)),
    }
}

fn resp(i: usize, positive: bool) -> ResponseMsg {
    let mut r = ResponseMsg::initial(&req(i));
    r.positive = positive;
    r
}

proptest! {
    /// Drain everything that becomes ready after every step; check:
    /// (1) each transaction's response leaves at most once;
    /// (2) while a WID is pending (positive seen, not yet drained), no
    ///     other transaction's response leaves;
    /// (3) at the end, force-completing all missing pieces drains every
    ///     response (no losses, no deadlock).
    #[test]
    fn drains_exactly_once_and_respects_wid(ops in arb_ops(5)) {
        let line = LineAddr::new(7);
        let mut ltt = Ltt::new(LttConfig::default());
        let mut snooped = [false; 5];
        let mut responded = [false; 5];
        let mut positive = [false; 5];
        let mut drained: BTreeSet<usize> = BTreeSet::new();
        let mut pending_winner: Option<usize> = None;

        let drain = |ltt: &mut Ltt,
                         drained: &mut BTreeSet<usize>,
                         pending_winner: &mut Option<usize>|
         -> Result<(), TestCaseError> {
            loop {
                let Some(t) = ltt.entry(line).and_then(|e| e.ready().first().copied()) else {
                    return Ok(());
                };
                let slot = ltt.take(line, t).expect("ready slot");
                prop_assert!(slot.snoop_done);
                prop_assert!(slot.response.is_some());
                prop_assert!(drained.insert(t.node.0), "double drain of {t}");
                if *pending_winner == Some(t.node.0) {
                    *pending_winner = None;
                }
                // Mechanism check: while a winner is pending, only the
                // winner itself may leave.
                if let Some(w) = *pending_winner {
                    prop_assert_eq!(w, t.node.0, "loser drained before winner");
                }
            }
        };

        for op in &ops {
            match *op {
                LttOp::SeeRequest(i) => {
                    if !drained.contains(&i) {
                        ltt.see_request(req(i));
                    }
                }
                LttOp::SnoopDone(i, pos) => {
                    if !drained.contains(&i) && !snooped[i] {
                        // Environment constraint: a single-supplier
                        // protocol never produces two concurrent winners
                        // for one line — a positive snoop can only occur
                        // while no other winner is undrained.
                        let pos = pos && pending_winner.is_none_or(|w| w == i);
                        ltt.see_request(req(i));
                        ltt.snoop_complete(txn(i), line, pos);
                        snooped[i] = true;
                        if pos {
                            positive[i] = true;
                            pending_winner = Some(i);
                        }
                    }
                }
                LttOp::SeeResponse(i, pos) => {
                    if !drained.contains(&i) && !responded[i] {
                        // Same environment constraint for positive
                        // responses (mechanism 2's trigger).
                        let pos = (pos && pending_winner.is_none_or(|w| w == i))
                            || positive[i];
                        ltt.see_response(resp(i, pos));
                        responded[i] = true;
                        if pos {
                            positive[i] = true;
                            pending_winner = Some(i);
                        }
                    }
                }
            }
            drain(&mut ltt, &mut drained, &mut pending_winner)?;
        }

        // Force-complete everything still in flight; all must drain.
        for i in 0..5 {
            if drained.contains(&i) {
                continue;
            }
            let started = snooped[i] || responded[i];
            if !started {
                continue;
            }
            if !snooped[i] {
                ltt.see_request(req(i));
                ltt.snoop_complete(txn(i), line, false);
                snooped[i] = true;
            }
            if !responded[i] {
                ltt.see_response(resp(i, positive[i]));
                responded[i] = true;
            }
        }
        drain(&mut ltt, &mut drained, &mut pending_winner)?;
        for i in 0..5 {
            if snooped[i] && responded[i] {
                prop_assert!(drained.contains(&i), "txn {i} never drained");
            }
        }
    }
}
