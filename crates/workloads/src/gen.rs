//! The per-core operation stream generator.

use ring_cache::LineAddr;
use ring_cpu::Op;
use ring_sim::DetRng;

use crate::profile::AppProfile;

/// Base line number of the migratory shared pool.
const MIGRATORY_BASE: u64 = 0;
/// Base line number of the read-mostly shared pool (above migratory).
fn read_mostly_base(p: &AppProfile) -> u64 {
    MIGRATORY_BASE + p.shared_lines
}
/// Base line number of the producer-consumer buffers (above both pools).
fn pc_region_base(p: &AppProfile) -> u64 {
    read_mostly_base(p) + p.shared_lines
}
/// Base line number of core `id`'s private region (above all shared
/// regions; leaves room for up to 1024 producer-consumer buffers).
fn private_base(p: &AppProfile, core: usize) -> u64 {
    pc_region_base(p) + 1024 * p.pc_lines_per_core + core as u64 * p.private_lines
}

/// A deterministic, lazily generated operation stream for one core.
///
/// Implements [`Iterator`] over [`Op`]; two generators with the same
/// profile, core id and seed produce identical streams, so every protocol
/// run of an experiment executes exactly the same work.
///
/// # Examples
///
/// ```
/// use ring_workloads::{AppProfile, WorkloadGen};
///
/// let p = AppProfile::by_name("radix").unwrap().scaled(100);
/// let a: Vec<_> = WorkloadGen::new(&p, 3, 64, 7).collect();
/// let b: Vec<_> = WorkloadGen::new(&p, 3, 64, 7).collect();
/// assert_eq!(a, b);
/// assert!(!a.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadGen {
    profile: AppProfile,
    core: usize,
    ncores: usize,
    rng: DetRng,
    emitted_mem: u64,
    /// Queued ops (the generator emits compute + RMW pairs).
    queue: Vec<Op>,
    /// Sequential cursor into the private region.
    private_cursor: u64,
    /// Recently touched private lines for reuse hits.
    recent: [u64; 4],
    /// Next line to produce into this core's PC buffer.
    produce_seq: u64,
    /// Next line to consume from the ring-predecessor's PC buffer.
    consume_seq: u64,
}

impl WorkloadGen {
    /// Creates the stream for `core` (of `ncores`) with the given seed.
    ///
    /// # Panics
    ///
    /// Panics if `core >= ncores`.
    pub fn new(profile: &AppProfile, core: usize, ncores: usize, seed: u64) -> Self {
        assert!(core < ncores, "core id out of range");
        let mut root = DetRng::seed(seed);
        let rng = root.fork(core as u64);
        let base = private_base(profile, core);
        WorkloadGen {
            profile: profile.clone(),
            core,
            ncores,
            rng,
            emitted_mem: 0,
            queue: Vec::new(),
            private_cursor: 0,
            recent: [base; 4],
            produce_seq: 0,
            consume_seq: 0,
        }
    }

    /// Memory operations emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted_mem
    }

    fn gen_slot(&mut self) {
        let p = &self.profile;
        // Fences at synchronization density.
        if self.emitted_mem > 0 && self.emitted_mem.is_multiple_of(p.fence_every) {
            self.queue.push(Op::Fence);
        }
        let compute = self.rng.exp_around(p.compute_mean) as u32;
        if compute > 0 {
            self.queue.push(Op::Compute(compute));
        }
        let r = self.rng.unit();
        if r < p.shared_migratory {
            // Migratory read-modify-write on a random hot line.
            let line = LineAddr::new(MIGRATORY_BASE + self.rng.below(p.shared_lines));
            self.queue.push(Op::Read(line));
            self.queue.push(Op::Write(line));
            self.emitted_mem += 2;
        } else if r < p.shared_migratory + p.shared_read_mostly {
            let line = LineAddr::new(read_mostly_base(p) + self.rng.below(p.shared_lines));
            if self.rng.chance(p.read_mostly_write_fraction) {
                self.queue.push(Op::Write(line));
            } else {
                self.queue.push(Op::Read(line));
            }
            self.emitted_mem += 1;
        } else if r < p.shared_migratory + p.shared_read_mostly + p.shared_producer_consumer {
            // Producer-consumer: alternately produce into this core's
            // buffer and consume the ring-predecessor's freshest lines
            // (dirty cache-to-cache handoffs).
            if self.produce_seq <= self.consume_seq {
                let line = p.pc_base(self.core) + self.produce_seq % p.pc_lines_per_core;
                self.produce_seq += 1;
                self.queue.push(Op::Write(LineAddr::new(line)));
            } else {
                let pred = (self.core + self.ncores - 1) % self.ncores;
                let line = p.pc_base(pred) + self.consume_seq % p.pc_lines_per_core;
                self.consume_seq += 1;
                self.queue.push(Op::Read(LineAddr::new(line)));
            }
            self.emitted_mem += 1;
        } else {
            // Private reference.
            let base = private_base(p, self.core);
            let line = if self.rng.chance(p.private_miss_rate) {
                // Fresh line: a capacity/cold miss to memory.
                self.private_cursor = (self.private_cursor + 1) % p.private_lines;
                let l = base + self.private_cursor;
                let slot = (self.rng.next_u64() % 4) as usize;
                self.recent[slot] = l;
                l
            } else {
                // Re-touch a recent line: an L1 hit.
                self.recent[(self.rng.next_u64() % 4) as usize]
            };
            let line = LineAddr::new(line);
            if self.rng.chance(p.private_write_fraction) {
                self.queue.push(Op::Write(line));
            } else {
                self.queue.push(Op::Read(line));
            }
            self.emitted_mem += 1;
        }
        // FIFO order.
        self.queue.reverse();
    }
}

impl Iterator for WorkloadGen {
    type Item = Op;

    fn next(&mut self) -> Option<Op> {
        if let Some(op) = self.queue.pop() {
            return Some(op);
        }
        if self.emitted_mem >= self.profile.ops_per_core {
            return None;
        }
        self.gen_slot();
        self.queue.pop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn profile() -> AppProfile {
        AppProfile::by_name("fmm").unwrap().scaled(2_000)
    }

    #[test]
    fn deterministic_per_seed_and_core() {
        let p = profile();
        let a: Vec<_> = WorkloadGen::new(&p, 1, 64, 9).collect();
        let b: Vec<_> = WorkloadGen::new(&p, 1, 64, 9).collect();
        let c: Vec<_> = WorkloadGen::new(&p, 2, 64, 9).collect();
        assert_eq!(a, b);
        assert_ne!(a, c, "different cores get different streams");
    }

    #[test]
    fn respects_ops_budget() {
        let p = profile();
        let mem = WorkloadGen::new(&p, 0, 64, 1).filter(Op::is_memory).count() as u64;
        // RMW pairs may overshoot by one.
        assert!(mem >= p.ops_per_core && mem <= p.ops_per_core + 1);
    }

    #[test]
    fn private_regions_are_disjoint() {
        let p = profile();
        let private_start = 2 * p.shared_lines + 1024 * p.pc_lines_per_core;
        let lines = |core: usize| -> HashSet<u64> {
            WorkloadGen::new(&p, core, 64, 1)
                .filter_map(|o| o.line())
                .map(|l| l.raw())
                .filter(|&l| l >= private_start) // private only
                .collect()
        };
        let a = lines(0);
        let b = lines(1);
        assert!(a.is_disjoint(&b));
    }

    #[test]
    fn producer_consumer_buffers_shared_with_ring_neighbor() {
        let p = profile();
        let pc = |core: usize| -> HashSet<u64> {
            WorkloadGen::new(&p, core, 64, 1)
                .filter_map(|o| o.line())
                .map(|l| l.raw())
                .filter(|&l| {
                    l >= 2 * p.shared_lines && l < 2 * p.shared_lines + 1024 * p.pc_lines_per_core
                })
                .collect()
        };
        // Core 1 consumes core 0's buffer: their PC line sets intersect.
        let a = pc(0);
        let b = pc(1);
        assert!(
            !a.is_disjoint(&b),
            "consumer must touch the producer's buffer"
        );
        // Core 0 only touches its own buffer and its predecessor's (63).
        let own = p.pc_base(0);
        let pred = p.pc_base(63);
        for l in &a {
            let in_own = *l >= own && *l < own + p.pc_lines_per_core;
            let in_pred = *l >= pred && *l < pred + p.pc_lines_per_core;
            assert!(in_own || in_pred, "stray PC line {l}");
        }
    }

    #[test]
    fn warm_lines_cover_pools_and_pc_buffers() {
        let p = profile();
        let warm = p.warm_lines(64);
        // Pools + 64 PC buffers.
        assert_eq!(
            warm.len() as u64,
            2 * p.shared_lines + 64 * p.pc_lines_per_core
        );
        // PC buffers are owned by their producing core.
        let base = p.pc_base(5);
        let owner = warm
            .iter()
            .find(|&&(l, _)| l == base)
            .map(|&(_, n)| n)
            .unwrap();
        assert_eq!(owner, 5);
    }

    #[test]
    fn shared_pool_is_shared() {
        let p = profile();
        let shared = |core: usize| -> HashSet<u64> {
            WorkloadGen::new(&p, core, 64, 1)
                .filter_map(|o| o.line())
                .map(|l| l.raw())
                .filter(|&l| l < 2 * p.shared_lines)
                .collect()
        };
        let a = shared(0);
        let b = shared(1);
        assert!(!a.is_disjoint(&b), "cores must touch common shared lines");
    }

    #[test]
    fn contains_fences_and_compute() {
        let p = profile();
        let ops: Vec<_> = WorkloadGen::new(&p, 0, 64, 1).collect();
        assert!(ops.iter().any(|o| matches!(o, Op::Fence)));
        assert!(ops.iter().any(|o| matches!(o, Op::Compute(_))));
        assert!(ops.iter().any(|o| matches!(o, Op::Write(_))));
    }

    #[test]
    fn migratory_refs_are_rmw_pairs() {
        let p = profile();
        let ops: Vec<_> = WorkloadGen::new(&p, 0, 64, 1).collect();
        for w in ops.windows(2) {
            if let (Op::Read(a), Op::Write(b)) = (&w[0], &w[1]) {
                if a.raw() < p.shared_lines {
                    assert_eq!(a, b, "migratory read must pair with its write");
                }
            }
        }
    }

    #[test]
    fn sharing_mix_roughly_matches_profile() {
        let p = AppProfile::by_name("SPECweb").unwrap().scaled(5_000);
        let shared_refs = WorkloadGen::new(&p, 0, 64, 3)
            .filter_map(|o| o.line())
            .filter(|l| l.raw() < 2 * p.shared_lines)
            .count() as f64;
        let total = p.ops_per_core as f64;
        let expect = p.shared_migratory * 2.0 + p.shared_read_mostly;
        let got = shared_refs / total;
        assert!(
            (got - expect).abs() < 0.02,
            "shared ref fraction {got:.3} vs expected {expect:.3}"
        );
    }
}
