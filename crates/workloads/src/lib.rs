//! Synthetic workload generators for the Uncorq reproduction.
//!
//! The paper evaluates 11 SPLASH-2 applications plus SPECjbb 2000 and
//! SPECweb 2005, run through SESC/Simics. Those traces are not
//! reproducible here, so this crate substitutes synthetic per-application
//! generators calibrated to the *published characteristics that drive the
//! paper's results* (see DESIGN.md §3):
//!
//! - the fraction of read misses serviced cache-to-cache (Figure 8(c),
//!   last column) — reproduced by mixing *shared-pool* references (which
//!   miss to another cache) with *private-walk* references (which miss to
//!   memory);
//! - miss intensity and compute density — which set how much of execution
//!   time is exposed miss latency, and hence the execution-time impact in
//!   Figure 9.
//!
//! Sharing idioms modeled: migratory read-modify-write (locks, task
//! queues), read-mostly shared data, and private working sets larger than
//! the L2.
//!
//! # Examples
//!
//! ```
//! use ring_workloads::{AppProfile, WorkloadGen};
//!
//! let fmm = AppProfile::splash2()
//!     .into_iter()
//!     .find(|p| p.name == "fmm")
//!     .unwrap();
//! let mut gen = WorkloadGen::new(&fmm, 0, 64, 42);
//! let first = gen.next();
//! assert!(first.is_some());
//! ```

#![warn(missing_docs)]

mod gen;
mod profile;

pub use gen::WorkloadGen;
pub use profile::AppProfile;
