//! Per-application workload profiles.

use serde::{Deserialize, Serialize};

/// A synthetic application profile.
///
/// The two derived knobs that matter most are set via
/// [`AppProfile::with_targets`]: the target fraction of misses serviced
/// cache-to-cache (`c2c_target`) and the read-miss rate per memory
/// reference (`miss_rate`), both taken from the paper's published
/// characterization (Figure 8(c)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppProfile {
    /// Application name as the paper spells it.
    pub name: String,
    /// Memory operations each core executes.
    pub ops_per_core: u64,
    /// Mean compute cycles between memory references.
    pub compute_mean: f64,
    /// Probability a reference targets the migratory shared pool
    /// (read-modify-write; misses are cache-to-cache).
    pub shared_migratory: f64,
    /// Probability a reference targets the read-mostly shared pool.
    pub shared_read_mostly: f64,
    /// Probability a reference follows the producer-consumer pattern:
    /// each core writes its own buffer, the ring-adjacent core reads it
    /// (dirty cache-to-cache handoffs).
    pub shared_producer_consumer: f64,
    /// Lines in each core's producer-consumer buffer.
    pub pc_lines_per_core: u64,
    /// Lines in each shared pool.
    pub shared_lines: u64,
    /// Probability a *private* reference steps to a fresh line (a miss
    /// that goes to memory); the rest re-touch recent lines (L1 hits).
    pub private_miss_rate: f64,
    /// Probability a fresh private line is written (write-allocate miss).
    pub private_write_fraction: f64,
    /// Lines in each core's private region.
    pub private_lines: u64,
    /// Memory operations between fences (synchronization density).
    pub fence_every: u64,
    /// Fraction of read-mostly-pool references that are writes
    /// (occasional invalidations keep the pool's suppliers moving).
    pub read_mostly_write_fraction: f64,
}

impl AppProfile {
    /// Builds a profile from the two paper-published targets.
    ///
    /// `c2c_target` is the fraction of misses serviced cache-to-cache and
    /// `miss_rate` the (read-)miss probability per memory reference.
    /// Internally: shared references essentially always miss to another
    /// cache, so the migratory share is `miss_rate * c2c_target` and the
    /// private walk supplies the remaining `miss_rate * (1 - c2c_target)`
    /// misses to memory.
    ///
    /// # Panics
    ///
    /// Panics unless `c2c_target` and `miss_rate` are in `(0, 1)`.
    pub fn with_targets(
        name: &str,
        c2c_target: f64,
        miss_rate: f64,
        compute_mean: f64,
        ops_per_core: u64,
    ) -> Self {
        assert!((0.0..1.0).contains(&c2c_target) && c2c_target > 0.0);
        assert!((0.0..1.0).contains(&miss_rate) && miss_rate > 0.0);
        let shared = miss_rate * c2c_target;
        let mem_miss = miss_rate * (1.0 - c2c_target);
        // Split the shared share across the three sharing idioms.
        let shared_migratory = shared * 0.5;
        let shared_producer_consumer = shared * 0.2;
        let shared_read_mostly = shared * 0.3;
        let private_frac = 1.0 - shared_migratory - shared_producer_consumer - shared_read_mostly;
        AppProfile {
            name: name.to_string(),
            ops_per_core,
            compute_mean,
            shared_migratory,
            shared_read_mostly,
            shared_producer_consumer,
            pc_lines_per_core: 64,
            shared_lines: 2048,
            private_miss_rate: (mem_miss / private_frac).min(1.0),
            private_write_fraction: 0.1,
            private_lines: 1 << 20,
            fence_every: 64,
            read_mostly_write_fraction: 0.02,
        }
    }

    /// The 11 SPLASH-2 profiles, calibrated to Figure 8(c): the
    /// cache-to-cache fraction (last column) and a per-app miss intensity
    /// chosen to land execution-time sensitivity in the paper's range.
    pub fn splash2() -> Vec<AppProfile> {
        vec![
            Self::with_targets("barnes", 0.97, 0.050, 20.0, 20_000),
            Self::with_targets("cholesky", 0.90, 0.045, 22.0, 20_000),
            Self::with_targets("fft", 0.54, 0.050, 25.0, 20_000),
            Self::with_targets("fmm", 0.90, 0.050, 20.0, 20_000),
            Self::with_targets("lu", 0.82, 0.040, 25.0, 20_000),
            Self::with_targets("ocean", 0.99, 0.080, 15.0, 20_000),
            Self::with_targets("radiosity", 0.99, 0.050, 18.0, 20_000),
            Self::with_targets("radix", 0.99, 0.070, 15.0, 20_000),
            Self::with_targets("raytrace", 0.95, 0.050, 20.0, 20_000),
            Self::with_targets("water-nsquared", 0.90, 0.040, 25.0, 20_000),
            Self::with_targets("water-spatial", 0.98, 0.045, 20.0, 20_000),
        ]
    }

    /// The two commercial profiles (SPECjbb 2000, SPECweb 2005).
    pub fn commercial() -> Vec<AppProfile> {
        vec![
            Self::with_targets("SPECjbb", 0.72, 0.050, 22.0, 20_000),
            Self::with_targets("SPECweb", 0.32, 0.050, 25.0, 20_000),
        ]
    }

    /// All 13 profiles in the paper's reporting order.
    pub fn all() -> Vec<AppProfile> {
        let mut v = Self::splash2();
        v.extend(Self::commercial());
        v
    }

    /// Looks a profile up by name.
    pub fn by_name(name: &str) -> Option<AppProfile> {
        Self::all().into_iter().find(|p| p.name == name)
    }

    /// Line numbers of both shared pools (migratory + read-mostly), for
    /// machine warm-up: the paper's runs "skip initialization", so the
    /// machine pre-installs these lines round-robin across nodes instead
    /// of charging cold memory misses to the measurement.
    pub fn shared_pool_lines(&self) -> impl Iterator<Item = u64> {
        0..(2 * self.shared_lines)
    }

    /// Warm-up placement for every shared line, as `(line, owner node)`:
    /// pool lines interleave round-robin; each producer-consumer buffer
    /// starts resident at its producing core.
    pub fn warm_lines(&self, nodes: usize) -> Vec<(u64, usize)> {
        let mut v: Vec<(u64, usize)> = self
            .shared_pool_lines()
            .map(|l| (l, (l as usize) % nodes))
            .collect();
        let pc_base = 2 * self.shared_lines;
        for core in 0..nodes {
            for k in 0..self.pc_lines_per_core {
                v.push((pc_base + core as u64 * self.pc_lines_per_core + k, core));
            }
        }
        v
    }

    /// First line of core `core`'s producer-consumer buffer.
    pub fn pc_base(&self, core: usize) -> u64 {
        2 * self.shared_lines + core as u64 * self.pc_lines_per_core
    }

    /// A reduced copy for fast tests: `ops` memory operations per core.
    pub fn scaled(&self, ops: u64) -> AppProfile {
        AppProfile {
            ops_per_core: ops,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_profiles() {
        assert_eq!(AppProfile::all().len(), 13);
        assert_eq!(AppProfile::splash2().len(), 11);
    }

    #[test]
    fn by_name_finds_paper_spellings() {
        for n in ["fmm", "water-nsquared", "SPECweb"] {
            assert!(AppProfile::by_name(n).is_some(), "{n} missing");
        }
        assert!(AppProfile::by_name("does-not-exist").is_none());
    }

    #[test]
    fn shares_sum_below_one() {
        for p in AppProfile::all() {
            assert!(
                p.shared_migratory + p.shared_read_mostly < 1.0,
                "{}",
                p.name
            );
            assert!(p.private_miss_rate <= 1.0);
        }
    }

    #[test]
    fn c2c_ordering_matches_paper() {
        // ocean/radiosity/radix are sharing-heavy; SPECweb is not.
        let ocean = AppProfile::by_name("ocean").unwrap();
        let web = AppProfile::by_name("SPECweb").unwrap();
        let ocean_shared = ocean.shared_migratory + ocean.shared_read_mostly;
        let web_shared = web.shared_migratory + web.shared_read_mostly;
        assert!(ocean_shared > web_shared);
        // And SPECweb walks private memory harder.
        assert!(web.private_miss_rate > ocean.private_miss_rate);
    }

    #[test]
    fn scaled_changes_only_ops() {
        let p = AppProfile::by_name("fft").unwrap();
        let s = p.scaled(100);
        assert_eq!(s.ops_per_core, 100);
        assert_eq!(s.compute_mean, p.compute_mean);
    }

    #[test]
    #[should_panic]
    fn invalid_targets_rejected() {
        let _ = AppProfile::with_targets("bad", 1.5, 0.05, 20.0, 100);
    }
}
