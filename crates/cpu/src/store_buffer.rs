//! The store buffer: release-consistency write tracking.

use ring_cache::LineAddr;
use serde::{Deserialize, Serialize};

/// Tracks stores that have retired from the core but whose coherence
/// transactions have not yet completed.
///
/// Under release consistency (the paper's memory model), stores do not
/// stall the core; only a full buffer or a fence does. Stores to a line
/// already in the buffer merge.
///
/// # Examples
///
/// ```
/// use ring_cpu::StoreBuffer;
/// use ring_cache::LineAddr;
///
/// let mut sb = StoreBuffer::new(2);
/// assert!(sb.push(LineAddr::new(1)));
/// assert!(sb.push(LineAddr::new(1))); // merges
/// assert_eq!(sb.len(), 1);
/// sb.complete(LineAddr::new(1));
/// assert!(sb.is_empty());
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StoreBuffer {
    capacity: usize,
    entries: Vec<LineAddr>,
    merges: u64,
    full_stalls: u64,
}

impl StoreBuffer {
    /// Creates a buffer holding up to `capacity` distinct lines.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "store buffer capacity must be positive");
        StoreBuffer {
            capacity,
            ..Self::default()
        }
    }

    /// Admits a store to `line`. Returns `false` when the buffer is full
    /// (the core must stall); stores to buffered lines always merge.
    pub fn push(&mut self, line: LineAddr) -> bool {
        if self.entries.contains(&line) {
            self.merges += 1;
            return true;
        }
        if self.entries.len() >= self.capacity {
            self.full_stalls += 1;
            return false;
        }
        self.entries.push(line);
        true
    }

    /// Marks the write transaction for `line` complete.
    pub fn complete(&mut self, line: LineAddr) {
        self.entries.retain(|&l| l != line);
    }

    /// Whether `line` has an uncompleted store.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.entries.contains(&line)
    }

    /// Outstanding (distinct-line) stores.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no stores are outstanding (fences may proceed).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the buffer is at capacity.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Stores merged into existing entries.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Rejections due to a full buffer.
    pub fn full_stalls(&self) -> u64 {
        self.full_stalls
    }
}

impl StoreBuffer {
    /// Serializes the buffer: capacity, outstanding lines in insertion
    /// order, and counters.
    pub fn snap_save(&self, w: &mut ring_snapshot::SnapWriter) {
        w.put(&self.capacity);
        w.put(&self.entries);
        w.put(&self.merges);
        w.put(&self.full_stalls);
    }

    /// Rebuilds a buffer from snapshot state.
    pub fn snap_load(
        r: &mut ring_snapshot::SnapReader<'_>,
    ) -> Result<Self, ring_snapshot::SnapshotError> {
        let capacity: usize = r.get()?;
        if capacity == 0 {
            return Err(r.malformed("store buffer capacity must be positive"));
        }
        let entries: Vec<LineAddr> = r.get()?;
        if entries.len() > capacity {
            return Err(r.malformed("store buffer holds more lines than its capacity"));
        }
        let mut sb = StoreBuffer::new(capacity);
        sb.entries = entries;
        sb.merges = r.get()?;
        sb.full_stalls = r.get()?;
        Ok(sb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_complete() {
        let mut sb = StoreBuffer::new(2);
        assert!(sb.push(LineAddr::new(1)));
        assert!(sb.push(LineAddr::new(2)));
        assert!(sb.is_full());
        assert!(!sb.push(LineAddr::new(3)));
        assert_eq!(sb.full_stalls(), 1);
        sb.complete(LineAddr::new(1));
        assert!(sb.push(LineAddr::new(3)));
    }

    #[test]
    fn merge_same_line() {
        let mut sb = StoreBuffer::new(1);
        assert!(sb.push(LineAddr::new(1)));
        assert!(sb.push(LineAddr::new(1)));
        assert_eq!(sb.merges(), 1);
        assert!(sb.contains(LineAddr::new(1)));
    }

    #[test]
    fn complete_unknown_is_noop() {
        let mut sb = StoreBuffer::new(1);
        sb.complete(LineAddr::new(9));
        assert!(sb.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = StoreBuffer::new(0);
    }
}
