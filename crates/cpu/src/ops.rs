//! The dynamic operation stream a core executes.

use ring_cache::LineAddr;
use serde::{Deserialize, Serialize};

/// One dynamic operation of a core's instruction stream, at the
/// granularity the memory system cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Non-memory work: `n` cycles of computation.
    Compute(u32),
    /// A load from the given line.
    Read(LineAddr),
    /// A store to the given line.
    Write(LineAddr),
    /// A memory fence (release/acquire point): stalls until all earlier
    /// stores complete.
    Fence,
}

impl Op {
    /// The line this operation touches, if it is a memory operation.
    pub fn line(&self) -> Option<LineAddr> {
        match self {
            Op::Read(l) | Op::Write(l) => Some(*l),
            _ => None,
        }
    }

    /// Whether this is a memory reference.
    pub fn is_memory(&self) -> bool {
        matches!(self, Op::Read(_) | Op::Write(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_accessor() {
        assert_eq!(Op::Read(LineAddr::new(4)).line(), Some(LineAddr::new(4)));
        assert_eq!(Op::Write(LineAddr::new(5)).line(), Some(LineAddr::new(5)));
        assert_eq!(Op::Compute(10).line(), None);
        assert_eq!(Op::Fence.line(), None);
    }

    #[test]
    fn memory_classification() {
        assert!(Op::Read(LineAddr::new(0)).is_memory());
        assert!(Op::Write(LineAddr::new(0)).is_memory());
        assert!(!Op::Compute(1).is_memory());
        assert!(!Op::Fence.is_memory());
    }
}
