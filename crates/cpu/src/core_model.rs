//! The core state machine.

use ring_cache::{CacheArray, CacheConfig, LineAddr};
use serde::{Deserialize, Serialize};

use crate::ops::Op;
use crate::store_buffer::StoreBuffer;

/// What the core asks the machine to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NextStep {
    /// Spend `cycles` of local time (compute and cache hits), then call
    /// again.
    Advance {
        /// Local cycles consumed.
        cycles: u64,
    },
    /// A load missed; the core blocks until the machine reports the data
    /// bound for `line` via [`Core::read_done`].
    BlockedRead {
        /// Local cycles consumed before the miss issued.
        cycles: u64,
        /// The missing line.
        line: LineAddr,
    },
    /// A store needs a coherence transaction; the core does NOT block
    /// (release consistency). The machine must issue the transaction and
    /// later call [`Core::write_complete`].
    IssueWrite {
        /// Local cycles consumed.
        cycles: u64,
        /// The line being written.
        line: LineAddr,
    },
    /// The core stalls until the store buffer drains below capacity or
    /// empties (fence); resumes via [`Core::write_complete`].
    BlockedStores {
        /// Local cycles consumed before stalling.
        cycles: u64,
    },
    /// The op stream is exhausted and all stores completed.
    Finished,
}

/// Per-core execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreStats {
    /// Retired operations (memory + compute + fences).
    pub retired: u64,
    /// Retired memory references.
    pub mem_refs: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// L2 hits (L1 misses that hit the local L2).
    pub l2_hits: u64,
    /// Read transactions issued to the protocol.
    pub read_misses: u64,
    /// Write transactions issued to the protocol.
    pub write_txns: u64,
    /// Stores absorbed locally (silent upgrade or merged in buffer or
    /// forwarded from an outstanding transaction).
    pub silent_stores: u64,
}

/// The blocking state of the core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Blocked {
    No,
    Read(LineAddr),
    /// Waiting for the store buffer (op to re-execute is stashed).
    StoreFull(LineAddr),
    Fence,
}

/// One simulated core: an op stream, a private L1, and a store buffer.
///
/// The machine drives the core through [`Core::next`], which consumes ops
/// until it needs the memory system. The closure-free, poll-style
/// interface keeps the core testable without a full machine: the caller
/// supplies the L2-derived classification of each memory reference via
/// [`L2View`].
pub struct Core {
    ops: Box<dyn Iterator<Item = Op> + Send>,
    l1: CacheArray,
    l1_latency: u64,
    l2_latency: u64,
    store_buffer: StoreBuffer,
    blocked: Blocked,
    exhausted: bool,
    stats: CoreStats,
    /// Ops pulled from the stream so far — checkpoint/restore rebuilds
    /// the deterministic generator and fast-forwards it by this count.
    pulled: u64,
}

impl std::fmt::Debug for Core {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Core")
            .field("blocked", &self.blocked)
            .field("exhausted", &self.exhausted)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

/// The machine's answer to "how is this line classified right now?",
/// derived from the node's L2 and protocol agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L2View {
    /// The L2 holds the line readable; stores can proceed silently.
    HitSilent,
    /// The L2 holds the line readable; stores need a transaction.
    HitNeedsOwnership,
    /// The line is not in the L2.
    Miss,
    /// A transaction for this line is already outstanding at this node
    /// (reads forward from it; stores merge into it).
    Outstanding,
}

impl Core {
    /// Creates a core over an op stream.
    pub fn new(
        ops: Box<dyn Iterator<Item = Op> + Send>,
        l1_cfg: CacheConfig,
        l2_latency: u64,
        store_capacity: usize,
    ) -> Self {
        Core {
            ops,
            l1_latency: l1_cfg.latency,
            l1: CacheArray::new(l1_cfg),
            l2_latency,
            store_buffer: StoreBuffer::new(store_capacity),
            blocked: Blocked::No,
            exhausted: false,
            stats: CoreStats::default(),
            pulled: 0,
        }
    }

    /// Execution statistics.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Whether the core is currently blocked.
    pub fn is_blocked(&self) -> bool {
        self.blocked != Blocked::No
    }

    /// Whether the core finished its stream (including store drain).
    pub fn is_finished(&self) -> bool {
        self.exhausted && self.store_buffer.is_empty() && self.blocked == Blocked::No
    }

    /// Outstanding stores in the buffer.
    pub fn pending_stores(&self) -> usize {
        self.store_buffer.len()
    }

    /// Invalidate a line in the L1 (inclusion: the machine calls this
    /// when the L2 loses the line).
    pub fn l1_invalidate(&mut self, line: LineAddr) {
        self.l1.invalidate(line);
    }

    /// Runs the core forward, consuming ops until it needs the memory
    /// system, finishes, or exhausts `budget` local cycles.
    ///
    /// `classify` is called for each memory reference that misses the L1
    /// to determine how the L2/protocol sees the line.
    ///
    /// # Panics
    ///
    /// Panics if called while the core is blocked.
    pub fn next<F>(&mut self, budget: u64, mut classify: F) -> NextStep
    where
        F: FnMut(LineAddr) -> L2View,
    {
        assert!(
            self.blocked == Blocked::No,
            "core stepped while blocked: {:?}",
            self.blocked
        );
        let mut local: u64 = 0;
        loop {
            if local >= budget {
                return NextStep::Advance { cycles: local };
            }
            let Some(op) = self.ops.next() else {
                self.exhausted = true;
                if self.store_buffer.is_empty() {
                    return NextStep::Finished;
                }
                self.blocked = Blocked::Fence;
                return NextStep::BlockedStores { cycles: local };
            };
            self.pulled += 1;
            self.stats.retired += 1;
            match op {
                Op::Compute(c) => local += u64::from(c),
                Op::Fence => {
                    if !self.store_buffer.is_empty() {
                        self.blocked = Blocked::Fence;
                        return NextStep::BlockedStores { cycles: local };
                    }
                }
                Op::Read(line) => {
                    self.stats.mem_refs += 1;
                    if self.l1.access(line).is_valid() {
                        self.stats.l1_hits += 1;
                        local += self.l1_latency;
                        continue;
                    }
                    match classify(line) {
                        L2View::HitSilent | L2View::HitNeedsOwnership => {
                            self.stats.l2_hits += 1;
                            local += self.l1_latency + self.l2_latency;
                            self.l1_fill(line);
                        }
                        L2View::Outstanding => {
                            // Forward from the in-flight transaction /
                            // store buffer.
                            local += self.l1_latency;
                        }
                        L2View::Miss => {
                            self.stats.read_misses += 1;
                            self.blocked = Blocked::Read(line);
                            return NextStep::BlockedRead {
                                cycles: local + self.l1_latency + self.l2_latency,
                                line,
                            };
                        }
                    }
                }
                Op::Write(line) => {
                    self.stats.mem_refs += 1;
                    local += self.l1_latency;
                    match classify(line) {
                        L2View::HitSilent => {
                            self.stats.silent_stores += 1;
                            self.l1_fill(line);
                        }
                        L2View::Outstanding => {
                            // Merge into the outstanding transaction.
                            self.stats.silent_stores += 1;
                        }
                        L2View::HitNeedsOwnership | L2View::Miss => {
                            if self.store_buffer.contains(line) {
                                self.stats.silent_stores += 1;
                                self.store_buffer.push(line);
                                continue;
                            }
                            if self.store_buffer.is_full() {
                                self.blocked = Blocked::StoreFull(line);
                                return NextStep::BlockedStores { cycles: local };
                            }
                            self.store_buffer.push(line);
                            self.stats.write_txns += 1;
                            return NextStep::IssueWrite {
                                cycles: local,
                                line,
                            };
                        }
                    }
                }
            }
        }
    }

    fn l1_fill(&mut self, line: LineAddr) {
        self.l1.insert(line, ring_cache::LineState::Shared);
    }

    /// The machine reports that the read for `line` bound. Fills the L1
    /// and unblocks the core. Returns `true` if the core was waiting on
    /// this line.
    pub fn read_done(&mut self, line: LineAddr) -> bool {
        if self.blocked == Blocked::Read(line) {
            self.blocked = Blocked::No;
            self.l1_fill(line);
            true
        } else {
            false
        }
    }

    /// The machine reports that a write transaction for `line` completed.
    /// Returns the line of a write to issue now (a store that was stalled
    /// on a full buffer), and whether the core unblocked.
    pub fn write_complete(&mut self, line: LineAddr) -> (Option<LineAddr>, bool) {
        self.store_buffer.complete(line);
        match self.blocked {
            Blocked::StoreFull(pending) if !self.store_buffer.is_full() => {
                self.blocked = Blocked::No;
                self.store_buffer.push(pending);
                self.stats.write_txns += 1;
                (Some(pending), true)
            }
            Blocked::Fence if self.store_buffer.is_empty() => {
                self.blocked = Blocked::No;
                (None, true)
            }
            _ => (None, false),
        }
    }
}

impl ring_snapshot::Snap for CoreStats {
    fn save(&self, w: &mut ring_snapshot::SnapWriter) {
        w.put(&self.retired);
        w.put(&self.mem_refs);
        w.put(&self.l1_hits);
        w.put(&self.l2_hits);
        w.put(&self.read_misses);
        w.put(&self.write_txns);
        w.put(&self.silent_stores);
    }
    fn load(r: &mut ring_snapshot::SnapReader<'_>) -> Result<Self, ring_snapshot::SnapshotError> {
        Ok(CoreStats {
            retired: r.get()?,
            mem_refs: r.get()?,
            l1_hits: r.get()?,
            l2_hits: r.get()?,
            read_misses: r.get()?,
            write_txns: r.get()?,
            silent_stores: r.get()?,
        })
    }
}

impl Core {
    /// Serializes the core: op-stream position, L1 contents, store
    /// buffer, blocking state, and statistics. The op stream itself is
    /// not stored — it is a deterministic generator the caller rebuilds
    /// and fast-forwards at restore.
    pub fn snap_save(&self, w: &mut ring_snapshot::SnapWriter) {
        w.put(&self.pulled);
        self.l1.snap_save(w);
        self.store_buffer.snap_save(w);
        match self.blocked {
            Blocked::No => w.put(&0u8),
            Blocked::Read(line) => {
                w.put(&1u8);
                w.put(&line);
            }
            Blocked::StoreFull(line) => {
                w.put(&2u8);
                w.put(&line);
            }
            Blocked::Fence => w.put(&3u8),
        }
        w.put(&self.exhausted);
        w.put(&self.stats);
    }

    /// Rebuilds a core from configuration plus snapshot state. `ops`
    /// must be a fresh instance of the same deterministic stream the
    /// snapshotted core was created with; it is advanced past the ops
    /// the core had already consumed.
    pub fn snap_load(
        r: &mut ring_snapshot::SnapReader<'_>,
        mut ops: Box<dyn Iterator<Item = Op> + Send>,
        l1_cfg: CacheConfig,
        l2_latency: u64,
        store_capacity: usize,
    ) -> Result<Self, ring_snapshot::SnapshotError> {
        let pulled: u64 = r.get()?;
        for i in 0..pulled {
            if ops.next().is_none() {
                return Err(r.malformed(format!("op stream ended at {i} of {pulled} consumed ops")));
            }
        }
        let mut c = Core::new(ops, l1_cfg, l2_latency, store_capacity);
        c.pulled = pulled;
        c.l1 = CacheArray::snap_load(r, l1_cfg)?;
        c.store_buffer = StoreBuffer::snap_load(r)?;
        c.blocked = match r.get::<u8>()? {
            0 => Blocked::No,
            1 => Blocked::Read(r.get()?),
            2 => Blocked::StoreFull(r.get()?),
            3 => Blocked::Fence,
            other => return Err(r.malformed(format!("core blocked tag {other}"))),
        };
        c.exhausted = r.get()?;
        c.stats = r.get()?;
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ring_cache::CacheConfig;

    fn mk(ops: Vec<Op>) -> Core {
        Core::new(Box::new(ops.into_iter()), CacheConfig::l1_32k(), 7, 2)
    }

    #[test]
    fn compute_advances_time() {
        let mut c = mk(vec![Op::Compute(10), Op::Compute(5)]);
        let step = c.next(1_000_000, |_| L2View::Miss);
        assert_eq!(step, NextStep::Finished);
        assert_eq!(c.stats().retired, 2);
    }

    #[test]
    fn budget_yields() {
        let mut c = mk(vec![Op::Compute(100), Op::Compute(100)]);
        match c.next(50, |_| L2View::Miss) {
            NextStep::Advance { cycles } => assert_eq!(cycles, 100),
            s => panic!("unexpected {s:?}"),
        }
    }

    #[test]
    fn read_miss_blocks_until_done() {
        let line = LineAddr::new(7);
        let mut c = mk(vec![Op::Read(line), Op::Compute(1)]);
        match c.next(1000, |_| L2View::Miss) {
            NextStep::BlockedRead { line: l, .. } => assert_eq!(l, line),
            s => panic!("unexpected {s:?}"),
        }
        assert!(c.is_blocked());
        assert!(c.read_done(line));
        assert!(!c.is_blocked());
        // After the fill, the same line L1-hits.
        let step = c.next(1000, |_| panic!("must hit L1"));
        assert_eq!(step, NextStep::Finished);
    }

    #[test]
    fn second_read_after_fill_hits_l1() {
        let line = LineAddr::new(7);
        let mut c = mk(vec![Op::Read(line), Op::Read(line)]);
        match c.next(1000, |_| L2View::Miss) {
            NextStep::BlockedRead { .. } => {}
            s => panic!("unexpected {s:?}"),
        }
        c.read_done(line);
        assert_eq!(c.next(1000, |_| L2View::Miss), NextStep::Finished);
        assert_eq!(c.stats().l1_hits, 1);
        assert_eq!(c.stats().read_misses, 1);
    }

    #[test]
    fn l2_hit_does_not_block() {
        let mut c = mk(vec![Op::Read(LineAddr::new(1))]);
        assert_eq!(c.next(1000, |_| L2View::HitSilent), NextStep::Finished);
        assert_eq!(c.stats().l2_hits, 1);
    }

    #[test]
    fn writes_do_not_block_until_buffer_full() {
        let mut c = mk(vec![
            Op::Write(LineAddr::new(1)),
            Op::Write(LineAddr::new(2)),
            Op::Write(LineAddr::new(3)),
        ]);
        // Buffer capacity 2: first two issue, third stalls.
        match c.next(1000, |_| L2View::Miss) {
            NextStep::IssueWrite { line, .. } => assert_eq!(line, LineAddr::new(1)),
            s => panic!("unexpected {s:?}"),
        }
        match c.next(1000, |_| L2View::Miss) {
            NextStep::IssueWrite { line, .. } => assert_eq!(line, LineAddr::new(2)),
            s => panic!("unexpected {s:?}"),
        }
        match c.next(1000, |_| L2View::Miss) {
            NextStep::BlockedStores { .. } => {}
            s => panic!("unexpected {s:?}"),
        }
        // Completing one write releases the stalled store.
        let (issue, unblocked) = c.write_complete(LineAddr::new(1));
        assert_eq!(issue, Some(LineAddr::new(3)));
        assert!(unblocked);
    }

    #[test]
    fn fence_waits_for_stores() {
        let mut c = mk(vec![Op::Write(LineAddr::new(1)), Op::Fence, Op::Compute(1)]);
        match c.next(1000, |_| L2View::Miss) {
            NextStep::IssueWrite { .. } => {}
            s => panic!("unexpected {s:?}"),
        }
        match c.next(1000, |_| L2View::Miss) {
            NextStep::BlockedStores { .. } => {}
            s => panic!("unexpected {s:?}"),
        }
        let (_, unblocked) = c.write_complete(LineAddr::new(1));
        assert!(unblocked);
        assert_eq!(c.next(1000, |_| L2View::Miss), NextStep::Finished);
    }

    #[test]
    fn silent_store_needs_no_transaction() {
        let mut c = mk(vec![Op::Write(LineAddr::new(1))]);
        assert_eq!(c.next(1000, |_| L2View::HitSilent), NextStep::Finished);
        assert_eq!(c.stats().silent_stores, 1);
        assert_eq!(c.stats().write_txns, 0);
    }

    #[test]
    fn store_to_buffered_line_merges() {
        let mut c = mk(vec![
            Op::Write(LineAddr::new(1)),
            Op::Write(LineAddr::new(1)),
        ]);
        match c.next(1000, |_| L2View::Miss) {
            NextStep::IssueWrite { .. } => {}
            s => panic!("unexpected {s:?}"),
        }
        // The merged second store retires; the drain then waits on the
        // single outstanding transaction.
        match c.next(1000, |_| L2View::Miss) {
            NextStep::BlockedStores { .. } => {}
            s => panic!("unexpected {s:?}"),
        }
        assert_eq!(c.stats().write_txns, 1);
        assert_eq!(c.stats().silent_stores, 1);
        c.write_complete(LineAddr::new(1));
        assert!(c.is_finished());
    }

    #[test]
    fn finish_waits_for_store_drain() {
        let mut c = mk(vec![Op::Write(LineAddr::new(1))]);
        match c.next(1000, |_| L2View::Miss) {
            NextStep::IssueWrite { .. } => {}
            s => panic!("unexpected {s:?}"),
        }
        match c.next(1000, |_| L2View::Miss) {
            NextStep::BlockedStores { .. } => {}
            s => panic!("unexpected {s:?}"),
        }
        assert!(!c.is_finished());
        c.write_complete(LineAddr::new(1));
        assert!(c.is_finished());
    }

    #[test]
    fn outstanding_line_forwards() {
        let mut c = mk(vec![
            Op::Read(LineAddr::new(1)),
            Op::Write(LineAddr::new(1)),
        ]);
        assert_eq!(c.next(1000, |_| L2View::Outstanding), NextStep::Finished);
        assert_eq!(c.stats().read_misses, 0);
        assert_eq!(c.stats().write_txns, 0);
    }

    #[test]
    fn l1_invalidation_forces_reclassification() {
        let line = LineAddr::new(3);
        let mut c = mk(vec![Op::Read(line), Op::Read(line)]);
        match c.next(1000, |_| L2View::Miss) {
            NextStep::BlockedRead { .. } => {}
            s => panic!("unexpected {s:?}"),
        }
        c.read_done(line);
        c.l1_invalidate(line);
        // Second read goes back to the classifier.
        let mut asked = false;
        let step = c.next(1000, |_| {
            asked = true;
            L2View::HitSilent
        });
        assert_eq!(step, NextStep::Finished);
        assert!(asked);
    }
}
