//! Property tests for the memory substrate.

use proptest::prelude::*;
use ring_cache::LineAddr;
use ring_mem::{ControllerPrefetchPredictor, MemConfig, MemoryController, PrefetchBuffer};

proptest! {
    /// Completion times never precede `now + round_trip`, and total
    /// throughput is bounded by the slot count.
    #[test]
    fn controller_latency_and_throughput(
        arrivals in proptest::collection::vec(0u64..10_000, 1..100),
        slots in 1usize..8,
    ) {
        let mut sorted = arrivals.clone();
        sorted.sort_unstable();
        let mut mc = MemoryController::new(MemConfig {
            round_trip: 100,
            page_bytes: 4096,
            line_bytes: 64,
            max_in_flight: slots,
        });
        let mut completions = Vec::new();
        for (i, &t) in sorted.iter().enumerate() {
            let done = mc.request(t, LineAddr::new(i as u64));
            prop_assert!(done >= t + 100);
            completions.push(done);
        }
        // No more than `slots` completions can fall in any 100-cycle
        // window (each slot finishes one request per round trip).
        completions.sort_unstable();
        for w in completions.windows(slots + 1) {
            prop_assert!(w[slots] > w[0], "throughput exceeded slot bound");
        }
    }

    /// The prefetch buffer never yields data earlier than its ready time
    /// and never after the hold window.
    #[test]
    fn prefetch_buffer_timing(
        fill_at in 0u64..1000,
        ready_delay in 0u64..500,
        claim_delay in 0u64..2000,
    ) {
        let hold = 300u64;
        let mut b = PrefetchBuffer::new(4, hold);
        let line = LineAddr::new(1);
        let ready = fill_at + ready_delay;
        b.fill(fill_at, line, ready);
        let claim_at = fill_at + claim_delay;
        match b.claim(claim_at, line) {
            Some(avail) => {
                prop_assert!(avail >= ready);
                prop_assert!(avail >= claim_at);
                prop_assert!(claim_at <= ready + hold, "claim succeeded past expiry");
            }
            None => {
                prop_assert!(claim_at > ready + hold, "claim failed inside the window");
            }
        }
    }

    /// CPP: a fetched line tests resident until written back or evicted
    /// by a conflicting page; never falsely resident after writeback.
    #[test]
    fn cpp_tracks_residency(ops in proptest::collection::vec((0u64..512, any::<bool>()), 1..200)) {
        let mut cpp = ControllerPrefetchPredictor::new(64, 64, 4096);
        let mut model: std::collections::HashMap<u64, bool> = Default::default();
        for &(line, fetch) in &ops {
            let addr = LineAddr::new(line);
            let page = line / 64;
            if fetch {
                cpp.mark_fetched(addr);
                // Conflicting pages in the same direct-mapped slot forget
                // their residency in the model too.
                model.retain(|&l, _| {
                    let p = l / 64;
                    p == page || (p % 64) != (page % 64)
                });
                model.insert(line, true);
            } else {
                cpp.mark_written_back(addr);
                model.remove(&line);
            }
            // The CPP may be *less* sure than the model (conflict
            // evictions), but must never claim residency the model
            // rejects.
            if cpp.likely_on_chip(addr) {
                prop_assert!(model.contains_key(&line),
                    "CPP claims residency for written-back/unfetched line {line}");
            }
        }
    }
}
