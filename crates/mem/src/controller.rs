//! Fixed-latency memory controller with bounded concurrency.

use ring_cache::LineAddr;
use ring_sim::Cycle;
use serde::{Deserialize, Serialize};

/// Memory timing parameters (paper Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemConfig {
    /// Round-trip latency of one line fetch, in processor cycles.
    pub round_trip: Cycle,
    /// Page size in bytes (used by the CPP and workload layout).
    pub page_bytes: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Maximum concurrently serviced requests; beyond this, requests
    /// queue (models channel/bank occupancy).
    pub max_in_flight: usize,
}

impl MemConfig {
    /// DDR2-800 per the paper: 224-cycle round trip, 4 KB pages, 64 B
    /// lines. The paper models memory as a flat round trip, so the
    /// default concurrency (64) is sized to rarely bind; ablations can
    /// lower it to study controller queueing.
    pub fn ddr2_800() -> Self {
        MemConfig {
            round_trip: 224,
            page_bytes: 4096,
            line_bytes: 64,
            max_in_flight: 64,
        }
    }
}

/// A memory controller that services line fetches with a fixed round-trip
/// latency and bounded concurrency.
///
/// Occupancy is modeled as a sliding window of completion times: a request
/// issued while `max_in_flight` requests are outstanding starts only when
/// the earliest one finishes.
///
/// # Examples
///
/// ```
/// use ring_mem::{MemConfig, MemoryController};
/// use ring_cache::LineAddr;
///
/// let mut mc = MemoryController::new(MemConfig {
///     round_trip: 100, page_bytes: 4096, line_bytes: 64, max_in_flight: 1,
/// });
/// let a = mc.request(0, LineAddr::new(1));
/// let b = mc.request(0, LineAddr::new(2)); // queues behind the first
/// assert_eq!(a, 100);
/// assert_eq!(b, 200);
/// ```
#[derive(Debug, Clone)]
pub struct MemoryController {
    cfg: MemConfig,
    /// Cycle at which each of the `max_in_flight` service slots frees up.
    slot_free: Vec<Cycle>,
    requests: u64,
    queued: u64,
}

impl MemoryController {
    /// Creates a controller with the given timing.
    ///
    /// # Panics
    ///
    /// Panics if `round_trip` or `max_in_flight` is zero.
    pub fn new(cfg: MemConfig) -> Self {
        assert!(cfg.round_trip > 0, "memory latency must be positive");
        assert!(
            cfg.max_in_flight > 0,
            "controller concurrency must be positive"
        );
        MemoryController {
            slot_free: vec![0; cfg.max_in_flight],
            cfg,
            requests: 0,
            queued: 0,
        }
    }

    /// The controller's configuration.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Issues a line fetch at cycle `now`; returns the absolute completion
    /// cycle. The `addr` parameter is accepted for interface symmetry and
    /// future bank modeling (occupancy is currently address-blind).
    pub fn request(&mut self, now: Cycle, addr: LineAddr) -> Cycle {
        let _ = addr;
        self.requests += 1;
        // Pick the service slot that frees up earliest; on ties the
        // lowest-indexed slot wins (first minimum), which keeps slot
        // assignment — and thus the whole simulation — deterministic.
        // The constructor guarantees at least one slot.
        let mut slot = 0;
        for (i, &t) in self.slot_free.iter().enumerate().skip(1) {
            if t < self.slot_free[slot] {
                slot = i;
            }
        }
        let start = now.max(self.slot_free[slot]);
        if start > now {
            self.queued += 1;
        }
        let done = start + self.cfg.round_trip;
        self.slot_free[slot] = done;
        done
    }

    /// Total requests serviced.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Requests that had to queue for controller occupancy.
    pub fn queued(&self) -> u64 {
        self.queued
    }
}

impl MemoryController {
    /// Serializes the controller's dynamic state (slot completion times
    /// and counters); the timing configuration is re-supplied at restore.
    pub fn snap_save(&self, w: &mut ring_snapshot::SnapWriter) {
        w.put(&self.slot_free);
        w.put(&self.requests);
        w.put(&self.queued);
    }

    /// Rebuilds a controller from configuration plus snapshot state.
    pub fn snap_load(
        r: &mut ring_snapshot::SnapReader<'_>,
        cfg: MemConfig,
    ) -> Result<Self, ring_snapshot::SnapshotError> {
        let slot_free: Vec<Cycle> = r.get()?;
        if slot_free.len() != cfg.max_in_flight {
            return Err(r.malformed(format!(
                "{} controller slots, config has {}",
                slot_free.len(),
                cfg.max_in_flight
            )));
        }
        let mut mc = MemoryController::new(cfg);
        mc.slot_free = slot_free;
        mc.requests = r.get()?;
        mc.queued = r.get()?;
        Ok(mc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(concurrency: usize) -> MemConfig {
        MemConfig {
            round_trip: 100,
            page_bytes: 4096,
            line_bytes: 64,
            max_in_flight: concurrency,
        }
    }

    #[test]
    fn uncontended_latency_is_round_trip() {
        let mut mc = MemoryController::new(MemConfig::ddr2_800());
        assert_eq!(mc.request(500, LineAddr::new(1)), 724);
    }

    #[test]
    fn saturated_controller_queues() {
        let mut mc = MemoryController::new(cfg(2));
        let a = mc.request(0, LineAddr::new(1));
        let b = mc.request(0, LineAddr::new(2));
        let c = mc.request(0, LineAddr::new(3));
        assert_eq!(a, 100);
        assert_eq!(b, 100);
        assert_eq!(c, 200);
        assert_eq!(mc.queued(), 1);
    }

    #[test]
    fn old_completions_free_slots() {
        let mut mc = MemoryController::new(cfg(1));
        let a = mc.request(0, LineAddr::new(1));
        assert_eq!(a, 100);
        // By cycle 150 the first is done; a new request is unqueued.
        let b = mc.request(150, LineAddr::new(2));
        assert_eq!(b, 250);
        assert_eq!(mc.queued(), 0);
    }

    #[test]
    fn request_counter() {
        let mut mc = MemoryController::new(cfg(4));
        for i in 0..5 {
            mc.request(0, LineAddr::new(i));
        }
        assert_eq!(mc.requests(), 5);
    }

    #[test]
    fn deep_queue_accumulates_delay() {
        let mut mc = MemoryController::new(cfg(1));
        let mut last = 0;
        for i in 0..10 {
            last = mc.request(0, LineAddr::new(i));
        }
        assert_eq!(last, 1000);
    }

    #[test]
    #[should_panic(expected = "memory latency must be positive")]
    fn zero_latency_rejected() {
        let _ = MemoryController::new(MemConfig {
            round_trip: 0,
            ..MemConfig::ddr2_800()
        });
    }

    #[test]
    #[should_panic(expected = "controller concurrency must be positive")]
    fn zero_slots_rejected() {
        let _ = MemoryController::new(cfg(0));
    }

    #[test]
    fn slot_ties_break_to_the_first_minimum() {
        // Both slots free at 0: the first must win, so a third request
        // at the same cycle queues behind the *first* slot's completion.
        let mut mc = MemoryController::new(cfg(2));
        assert_eq!(mc.request(0, LineAddr::new(1)), 100);
        assert_eq!(mc.request(0, LineAddr::new(2)), 100);
        assert_eq!(mc.request(50, LineAddr::new(3)), 200);
    }
}
