//! Memory-system substrate for the Uncorq simulator.
//!
//! Models the paper's off-chip memory path (Table 3: DDR2-800, 224-cycle
//! round trip, 4 KB pages) and the memory-controller half of the
//! prefetching optimization of §5.4:
//!
//! - [`MemoryController`] — fixed-latency DRAM with a bounded number of
//!   in-flight requests and bank-conflict style queueing;
//! - [`ControllerPrefetchPredictor`] (CPP) — the per-page residency bit
//!   vector that suppresses useless prefetches;
//! - [`PrefetchBuffer`] — the small timed buffer that holds prefetched
//!   lines until the requesting node claims or abandons them.
//!
//! # Examples
//!
//! ```
//! use ring_mem::{MemConfig, MemoryController};
//! use ring_cache::LineAddr;
//!
//! let mut mc = MemoryController::new(MemConfig::ddr2_800());
//! let done = mc.request(1000, LineAddr::new(7));
//! assert_eq!(done, 1000 + 224);
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod controller;
mod cpp;
mod prefetch_buffer;

pub use controller::{MemConfig, MemoryController};
pub use cpp::ControllerPrefetchPredictor;
pub use prefetch_buffer::PrefetchBuffer;
