//! The small timed buffer that holds prefetched lines (paper §5.4).

use ring_cache::LineAddr;
use ring_sim::Cycle;
use serde::{Deserialize, Serialize};

/// Holds lines fetched by the prefetching optimization until the
/// requesting node claims them or they expire.
///
/// The paper: "When the line is received, it is kept in a small buffer for
/// a certain number of cycles in case the requesting node wants it."
///
/// # Examples
///
/// ```
/// use ring_mem::PrefetchBuffer;
/// use ring_cache::LineAddr;
///
/// let mut b = PrefetchBuffer::new(4, 1000);
/// b.fill(100, LineAddr::new(1), 350); // ready at cycle 350
/// // Claim at 400: data already there, available immediately.
/// assert_eq!(b.claim(400, LineAddr::new(1)), Some(400));
/// // Claimed entries are consumed.
/// assert_eq!(b.claim(401, LineAddr::new(1)), None);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrefetchBuffer {
    capacity: usize,
    hold_cycles: Cycle,
    entries: Vec<Entry>,
    hits: u64,
    expirations: u64,
    discards: u64,
}

#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct Entry {
    addr: LineAddr,
    ready_at: Cycle,
}

impl PrefetchBuffer {
    /// Creates a buffer of `capacity` lines, each held for `hold_cycles`
    /// after its data is ready.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, hold_cycles: Cycle) -> Self {
        assert!(capacity > 0, "buffer capacity must be positive");
        PrefetchBuffer {
            capacity,
            hold_cycles,
            entries: Vec::new(),
            hits: 0,
            expirations: 0,
            discards: 0,
        }
    }

    fn expire(&mut self, now: Cycle) {
        let hold = self.hold_cycles;
        let before = self.entries.len();
        self.entries.retain(|e| e.ready_at + hold >= now);
        self.expirations += (before - self.entries.len()) as u64;
    }

    /// Inserts a prefetched line whose data becomes ready at `ready_at`.
    /// If the buffer is full, the oldest entry is discarded.
    pub fn fill(&mut self, now: Cycle, addr: LineAddr, ready_at: Cycle) {
        self.expire(now);
        // Refresh an existing entry for the same line.
        self.entries.retain(|e| e.addr != addr);
        if self.entries.len() >= self.capacity {
            self.entries.remove(0);
            self.discards += 1;
        }
        self.entries.push(Entry { addr, ready_at });
    }

    /// Claims the line for a demand request at cycle `now`. Returns the
    /// cycle at which the data is available (`max(now, ready_at)`), or
    /// `None` if the line is not buffered (expired, discarded, or never
    /// prefetched). A successful claim consumes the entry.
    pub fn claim(&mut self, now: Cycle, addr: LineAddr) -> Option<Cycle> {
        self.expire(now);
        let idx = self.entries.iter().position(|e| e.addr == addr)?;
        let e = self.entries.remove(idx);
        self.hits += 1;
        Some(e.ready_at.max(now))
    }

    /// Drops the buffered line (an on-chip cache supplied the data, so
    /// the prefetched copy is discarded, per the paper).
    pub fn discard(&mut self, addr: LineAddr) {
        let before = self.entries.len();
        self.entries.retain(|e| e.addr != addr);
        if self.entries.len() != before {
            self.discards += 1;
        }
    }

    /// Lines currently buffered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Successful claims.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Entries that timed out unclaimed.
    pub fn expirations(&self) -> u64 {
        self.expirations
    }

    /// Entries discarded (capacity pressure or explicit discard).
    pub fn discards(&self) -> u64 {
        self.discards
    }
}

impl PrefetchBuffer {
    /// Serializes the buffer: geometry, live entries in insertion order,
    /// and counters.
    pub fn snap_save(&self, w: &mut ring_snapshot::SnapWriter) {
        w.put(&self.capacity);
        w.put(&self.hold_cycles);
        w.put_seq_with(self.entries.iter(), |w, e| {
            w.put(&e.addr);
            w.put(&e.ready_at);
        });
        w.put(&self.hits);
        w.put(&self.expirations);
        w.put(&self.discards);
    }

    /// Rebuilds a buffer from snapshot state.
    pub fn snap_load(
        r: &mut ring_snapshot::SnapReader<'_>,
    ) -> Result<Self, ring_snapshot::SnapshotError> {
        let capacity: usize = r.get()?;
        if capacity == 0 {
            return Err(r.malformed("prefetch buffer capacity must be positive"));
        }
        let hold_cycles: Cycle = r.get()?;
        let entries: Vec<Entry> = r.get_seq_with(|r| {
            Ok(Entry {
                addr: r.get()?,
                ready_at: r.get()?,
            })
        })?;
        if entries.len() > capacity {
            return Err(r.malformed("prefetch buffer holds more entries than its capacity"));
        }
        let mut b = PrefetchBuffer::new(capacity, hold_cycles);
        b.entries = entries;
        b.hits = r.get()?;
        b.expirations = r.get()?;
        b.discards = r.get()?;
        Ok(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim_waits_for_data() {
        let mut b = PrefetchBuffer::new(2, 100);
        b.fill(0, LineAddr::new(1), 50);
        // Claim before the data is back: available at ready time.
        assert_eq!(b.claim(20, LineAddr::new(1)), Some(50));
    }

    #[test]
    fn entries_expire() {
        let mut b = PrefetchBuffer::new(2, 100);
        b.fill(0, LineAddr::new(1), 50);
        assert_eq!(b.claim(151, LineAddr::new(1)), None);
        assert_eq!(b.expirations(), 1);
    }

    #[test]
    fn capacity_discards_oldest() {
        let mut b = PrefetchBuffer::new(2, 1000);
        b.fill(0, LineAddr::new(1), 10);
        b.fill(0, LineAddr::new(2), 10);
        b.fill(0, LineAddr::new(3), 10);
        assert_eq!(b.claim(20, LineAddr::new(1)), None);
        assert!(b.claim(20, LineAddr::new(2)).is_some());
        assert!(b.claim(20, LineAddr::new(3)).is_some());
        assert_eq!(b.discards(), 1);
    }

    #[test]
    fn explicit_discard() {
        let mut b = PrefetchBuffer::new(2, 1000);
        b.fill(0, LineAddr::new(1), 10);
        b.discard(LineAddr::new(1));
        assert_eq!(b.claim(20, LineAddr::new(1)), None);
        assert!(b.is_empty());
    }

    #[test]
    fn refill_refreshes_entry() {
        let mut b = PrefetchBuffer::new(2, 100);
        b.fill(0, LineAddr::new(1), 10);
        b.fill(90, LineAddr::new(1), 120);
        // Old entry would have expired at 110; refreshed one survives.
        assert_eq!(b.claim(150, LineAddr::new(1)), Some(150));
        assert_eq!(b.len(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = PrefetchBuffer::new(0, 10);
    }
}
