//! The Controller Prefetch Predictor (paper §5.4).

use ring_cache::LineAddr;
use serde::{Deserialize, Serialize};

/// The memory-controller half of the paper's prefetching optimization.
///
/// The CPP is a direct-mapped table of page entries; each entry holds one
/// bit per line of the page. A set bit means "this line is (likely) on
/// chip": it was brought in by a miss or prefetch and has not been written
/// back. The controller drops prefetch requests whose bit is set, because
/// a cache will supply the line anyway.
///
/// Paper configuration: 16K entries × 64 bits (4 KB pages of 64 B lines).
///
/// # Examples
///
/// ```
/// use ring_mem::ControllerPrefetchPredictor;
/// use ring_cache::LineAddr;
///
/// let mut cpp = ControllerPrefetchPredictor::new(16 * 1024, 64, 4096);
/// let a = LineAddr::new(10);
/// assert!(!cpp.likely_on_chip(a));
/// cpp.mark_fetched(a);
/// assert!(cpp.likely_on_chip(a));
/// cpp.mark_written_back(a);
/// assert!(!cpp.likely_on_chip(a));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ControllerPrefetchPredictor {
    entries: Vec<PageEntry>,
    line_bytes: u64,
    page_bytes: u64,
    lines_per_page: u64,
    suppressed: u64,
}

#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
struct PageEntry {
    page: u64,
    valid: bool,
    bits: u64,
}

impl ControllerPrefetchPredictor {
    /// Creates a CPP with `entries` page entries.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or not a power of two, or if the page
    /// holds more than 64 lines (one bit per line must fit in `u64`).
    pub fn new(entries: usize, line_bytes: u64, page_bytes: u64) -> Self {
        assert!(
            entries > 0 && entries.is_power_of_two(),
            "entries must be a power of two"
        );
        let lines_per_page = page_bytes / line_bytes;
        assert!(
            (1..=64).contains(&lines_per_page),
            "page must hold 1..=64 lines"
        );
        ControllerPrefetchPredictor {
            entries: vec![PageEntry::default(); entries],
            line_bytes,
            page_bytes,
            lines_per_page,
            suppressed: 0,
        }
    }

    /// Number of cache lines tracked per page entry (one presence bit
    /// each).
    pub fn lines_per_page(&self) -> u64 {
        self.lines_per_page
    }

    fn slot(&self, page: u64) -> usize {
        (page as usize) & (self.entries.len() - 1)
    }

    fn locate(&self, addr: LineAddr) -> (usize, u64, u64) {
        let page = addr.page(self.line_bytes, self.page_bytes);
        let bit = addr.line_in_page(self.line_bytes, self.page_bytes);
        (self.slot(page), page, bit)
    }

    /// Records that `addr` was brought on chip (demand miss or prefetch).
    ///
    /// A conflicting page in the same direct-mapped slot is replaced,
    /// which can only make the predictor *less* likely to suppress — a
    /// safe direction (extra memory fetches, never missing data).
    pub fn mark_fetched(&mut self, addr: LineAddr) {
        let (slot, page, bit) = self.locate(addr);
        let e = &mut self.entries[slot];
        if !e.valid || e.page != page {
            *e = PageEntry {
                page,
                valid: true,
                bits: 0,
            };
        }
        e.bits |= 1 << bit;
    }

    /// Records that the dirty line `addr` was written back (cleared from
    /// the on-chip caches).
    pub fn mark_written_back(&mut self, addr: LineAddr) {
        let (slot, page, bit) = self.locate(addr);
        let e = &mut self.entries[slot];
        if e.valid && e.page == page {
            e.bits &= !(1 << bit);
        }
    }

    /// Whether the predictor believes `addr` is already on chip (its bit
    /// is set); such prefetch requests are suppressed.
    pub fn likely_on_chip(&self, addr: LineAddr) -> bool {
        let (slot, page, bit) = self.locate(addr);
        let e = &self.entries[slot];
        e.valid && e.page == page && (e.bits >> bit) & 1 == 1
    }

    /// Filters one prefetch request: returns `true` if the fetch should
    /// proceed, `false` if it is suppressed (and counts the suppression).
    pub fn admit_prefetch(&mut self, addr: LineAddr) -> bool {
        if self.likely_on_chip(addr) {
            self.suppressed += 1;
            false
        } else {
            true
        }
    }

    /// Number of suppressed prefetches.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }
}

impl ControllerPrefetchPredictor {
    /// Serializes the CPP: geometry plus the full page-entry table, so a
    /// restored predictor suppresses exactly the same prefetches.
    pub fn snap_save(&self, w: &mut ring_snapshot::SnapWriter) {
        w.put(&self.line_bytes);
        w.put(&self.page_bytes);
        w.put_seq_with(self.entries.iter(), |w, e| {
            w.put(&e.page);
            w.put(&e.valid);
            w.put(&e.bits);
        });
        w.put(&self.suppressed);
    }

    /// Rebuilds a CPP from snapshot state.
    pub fn snap_load(
        r: &mut ring_snapshot::SnapReader<'_>,
    ) -> Result<Self, ring_snapshot::SnapshotError> {
        let line_bytes: u64 = r.get()?;
        let page_bytes: u64 = r.get()?;
        let entries: Vec<PageEntry> = r.get_seq_with(|r| {
            Ok(PageEntry {
                page: r.get()?,
                valid: r.get()?,
                bits: r.get()?,
            })
        })?;
        if entries.is_empty() || !entries.len().is_power_of_two() {
            return Err(r.malformed("CPP entry count must be a power of two"));
        }
        let lines_per_page = page_bytes.checked_div(line_bytes).unwrap_or(0);
        if !(1..=64).contains(&lines_per_page) {
            return Err(r.malformed("CPP page must hold 1..=64 lines"));
        }
        let mut cpp = ControllerPrefetchPredictor::new(entries.len(), line_bytes, page_bytes);
        cpp.entries = entries;
        cpp.suppressed = r.get()?;
        Ok(cpp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpp() -> ControllerPrefetchPredictor {
        ControllerPrefetchPredictor::new(16, 64, 4096)
    }

    #[test]
    fn fetch_sets_bit_writeback_clears() {
        let mut c = cpp();
        let a = LineAddr::new(5);
        c.mark_fetched(a);
        assert!(c.likely_on_chip(a));
        // A different line in the same page is not marked.
        assert!(!c.likely_on_chip(LineAddr::new(6)));
        c.mark_written_back(a);
        assert!(!c.likely_on_chip(a));
    }

    #[test]
    fn admit_suppresses_resident_lines() {
        let mut c = cpp();
        let a = LineAddr::new(100);
        assert!(c.admit_prefetch(a));
        c.mark_fetched(a);
        assert!(!c.admit_prefetch(a));
        assert_eq!(c.suppressed(), 1);
    }

    #[test]
    fn conflict_eviction_forgets_old_page() {
        let mut c = cpp();
        let a = LineAddr::new(0); // page 0, slot 0
        let b = LineAddr::new(16 * 64); // page 16, slot 0 (16 entries)
        c.mark_fetched(a);
        c.mark_fetched(b);
        assert!(!c.likely_on_chip(a), "conflicting page must evict");
        assert!(c.likely_on_chip(b));
    }

    #[test]
    fn writeback_of_unknown_page_is_noop() {
        let mut c = cpp();
        c.mark_written_back(LineAddr::new(42));
        assert!(!c.likely_on_chip(LineAddr::new(42)));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_entries_rejected() {
        let _ = ControllerPrefetchPredictor::new(12, 64, 4096);
    }

    #[test]
    #[should_panic(expected = "1..=64 lines")]
    fn oversized_page_rejected() {
        let _ = ControllerPrefetchPredictor::new(16, 32, 4096); // 128 lines/page
    }
}
