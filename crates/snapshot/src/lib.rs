//! Crash-safe machine snapshots: a versioned, sectioned, CRC-verified
//! binary format plus the primitive codec every state-holding crate uses
//! to serialize itself.
//!
//! The simulator is deterministic: state + inputs fully determine the
//! run. A snapshot therefore only has to capture *state* exactly once,
//! bit-for-bit, and a restored machine replays the identical future. The
//! format is deliberately boring:
//!
//! ```text
//! magic "RINGSNAP" | header (schema, git commit, config hash, cycle,
//! section table) | header CRC32 | section payloads
//! ```
//!
//! Each section carries its own CRC32, so a flipped bit is pinned to the
//! subsystem it corrupted ([`SnapshotError::CorruptSection`] names it)
//! and a truncated file is detected before any state is rebuilt. Files
//! are written atomically (temp file + fsync + rename), so a crash
//! mid-checkpoint can never leave a torn "latest" snapshot.
//!
//! # Examples
//!
//! ```
//! use ring_snapshot::{Snap, SnapshotBuilder, SnapshotFile, SnapshotHeader};
//!
//! let mut b = SnapshotBuilder::new(SnapshotHeader {
//!     git_commit: "abc123".into(),
//!     config_hash: 7,
//!     cycle: 42,
//! });
//! b.section("demo", |w| {
//!     w.put(&1234u64);
//!     w.put(&vec![1u32, 2, 3]);
//! });
//! let bytes = b.encode();
//! let f = SnapshotFile::decode(&bytes).unwrap();
//! assert_eq!(f.header.cycle, 42);
//! let mut r = f.section("demo").unwrap();
//! assert_eq!(r.get::<u64>().unwrap(), 1234);
//! assert_eq!(r.get::<Vec<u32>>().unwrap(), vec![1, 2, 3]);
//! r.finish().unwrap();
//! ```

mod codec;
mod error;
mod file;
mod manifest;

pub use codec::{Snap, SnapReader, SnapWriter};
pub use error::SnapshotError;
pub use file::{SnapshotBuilder, SnapshotFile, SnapshotHeader, MAGIC, SCHEMA_VERSION};
pub use manifest::{SessionManifest, MANIFEST_MAGIC, MANIFEST_VERSION};

/// CRC-32 (IEEE 802.3, reflected) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// FNV-1a of `bytes` — used for the header's config hash (the snapshot
/// must only be restored into an identically configured machine).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Incremental FNV-1a, for hashing a value field by field instead of
/// through its `Debug` formatting (which silently ties the hash to
/// derive output and field order). Feeding the same bytes in the same
/// order as [`fnv1a`] yields the same value.
///
/// Every `push_*` method also folds in the byte width of the field, so
/// adjacent fields cannot alias (`(1u8, 2u8)` and `(0x0201u16,)` hash
/// differently even though their raw little-endian bytes agree).
#[derive(Debug, Clone)]
pub struct FnvHasher {
    h: u64,
}

impl FnvHasher {
    /// A hasher at the FNV-1a offset basis.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        FnvHasher {
            h: 0xcbf2_9ce4_8422_2325,
        }
    }

    /// Folds raw bytes (length-prefixed, so variable-width fields cannot
    /// run together).
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        self.fold(&(bytes.len() as u64).to_le_bytes());
        self.fold(bytes);
    }

    /// Folds a `u64` field.
    pub fn push_u64(&mut self, v: u64) {
        self.push_bytes(&v.to_le_bytes());
    }

    /// Folds a `usize` field (hashed as `u64` so 32- and 64-bit builds
    /// agree).
    pub fn push_usize(&mut self, v: usize) {
        self.push_u64(v as u64);
    }

    /// Folds an `f64` field by bit pattern (`-0.0` and `0.0` differ; a
    /// NaN hashes as its exact payload).
    pub fn push_f64(&mut self, v: f64) {
        self.push_u64(v.to_bits());
    }

    /// Folds a `bool` field.
    pub fn push_bool(&mut self, v: bool) {
        self.push_bytes(&[u8::from(v)]);
    }

    /// Folds a UTF-8 string field.
    pub fn push_str(&mut self, v: &str) {
        self.push_bytes(v.as_bytes());
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.h
    }

    fn fold(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.h ^= u64::from(b);
            self.h = self.h.wrapping_mul(0x100_0000_01b3);
        }
    }
}

/// `git rev-parse --short=12 HEAD` of the working tree, or `"unknown"`
/// outside a repository — recorded in every snapshot header as build
/// provenance (never verified at restore; the config hash is what gates
/// compatibility).
pub fn git_commit_short() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn fnv1a_stable() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }

    #[test]
    fn incremental_hasher_matches_one_shot() {
        let mut h = FnvHasher::new();
        h.push_bytes(b"abc");
        let mut flat = Vec::new();
        flat.extend_from_slice(&3u64.to_le_bytes());
        flat.extend_from_slice(b"abc");
        assert_eq!(h.finish(), fnv1a(&flat));
    }

    #[test]
    fn field_widths_prevent_aliasing() {
        let mut a = FnvHasher::new();
        a.push_bytes(&[1]);
        a.push_bytes(&[2]);
        let mut b = FnvHasher::new();
        b.push_bytes(&[1, 2]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn each_push_kind_is_distinguishing() {
        let mut a = FnvHasher::new();
        a.push_bool(true);
        let mut b = FnvHasher::new();
        b.push_bool(false);
        assert_ne!(a.finish(), b.finish());
        let mut a = FnvHasher::new();
        a.push_f64(0.0);
        let mut b = FnvHasher::new();
        b.push_f64(-0.0);
        assert_ne!(a.finish(), b.finish());
    }
}
