//! The typed error every snapshot operation reports.

use std::fmt;

/// Why a snapshot could not be written, read, or decoded.
///
/// Corruption errors name the section that failed verification, so a
/// harness (or a human) knows which subsystem's state was damaged and can
/// fall back to an older checkpoint instead of resuming wrongly.
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying filesystem operation failed.
    Io {
        /// Path involved.
        path: String,
        /// The OS error.
        source: std::io::Error,
    },
    /// The file does not start with the snapshot magic — not a snapshot.
    BadMagic,
    /// The file was written by an incompatible schema version.
    BadVersion {
        /// Version found in the header.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// The header's CRC32 does not match its contents.
    CorruptHeader,
    /// The file ends before the named section's payload does.
    Truncated {
        /// Section (or `"header"`) that was cut off.
        section: String,
    },
    /// The named section's CRC32 does not match its payload.
    CorruptSection {
        /// Section that failed verification.
        section: String,
    },
    /// A section decoded successfully but its contents are malformed.
    Malformed {
        /// Section being decoded.
        section: String,
        /// What was wrong.
        detail: String,
    },
    /// A required section is absent.
    MissingSection {
        /// The section that was expected.
        section: String,
    },
    /// The snapshot was taken under a different machine configuration.
    ConfigMismatch {
        /// Config hash recorded in the snapshot.
        found: u64,
        /// Config hash of the machine being restored into.
        expected: u64,
    },
    /// No usable checkpoint exists (all candidates failed verification).
    NoValidCheckpoint {
        /// Directory that was searched.
        dir: String,
    },
}

impl SnapshotError {
    /// Convenience constructor for [`SnapshotError::Io`].
    pub fn io(path: impl Into<String>, source: std::io::Error) -> Self {
        SnapshotError::Io {
            path: path.into(),
            source,
        }
    }

    /// Convenience constructor for [`SnapshotError::Malformed`].
    pub fn malformed(section: impl Into<String>, detail: impl Into<String>) -> Self {
        SnapshotError::Malformed {
            section: section.into(),
            detail: detail.into(),
        }
    }

    /// The section this error is attributed to, when it names one.
    pub fn section(&self) -> Option<&str> {
        match self {
            SnapshotError::Truncated { section }
            | SnapshotError::CorruptSection { section }
            | SnapshotError::Malformed { section, .. }
            | SnapshotError::MissingSection { section } => Some(section),
            _ => None,
        }
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io { path, source } => write!(f, "snapshot I/O on {path}: {source}"),
            SnapshotError::BadMagic => write!(f, "not a ring snapshot (bad magic)"),
            SnapshotError::BadVersion { found, expected } => write!(
                f,
                "snapshot schema version {found} is not the supported version {expected}"
            ),
            SnapshotError::CorruptHeader => write!(f, "snapshot header failed CRC verification"),
            SnapshotError::Truncated { section } => {
                write!(f, "snapshot truncated inside section `{section}`")
            }
            SnapshotError::CorruptSection { section } => {
                write!(f, "snapshot section `{section}` failed CRC verification")
            }
            SnapshotError::Malformed { section, detail } => {
                write!(f, "snapshot section `{section}` is malformed: {detail}")
            }
            SnapshotError::MissingSection { section } => {
                write!(f, "snapshot is missing required section `{section}`")
            }
            SnapshotError::ConfigMismatch { found, expected } => write!(
                f,
                "snapshot was taken under config hash {found:#018x}, \
                 machine expects {expected:#018x}"
            ),
            SnapshotError::NoValidCheckpoint { dir } => {
                write!(f, "no valid checkpoint found in {dir}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_section() {
        let e = SnapshotError::CorruptSection {
            section: "queue".into(),
        };
        assert!(e.to_string().contains("queue"));
        assert_eq!(e.section(), Some("queue"));
    }

    #[test]
    fn io_keeps_source() {
        use std::error::Error;
        let e = SnapshotError::io("x", std::io::Error::other("boom"));
        assert!(e.source().is_some());
        assert!(e.section().is_none());
    }
}
