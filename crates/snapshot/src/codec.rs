//! The primitive binary codec: little-endian, length-prefixed, no
//! padding, no alignment — every byte is explicitly written, so the
//! encoding of a value is a pure function of the value.

use crate::SnapshotError;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Serializer for one snapshot section.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends any [`Snap`] value.
    pub fn put<T: Snap>(&mut self, v: &T) {
        v.save(self);
    }

    /// Appends raw bytes with a length prefix.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put(&(b.len() as u64));
        self.buf.extend_from_slice(b);
    }

    /// Appends a string with a length prefix.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// Appends a sequence as count + elements, through a closure — the
    /// escape hatch for element types that need context to encode
    /// (generic MSHR/transport payloads).
    pub fn put_seq_with<T>(
        &mut self,
        items: impl ExactSizeIterator<Item = T>,
        mut f: impl FnMut(&mut Self, T),
    ) {
        self.put(&(items.len() as u64));
        for item in items {
            f(self, item);
        }
    }

    fn raw(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
}

/// Deserializer for one snapshot section. Carries the section name so
/// every decoding failure is attributed to the section it happened in.
#[derive(Debug)]
pub struct SnapReader<'a> {
    section: String,
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// A reader over `buf`, reporting errors against `section`.
    pub fn new(section: impl Into<String>, buf: &'a [u8]) -> Self {
        SnapReader {
            section: section.into(),
            buf,
            pos: 0,
        }
    }

    /// The section this reader decodes.
    pub fn section(&self) -> &str {
        &self.section
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated {
                section: self.section.clone(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Decodes any [`Snap`] value.
    pub fn get<T: Snap>(&mut self) -> Result<T, SnapshotError> {
        T::load(self)
    }

    /// Decodes a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let n = self.get::<u64>()?;
        let n = usize::try_from(n)
            .map_err(|_| SnapshotError::malformed(&self.section, "length overflows usize"))?;
        self.take(n)
    }

    /// Decodes a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, SnapshotError> {
        let section = self.section.clone();
        let b = self.get_bytes()?;
        String::from_utf8(b.to_vec())
            .map_err(|_| SnapshotError::malformed(section, "string is not UTF-8"))
    }

    /// Decodes a count-prefixed sequence through a closure.
    pub fn get_seq_with<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> Result<T, SnapshotError>,
    ) -> Result<Vec<T>, SnapshotError> {
        let n = self.get_len()?;
        let mut out = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            out.push(f(self)?);
        }
        Ok(out)
    }

    /// Decodes a u64 count and bounds-checks it against the remaining
    /// bytes (each element needs at least one byte), so a corrupted
    /// length cannot drive a huge allocation.
    pub fn get_len(&mut self) -> Result<usize, SnapshotError> {
        let n = self.get::<u64>()?;
        let n = usize::try_from(n)
            .map_err(|_| SnapshotError::malformed(&self.section, "count overflows usize"))?;
        if n > self.remaining() && n > 0 {
            // Elements occupy >= 1 byte each except zero-sized unit-like
            // encodings, which the simulator never uses.
            return Err(SnapshotError::Truncated {
                section: self.section.clone(),
            });
        }
        Ok(n)
    }

    /// A malformed-data error attributed to this reader's section.
    pub fn malformed(&self, detail: impl Into<String>) -> SnapshotError {
        SnapshotError::malformed(&self.section, detail)
    }

    /// Fails if any bytes are left unconsumed — a decoder that asks for
    /// less than was written has a schema bug, not just stale data.
    pub fn finish(&self) -> Result<(), SnapshotError> {
        if self.remaining() != 0 {
            return Err(SnapshotError::malformed(
                &self.section,
                format!("{} trailing bytes after decode", self.remaining()),
            ));
        }
        Ok(())
    }
}

/// A value with a canonical, self-describing binary encoding.
///
/// `load(save(v)) == v`, and `save` is a pure function of the value —
/// the two properties byte-identical restore rests on.
pub trait Snap: Sized {
    /// Appends the encoding of `self` to `w`.
    fn save(&self, w: &mut SnapWriter);
    /// Decodes a value from `r`.
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError>;
}

macro_rules! snap_int {
    ($($t:ty),*) => {$(
        impl Snap for $t {
            fn save(&self, w: &mut SnapWriter) {
                w.raw(&self.to_le_bytes());
            }
            fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
                let b = r.take(std::mem::size_of::<$t>())?;
                Ok(<$t>::from_le_bytes(b.try_into().expect("sized take")))
            }
        }
    )*};
}

snap_int!(u8, u16, u32, u64, u128, i64);

impl Snap for usize {
    fn save(&self, w: &mut SnapWriter) {
        (*self as u64).save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let v = u64::load(r)?;
        usize::try_from(v).map_err(|_| r.malformed("usize overflow"))
    }
}

impl Snap for bool {
    fn save(&self, w: &mut SnapWriter) {
        w.raw(&[u8::from(*self)]);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        match u8::load(r)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(r.malformed(format!("bool byte {other}"))),
        }
    }
}

impl Snap for f64 {
    fn save(&self, w: &mut SnapWriter) {
        self.to_bits().save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(f64::from_bits(u64::load(r)?))
    }
}

impl Snap for String {
    fn save(&self, w: &mut SnapWriter) {
        w.put_str(self);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        r.get_str()
    }
}

impl<T: Snap> Snap for Option<T> {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            None => w.put(&0u8),
            Some(v) => {
                w.put(&1u8);
                w.put(v);
            }
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        match u8::load(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::load(r)?)),
            other => Err(r.malformed(format!("Option tag {other}"))),
        }
    }
}

impl<T: Snap> Snap for Vec<T> {
    fn save(&self, w: &mut SnapWriter) {
        w.put(&(self.len() as u64));
        for v in self {
            w.put(v);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let n = r.get_len()?;
        let mut out = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            out.push(T::load(r)?);
        }
        Ok(out)
    }
}

impl<T: Snap> Snap for VecDeque<T> {
    fn save(&self, w: &mut SnapWriter) {
        w.put(&(self.len() as u64));
        for v in self {
            w.put(v);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Vec::<T>::load(r)?.into())
    }
}

impl<K: Snap + Ord, V: Snap> Snap for BTreeMap<K, V> {
    fn save(&self, w: &mut SnapWriter) {
        w.put(&(self.len() as u64));
        for (k, v) in self {
            w.put(k);
            w.put(v);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let n = r.get_len()?;
        let mut out = BTreeMap::new();
        for _ in 0..n {
            let k = K::load(r)?;
            let v = V::load(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<T: Snap + Ord> Snap for BTreeSet<T> {
    fn save(&self, w: &mut SnapWriter) {
        w.put(&(self.len() as u64));
        for v in self {
            w.put(v);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let n = r.get_len()?;
        let mut out = BTreeSet::new();
        for _ in 0..n {
            out.insert(T::load(r)?);
        }
        Ok(out)
    }
}

impl<A: Snap, B: Snap> Snap for (A, B) {
    fn save(&self, w: &mut SnapWriter) {
        w.put(&self.0);
        w.put(&self.1);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok((A::load(r)?, B::load(r)?))
    }
}

impl<A: Snap, B: Snap, C: Snap> Snap for (A, B, C) {
    fn save(&self, w: &mut SnapWriter) {
        w.put(&self.0);
        w.put(&self.1);
        w.put(&self.2);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok((A::load(r)?, B::load(r)?, C::load(r)?))
    }
}

impl<T: Snap, const N: usize> Snap for [T; N] {
    fn save(&self, w: &mut SnapWriter) {
        for v in self {
            w.put(v);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(T::load(r)?);
        }
        out.try_into()
            .map_err(|_| r.malformed("array length mismatch"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Snap + PartialEq + std::fmt::Debug>(v: T) {
        let mut w = SnapWriter::new();
        w.put(&v);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new("test", &bytes);
        assert_eq!(r.get::<T>().unwrap(), v);
        r.finish().unwrap();
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(u64::MAX);
        roundtrip(u128::MAX - 7);
        roundtrip(-42i64);
        roundtrip(true);
        roundtrip(3.25f64);
        roundtrip(f64::NEG_INFINITY);
        roundtrip(String::from("héllo"));
        roundtrip(usize::MAX);
    }

    #[test]
    fn nan_bits_roundtrip() {
        let v = f64::from_bits(0x7FF8_0000_0000_1234);
        let mut w = SnapWriter::new();
        w.put(&v);
        let mut r = SnapReader::new("test", w.into_bytes().leak());
        assert_eq!(r.get::<f64>().unwrap().to_bits(), v.to_bits());
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(VecDeque::from([9u32, 8]));
        roundtrip(Some(7u8));
        roundtrip(Option::<u8>::None);
        roundtrip(BTreeMap::from([(1u64, 2u64), (3, 4)]));
        roundtrip(BTreeSet::from([5u32, 6]));
        roundtrip((1u8, 2u16, 3u32));
        roundtrip([1u64, 2, 3]);
    }

    #[test]
    fn truncation_detected() {
        let mut w = SnapWriter::new();
        w.put(&12345678u64);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new("queue", &bytes[..4]);
        match r.get::<u64>() {
            Err(SnapshotError::Truncated { section }) => assert_eq!(section, "queue"),
            other => panic!("expected truncation, got {other:?}"),
        }
    }

    #[test]
    fn huge_count_rejected() {
        let mut w = SnapWriter::new();
        w.put(&u64::MAX);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new("s", &bytes);
        assert!(r.get::<Vec<u64>>().is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut w = SnapWriter::new();
        w.put(&1u8);
        w.put(&2u8);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new("s", &bytes);
        let _ = r.get::<u8>().unwrap();
        assert!(r.finish().is_err());
    }

    #[test]
    fn bad_bool_rejected() {
        let mut r = SnapReader::new("s", &[7u8]);
        assert!(r.get::<bool>().is_err());
    }

    #[test]
    fn seq_with_closure() {
        let mut w = SnapWriter::new();
        w.put_seq_with([10u64, 20].iter(), |w, v| w.put(v));
        let bytes = w.into_bytes();
        let mut r = SnapReader::new("s", &bytes);
        let out = r.get_seq_with(|r| r.get::<u64>()).unwrap();
        assert_eq!(out, vec![10, 20]);
    }
}
