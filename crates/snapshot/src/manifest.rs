//! Session manifests: the small, CRC-verified sidecar file a service
//! (`ringd`) leaves next to a session's checkpoint trail.
//!
//! A checkpoint (`.ringsnap`) captures machine *state* but deliberately
//! not the run's *provenance* — which workload spec produced it, what
//! the session was called, when it was admitted. The manifest records
//! exactly that, as an order-stable string key/value map plus the two
//! hashes restore uses to refuse mismatched state, so a daemon killed
//! with `kill -9` can rediscover every session from its state directory
//! alone and rebuild the machine the snapshot belongs to.
//!
//! The format mirrors the snapshot container's discipline in miniature:
//! magic, schema version, CRC over the payload, atomic writes, and the
//! same typed [`SnapshotError`] on every failure path.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

use crate::{crc32, SnapReader, SnapWriter, SnapshotError};

/// File magic of a manifest.
pub const MANIFEST_MAGIC: [u8; 8] = *b"RINGMETA";

/// Manifest schema version; bumped on breaking layout changes.
pub const MANIFEST_VERSION: u32 = 1;

/// Section name manifests report corruption against.
const SECTION: &str = "manifest";

/// Provenance of one simulation session.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SessionManifest {
    /// Daemon-assigned session identifier (also its directory name).
    pub session: String,
    /// Hash of the machine configuration the session runs under (the
    /// same `config_hash` bound into snapshot headers) — must match the
    /// snapshots beside it.
    pub config_hash: u64,
    /// Workload fingerprint of the profile driving the cores.
    pub workload_fingerprint: u64,
    /// Caller-defined fields (workload spec, admission time, protocol
    /// name …), kept in a `BTreeMap` so encoding order — and therefore
    /// the file's bytes — never depend on insertion history.
    pub fields: BTreeMap<String, String>,
}

impl SessionManifest {
    /// Encodes the manifest: magic, version, CRC-protected payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.put(&MANIFEST_VERSION);
        w.put_str(&self.session);
        w.put(&self.config_hash);
        w.put(&self.workload_fingerprint);
        w.put(&(self.fields.len() as u64));
        for (k, v) in &self.fields {
            w.put_str(k);
            w.put_str(v);
        }
        let payload = w.into_bytes();
        let mut out = Vec::with_capacity(MANIFEST_MAGIC.len() + 12 + payload.len());
        out.extend_from_slice(&MANIFEST_MAGIC);
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&payload);
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out
    }

    /// Decodes and CRC-verifies a manifest image.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::BadMagic`] for a non-manifest, `Truncated` /
    /// `CorruptSection` (section `"manifest"`) for damage,
    /// `BadVersion` for a future schema.
    pub fn decode(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let truncated = || SnapshotError::Truncated {
            section: SECTION.into(),
        };
        if bytes.len() < MANIFEST_MAGIC.len() + 8 {
            return Err(truncated());
        }
        if bytes[..MANIFEST_MAGIC.len()] != MANIFEST_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let mut len8 = [0u8; 8];
        len8.copy_from_slice(&bytes[MANIFEST_MAGIC.len()..MANIFEST_MAGIC.len() + 8]);
        let payload_len = u64::from_le_bytes(len8) as usize;
        let start = MANIFEST_MAGIC.len() + 8;
        let end = start.checked_add(payload_len).ok_or_else(truncated)?;
        if bytes.len() < end + 4 {
            return Err(truncated());
        }
        let payload = &bytes[start..end];
        let mut crc4 = [0u8; 4];
        crc4.copy_from_slice(&bytes[end..end + 4]);
        if crc32(payload) != u32::from_le_bytes(crc4) {
            return Err(SnapshotError::CorruptSection {
                section: SECTION.into(),
            });
        }
        let mut r = SnapReader::new(SECTION, payload);
        let version: u32 = r.get()?;
        if version != MANIFEST_VERSION {
            return Err(SnapshotError::BadVersion {
                found: version,
                expected: MANIFEST_VERSION,
            });
        }
        let session = r.get_str()?;
        let config_hash: u64 = r.get()?;
        let workload_fingerprint: u64 = r.get()?;
        let n = r.get_len()?;
        let mut fields = BTreeMap::new();
        for _ in 0..n {
            let k = r.get_str()?;
            let v = r.get_str()?;
            fields.insert(k, v);
        }
        r.finish()?;
        Ok(SessionManifest {
            session,
            config_hash,
            workload_fingerprint,
            fields,
        })
    }

    /// Reads and verifies a manifest from disk.
    ///
    /// # Errors
    ///
    /// I/O failures as [`SnapshotError::Io`], everything else as in
    /// [`SessionManifest::decode`].
    pub fn read(path: &Path) -> Result<Self, SnapshotError> {
        let bytes =
            std::fs::read(path).map_err(|e| SnapshotError::io(path.display().to_string(), e))?;
        Self::decode(&bytes)
    }

    /// Writes the manifest atomically (temp file + fsync + rename), the
    /// same discipline as snapshot files: a crash mid-write leaves the
    /// old manifest or the new one, never a torn mix.
    ///
    /// # Errors
    ///
    /// Filesystem failures as [`SnapshotError::Io`].
    pub fn write_atomic(&self, path: &Path) -> Result<(), SnapshotError> {
        let bytes = self.encode();
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)
                .map_err(|e| SnapshotError::io(tmp.display().to_string(), e))?;
            f.write_all(&bytes)
                .map_err(|e| SnapshotError::io(tmp.display().to_string(), e))?;
            f.sync_all()
                .map_err(|e| SnapshotError::io(tmp.display().to_string(), e))?;
        }
        std::fs::rename(&tmp, path)
            .map_err(|e| SnapshotError::io(path.display().to_string(), e))?;
        if let Some(dir) = path.parent() {
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest() -> SessionManifest {
        let mut fields = BTreeMap::new();
        fields.insert("app".to_string(), "fmm".to_string());
        fields.insert("protocol".to_string(), "uncorq".to_string());
        fields.insert("seed".to_string(), "2007".to_string());
        SessionManifest {
            session: "s-0001".to_string(),
            config_hash: 0xDEAD_BEEF_0000_0001,
            workload_fingerprint: 0x1234_5678_9ABC_DEF0,
            fields,
        }
    }

    #[test]
    fn roundtrip() {
        let m = manifest();
        let decoded = SessionManifest::decode(&m.encode()).unwrap();
        assert_eq!(decoded, m);
    }

    #[test]
    fn encoding_is_insertion_order_independent() {
        let a = manifest();
        let mut b = SessionManifest {
            session: a.session.clone(),
            config_hash: a.config_hash,
            workload_fingerprint: a.workload_fingerprint,
            fields: BTreeMap::new(),
        };
        // Insert in reverse order; bytes must be identical.
        for (k, v) in a.fields.iter().rev() {
            b.fields.insert(k.clone(), v.clone());
        }
        assert_eq!(a.encode(), b.encode());
    }

    #[test]
    fn corruption_is_typed() {
        let bytes = manifest().encode();
        assert!(matches!(
            SessionManifest::decode(b"not a manifest at all"),
            Err(SnapshotError::BadMagic)
        ));
        assert!(matches!(
            SessionManifest::decode(&bytes[..bytes.len() / 2]),
            Err(SnapshotError::Truncated { .. })
        ));
        let mut flipped = bytes.clone();
        let n = flipped.len();
        flipped[n - 6] ^= 0x10; // inside the payload
        assert!(matches!(
            SessionManifest::decode(&flipped),
            Err(SnapshotError::CorruptSection { .. })
        ));
    }

    #[test]
    fn future_version_is_rejected() {
        let m = manifest();
        let mut bytes = m.encode();
        // The version is the first u32 of the payload (offset 16); bump
        // it and fix the CRC so only the version check can object.
        bytes[16] = 9;
        let payload_len = bytes.len() - MANIFEST_MAGIC.len() - 8 - 4;
        let start = MANIFEST_MAGIC.len() + 8;
        let crc = crc32(&bytes[start..start + payload_len]);
        let end = start + payload_len;
        bytes[end..end + 4].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            SessionManifest::decode(&bytes),
            Err(SnapshotError::BadVersion { found: 9, .. })
        ));
    }

    #[test]
    fn write_read_roundtrip() {
        let dir = std::env::temp_dir().join("ring-manifest-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("session.ringmeta");
        let m = manifest();
        m.write_atomic(&path).unwrap();
        assert_eq!(SessionManifest::read(&path).unwrap(), m);
        assert!(!path.with_extension("tmp").exists(), "tmp must be renamed");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
