//! The on-disk container: header + section table + CRC-verified
//! payloads, written atomically.

use crate::{crc32, SnapReader, SnapWriter, SnapshotError};
use std::io::Write;
use std::path::Path;

/// File magic: the first eight bytes of every snapshot.
pub const MAGIC: [u8; 8] = *b"RINGSNAP";

/// Schema version this build writes and accepts. Bumped on any breaking
/// change to the section layout; old snapshots are rejected with
/// [`SnapshotError::BadVersion`] rather than misdecoded.
pub const SCHEMA_VERSION: u32 = 1;

/// Snapshot provenance: what produced this file and where in the run it
/// was taken.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotHeader {
    /// `git rev-parse --short=12 HEAD` of the build (or `"unknown"`).
    pub git_commit: String,
    /// Hash of the machine configuration the run used; restore refuses a
    /// mismatch.
    pub config_hash: u64,
    /// Simulated cycle the snapshot was taken at.
    pub cycle: u64,
}

/// Accumulates named sections and encodes/writes the snapshot file.
#[derive(Debug)]
pub struct SnapshotBuilder {
    header: SnapshotHeader,
    sections: Vec<(String, Vec<u8>)>,
}

impl SnapshotBuilder {
    /// A builder with no sections yet.
    pub fn new(header: SnapshotHeader) -> Self {
        SnapshotBuilder {
            header,
            sections: Vec::new(),
        }
    }

    /// The header this builder will write (e.g. to derive a
    /// cycle-stamped file name before encoding).
    pub fn header(&self) -> &SnapshotHeader {
        &self.header
    }

    /// Adds a section; `f` serializes its payload.
    pub fn section(&mut self, name: &str, f: impl FnOnce(&mut SnapWriter)) {
        let mut w = SnapWriter::new();
        f(&mut w);
        self.sections.push((name.to_string(), w.into_bytes()));
    }

    /// Encodes the complete snapshot file.
    pub fn encode(&self) -> Vec<u8> {
        let mut header = SnapWriter::new();
        header.put(&SCHEMA_VERSION);
        header.put_str(&self.header.git_commit);
        header.put(&self.header.config_hash);
        header.put(&self.header.cycle);
        header.put(&(self.sections.len() as u64));
        for (name, payload) in &self.sections {
            header.put_str(name);
            header.put(&(payload.len() as u64));
            header.put(&crc32(payload));
        }
        let header = header.into_bytes();

        let mut out = Vec::with_capacity(
            MAGIC.len()
                + 8
                + header.len()
                + 4
                + self.sections.iter().map(|(_, p)| p.len()).sum::<usize>(),
        );
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&(header.len() as u64).to_le_bytes());
        out.extend_from_slice(&header);
        out.extend_from_slice(&crc32(&header).to_le_bytes());
        for (_, payload) in &self.sections {
            out.extend_from_slice(payload);
        }
        out
    }

    /// Writes the snapshot atomically: encode to `<path>.tmp`, fsync,
    /// rename over `path`, fsync the directory. A crash at any point
    /// leaves either the old file or the new one — never a torn mix.
    pub fn write_atomic(&self, path: &Path) -> Result<(), SnapshotError> {
        let bytes = self.encode();
        let display = path.display().to_string();
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)
                .map_err(|e| SnapshotError::io(tmp.display().to_string(), e))?;
            f.write_all(&bytes)
                .map_err(|e| SnapshotError::io(tmp.display().to_string(), e))?;
            f.sync_all()
                .map_err(|e| SnapshotError::io(tmp.display().to_string(), e))?;
        }
        std::fs::rename(&tmp, path).map_err(|e| SnapshotError::io(&display, e))?;
        // Persist the rename itself. Best-effort: some filesystems do
        // not allow opening a directory for sync.
        if let Some(dir) = path.parent() {
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }
}

/// A decoded, fully CRC-verified snapshot file.
#[derive(Debug, Clone)]
pub struct SnapshotFile {
    /// Provenance header.
    pub header: SnapshotHeader,
    sections: Vec<(String, Vec<u8>)>,
}

impl SnapshotFile {
    /// Reads and verifies a snapshot from disk.
    pub fn read(path: &Path) -> Result<Self, SnapshotError> {
        let bytes =
            std::fs::read(path).map_err(|e| SnapshotError::io(path.display().to_string(), e))?;
        Self::decode(&bytes)
    }

    /// Decodes and verifies a snapshot image: magic, header CRC, schema
    /// version, then every section's length and CRC. Corruption anywhere
    /// is reported against the section it damaged.
    pub fn decode(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let truncated_header = || SnapshotError::Truncated {
            section: "header".into(),
        };
        if bytes.len() < MAGIC.len() + 8 {
            return Err(truncated_header());
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let header_len =
            u64::from_le_bytes(bytes[MAGIC.len()..MAGIC.len() + 8].try_into().expect("8")) as usize;
        let header_start = MAGIC.len() + 8;
        let header_end = header_start
            .checked_add(header_len)
            .ok_or_else(truncated_header)?;
        if bytes.len() < header_end + 4 {
            return Err(truncated_header());
        }
        let header_bytes = &bytes[header_start..header_end];
        let stored_crc =
            u32::from_le_bytes(bytes[header_end..header_end + 4].try_into().expect("4"));
        if crc32(header_bytes) != stored_crc {
            return Err(SnapshotError::CorruptHeader);
        }

        let mut r = SnapReader::new("header", header_bytes);
        let schema: u32 = r.get()?;
        if schema != SCHEMA_VERSION {
            return Err(SnapshotError::BadVersion {
                found: schema,
                expected: SCHEMA_VERSION,
            });
        }
        let git_commit = r.get_str()?;
        let config_hash: u64 = r.get()?;
        let cycle: u64 = r.get()?;
        let n_sections = r.get_len()?;
        let mut table = Vec::with_capacity(n_sections);
        for _ in 0..n_sections {
            let name = r.get_str()?;
            let len: u64 = r.get()?;
            let crc: u32 = r.get()?;
            table.push((name, len as usize, crc));
        }
        r.finish()?;

        let mut pos = header_end + 4;
        let mut sections = Vec::with_capacity(table.len());
        for (name, len, crc) in table {
            let end = pos
                .checked_add(len)
                .ok_or_else(|| SnapshotError::Truncated {
                    section: name.clone(),
                })?;
            if bytes.len() < end {
                return Err(SnapshotError::Truncated { section: name });
            }
            let payload = &bytes[pos..end];
            if crc32(payload) != crc {
                return Err(SnapshotError::CorruptSection { section: name });
            }
            sections.push((name, payload.to_vec()));
            pos = end;
        }
        if pos != bytes.len() {
            return Err(SnapshotError::malformed(
                "header",
                format!("{} bytes after the last section", bytes.len() - pos),
            ));
        }
        Ok(SnapshotFile {
            header: SnapshotHeader {
                git_commit,
                config_hash,
                cycle,
            },
            sections,
        })
    }

    /// A reader over the named section.
    pub fn section(&self, name: &str) -> Result<SnapReader<'_>, SnapshotError> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(n, payload)| SnapReader::new(n.clone(), payload))
            .ok_or_else(|| SnapshotError::MissingSection {
                section: name.to_string(),
            })
    }

    /// Names of all sections, in file order.
    pub fn section_names(&self) -> Vec<&str> {
        self.sections.iter().map(|(n, _)| n.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut b = SnapshotBuilder::new(SnapshotHeader {
            git_commit: "deadbeef".into(),
            config_hash: 0x1234,
            cycle: 99,
        });
        b.section("alpha", |w| w.put(&1u64));
        b.section("beta", |w| {
            w.put(&vec![7u8, 8, 9]);
        });
        b.encode()
    }

    #[test]
    fn roundtrip() {
        let f = SnapshotFile::decode(&sample()).unwrap();
        assert_eq!(f.header.git_commit, "deadbeef");
        assert_eq!(f.header.config_hash, 0x1234);
        assert_eq!(f.header.cycle, 99);
        assert_eq!(f.section_names(), vec!["alpha", "beta"]);
        let mut r = f.section("alpha").unwrap();
        assert_eq!(r.get::<u64>().unwrap(), 1);
        r.finish().unwrap();
    }

    #[test]
    fn bad_magic() {
        let mut bytes = sample();
        bytes[0] = b'X';
        assert!(matches!(
            SnapshotFile::decode(&bytes),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn every_payload_bit_flip_is_detected_and_named() {
        let good = sample();
        let f = SnapshotFile::decode(&good).unwrap();
        // Flip one bit in each byte of the whole image; decode must fail
        // for every position (payload flips name their section).
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x10;
            assert!(
                SnapshotFile::decode(&bad).is_err(),
                "bit flip at byte {i} went undetected"
            );
        }
        drop(f);
    }

    #[test]
    fn truncation_at_every_length_is_detected() {
        let good = sample();
        for n in 0..good.len() {
            assert!(
                SnapshotFile::decode(&good[..n]).is_err(),
                "truncation to {n} bytes went undetected"
            );
        }
    }

    #[test]
    fn missing_section() {
        let f = SnapshotFile::decode(&sample()).unwrap();
        assert!(matches!(
            f.section("gamma"),
            Err(SnapshotError::MissingSection { .. })
        ));
    }

    #[test]
    fn version_gate() {
        let mut b = sample();
        // Schema version is the first header field, at offset 16.
        b[16] = 0xFE;
        // CRC now mismatches; rewriting the CRC to match must then trip
        // the version gate instead.
        let header_len = u64::from_le_bytes(b[8..16].try_into().unwrap()) as usize;
        let crc = crate::crc32(&b[16..16 + header_len]);
        b[16 + header_len..16 + header_len + 4].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            SnapshotFile::decode(&b),
            Err(SnapshotError::BadVersion { .. })
        ));
    }

    #[test]
    fn atomic_write_reads_back() {
        let dir = std::env::temp_dir().join("ring-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.ringsnap");
        let mut b = SnapshotBuilder::new(SnapshotHeader {
            git_commit: "x".into(),
            config_hash: 1,
            cycle: 2,
        });
        b.section("s", |w| w.put(&5u8));
        b.write_atomic(&path).unwrap();
        let f = SnapshotFile::read(&path).unwrap();
        assert_eq!(f.header.cycle, 2);
        std::fs::remove_file(&path).unwrap();
    }
}
