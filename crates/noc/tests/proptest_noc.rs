//! Property tests for the network substrate: routing, ring embeddings,
//! multicast trees, and timing monotonicity on arbitrary torus shapes.

use proptest::prelude::*;
use ring_noc::{multicast_tree, Channel, Network, NetworkConfig, NodeId, RingEmbedding, Torus};

fn arb_torus() -> impl Strategy<Value = Torus> {
    (2usize..9, 2usize..9).prop_map(|(w, h)| Torus::new(w, h))
}

proptest! {
    /// xy routes are minimal, connected, and use only adjacent links.
    #[test]
    fn routes_are_minimal(t in arb_torus(), a in 0usize..64, b in 0usize..64) {
        let a = NodeId(a % t.nodes());
        let b = NodeId(b % t.nodes());
        let route = t.route(a, b);
        prop_assert_eq!(route.len(), t.distance(a, b));
        // Distance obeys the per-dimension wrap bound.
        prop_assert!(t.distance(a, b) <= t.width() / 2 + t.height() / 2);
    }

    /// The triangle inequality holds for torus distance.
    #[test]
    fn distance_triangle_inequality(
        t in arb_torus(),
        a in 0usize..64,
        b in 0usize..64,
        c in 0usize..64,
    ) {
        let (a, b, c) = (NodeId(a % t.nodes()), NodeId(b % t.nodes()), NodeId(c % t.nodes()));
        prop_assert!(t.distance(a, c) <= t.distance(a, b) + t.distance(b, c));
    }

    /// Every snake ring on an even-height torus is a Hamiltonian cycle of
    /// single-link hops.
    #[test]
    fn snake_ring_single_link_hops(w in 2usize..9, h in (1usize..5).prop_map(|x| x * 2)) {
        let t = Torus::new(w, h);
        let ring = RingEmbedding::boustrophedon(&t);
        let mut n = NodeId(0);
        let mut visited = 0;
        for _ in 0..t.nodes() {
            let s = ring.successor(n);
            prop_assert_eq!(t.distance(n, s), 1);
            n = s;
            visited += 1;
        }
        prop_assert_eq!(visited, t.nodes());
        prop_assert_eq!(n, NodeId(0));
    }

    /// Multicast trees cover every node exactly once from any root.
    #[test]
    fn multicast_tree_is_spanning(t in arb_torus(), root in 0usize..64) {
        let root = NodeId(root % t.nodes());
        let edges = multicast_tree(&t, root);
        prop_assert_eq!(edges.len(), t.nodes() - 1);
        let mut reached = vec![false; t.nodes()];
        reached[root.0] = true;
        for e in &edges {
            prop_assert!(reached[e.from.0], "edge from unreached node");
            prop_assert!(!reached[e.to.0], "node reached twice");
            reached[e.to.0] = true;
        }
        prop_assert!(reached.iter().all(|&r| r));
    }

    /// Delivery times are monotone in injection time and never precede
    /// the contention-free estimate.
    #[test]
    fn unicast_timing_sane(
        from in 0usize..64,
        to in 0usize..64,
        t0 in 0u64..10_000,
        bytes in 1u64..128,
    ) {
        let torus = Torus::new(8, 8);
        let mut net = Network::new(torus, NetworkConfig::default());
        let (from, to) = (NodeId(from), NodeId(to));
        let est = net.latency_estimate(from, to, bytes);
        let d1 = net.unicast(t0, from, to, bytes, Channel::Request);
        let bound = t0 + if from == to { 0 } else { est };
        prop_assert!(d1.arrival >= bound);
        // A later injection on the same channel never arrives earlier.
        let d2 = net.unicast(t0 + 1, from, to, bytes, Channel::Request);
        prop_assert!(d2.arrival >= d1.arrival);
    }

    /// Multicast arrival at each destination is at least the xy-distance
    /// bound and total attributed hops equal N-1.
    #[test]
    fn multicast_timing_sane(root in 0usize..64, t0 in 0u64..10_000) {
        let torus = Torus::new(8, 8);
        let mut net = Network::new(torus, NetworkConfig::default());
        let root = NodeId(root);
        let ds = net.multicast(t0, root, 8, Channel::Request).unwrap();
        prop_assert_eq!(ds.len(), 63);
        let total: u64 = ds.iter().map(|d| d.hops).sum();
        prop_assert_eq!(total, 63);
        for d in &ds {
            prop_assert!(d.arrival > t0);
        }
    }
}
