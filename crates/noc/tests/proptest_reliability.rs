//! Property tests for the reliable-delivery sublayer: exactly-once,
//! in-order delivery must survive arbitrary per-link drop rates (up to
//! 50%) and arbitrary link-outage windows, and the retransmission
//! backoff schedule must be a pure function of the seed.

use proptest::prelude::*;
use ring_noc::{
    Channel, FaultPlan, FaultProfile, FlowKey, FrameId, Network, NetworkConfig, NodeId, RelAction,
    ReliabilityConfig, ReliableTransport, Torus,
};
use ring_sim::{Cycle, EventQueue};

/// One logical message in a generated workload.
#[derive(Debug, Clone, Copy)]
struct Send {
    at: Cycle,
    from: NodeId,
    to: NodeId,
    val: u64,
}

fn lossy_net(profile: FaultProfile, seed: u64) -> Network {
    let mut net = Network::new(Torus::new(4, 4), NetworkConfig::default());
    net.set_fault_plan(FaultPlan::new(profile, seed));
    net
}

/// Drives a transport + network to quiescence through an event queue,
/// returning `(from, to, payload)` for every delivery in order.
fn run_to_quiescence(
    tp: &mut ReliableTransport<u64>,
    net: &mut Network,
    sends: &[Send],
    limit: Cycle,
) -> Vec<(NodeId, NodeId, u64)> {
    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Ev {
        Send(NodeId, NodeId, u64),
        Wire(FrameId),
        Timer(FlowKey),
        AckTimer(FlowKey),
    }
    let mut q: EventQueue<Ev> = EventQueue::new();
    for s in sends {
        q.schedule(s.at, Ev::Send(s.from, s.to, s.val));
    }
    let mut delivered = Vec::new();
    let mut acts = Vec::new();
    while let Some((now, ev)) = q.pop() {
        assert!(now <= limit, "harness ran past cycle limit {limit}");
        match ev {
            Ev::Send(from, to, val) => {
                tp.send(net, now, from, to, Channel::Request, 8, 0, val, &mut acts)
            }
            Ev::Wire(f) => tp.on_wire(net, now, f, &mut acts),
            Ev::Timer(fl) => tp.on_timer(net, now, fl, &mut acts),
            Ev::AckTimer(fl) => tp.on_ack_timer(net, now, fl, &mut acts),
        }
        for a in acts.drain(..) {
            match a {
                RelAction::Wire { at, frame } => q.schedule(at.max(now + 1), Ev::Wire(frame)),
                RelAction::Timer { at, flow } => q.schedule(at, Ev::Timer(flow)),
                RelAction::AckTimer { at, flow } => q.schedule(at, Ev::AckTimer(flow)),
                RelAction::Deliver {
                    to, from, payload, ..
                } => delivered.push((from, to, payload)),
                RelAction::Sent { .. }
                | RelAction::Retransmitted { .. }
                | RelAction::Dropped { .. } => {}
            }
        }
    }
    assert!(
        tp.idle(),
        "transport still has unacked frames at quiescence"
    );
    delivered
}

/// Builds a workload over a handful of node pairs; payloads encode
/// `(pair, index)` so per-flow order is checkable after the fact.
fn workload(pairs: &[(usize, usize)], per_pair: u64, gap: Cycle) -> Vec<Send> {
    let mut sends = Vec::new();
    for (p, &(a, b)) in pairs.iter().enumerate() {
        for i in 0..per_pair {
            sends.push(Send {
                at: i * gap + p as Cycle,
                from: NodeId(a),
                to: NodeId(b),
                val: (p as u64) << 32 | i,
            });
        }
    }
    sends
}

/// Every payload arrives exactly once, and per (src, dst) flow the
/// payload indices appear in issue order.
fn assert_exactly_once_in_order(sends: &[Send], delivered: &[(NodeId, NodeId, u64)]) {
    assert_eq!(
        delivered.len(),
        sends.len(),
        "delivered {} of {} sends",
        delivered.len(),
        sends.len()
    );
    let mut seen = std::collections::HashSet::new();
    for &(_, _, v) in delivered {
        assert!(seen.insert(v), "payload {v:#x} delivered twice");
    }
    let mut per_flow: std::collections::HashMap<(NodeId, NodeId), Vec<u64>> =
        std::collections::HashMap::new();
    for &(f, t, v) in delivered {
        per_flow.entry((f, t)).or_default().push(v & 0xFFFF_FFFF);
    }
    for ((f, t), vals) in &per_flow {
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        assert_eq!(vals, &sorted, "flow n{}->n{} out of order", f.0, t.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary drop rates up to 50% never lose, duplicate, or reorder
    /// a message at the delivery boundary.
    #[test]
    fn exactly_once_under_random_drop_rate(
        drop in 0.0f64..0.5,
        seed in 1u64..10_000,
        a in 0usize..16,
        b in 0usize..16,
    ) {
        let b = if a == b { (b + 1) % 16 } else { b };
        let mut net = lossy_net(FaultProfile::drop_rate(drop), seed);
        let mut tp: ReliableTransport<u64> =
            ReliableTransport::new(ReliabilityConfig::on(), seed);
        let sends = workload(&[(a, b), (b, a)], 25, 40);
        let delivered = run_to_quiescence(&mut tp, &mut net, &sends, 100_000_000);
        assert_exactly_once_in_order(&sends, &delivered);
        prop_assert_eq!(tp.stats().delivered, sends.len() as u64);
    }

    /// Arbitrary outage windows (period and length drawn at random,
    /// optionally stacked on a drop rate) are survived: once the link
    /// rota brings a link back up, retransmission drains the backlog.
    #[test]
    fn exactly_once_under_random_outage_windows(
        period in 1_000u64..20_000,
        len_frac in 0.1f64..0.8,
        drop in 0.0f64..0.2,
        seed in 1u64..10_000,
    ) {
        let profile = FaultProfile {
            outage_period: period,
            outage_len: ((period as f64 * len_frac) as Cycle).max(1),
            ..FaultProfile::drop_rate(drop)
        };
        let mut net = lossy_net(profile, seed);
        let mut tp: ReliableTransport<u64> =
            ReliableTransport::new(ReliabilityConfig::on(), seed);
        // Spray across pairs so some traffic crosses whichever links the
        // rota takes down.
        let sends = workload(&[(0, 15), (3, 12), (7, 8), (14, 1)], 15, 120);
        let delivered = run_to_quiescence(&mut tp, &mut net, &sends, 200_000_000);
        assert_exactly_once_in_order(&sends, &delivered);
    }

    /// The whole lossy run — deliveries, retransmit counts, final stats —
    /// is a pure function of the (network seed, transport seed) pair.
    #[test]
    fn lossy_runs_replay_byte_identically(
        drop in 0.05f64..0.5,
        seed in 1u64..10_000,
    ) {
        let run = |net_seed: u64, tp_seed: u64| {
            let mut net = lossy_net(FaultProfile::drop_rate(drop), net_seed);
            let mut tp: ReliableTransport<u64> =
                ReliableTransport::new(ReliabilityConfig::on(), tp_seed);
            let sends = workload(&[(2, 13), (13, 2)], 20, 60);
            let delivered = run_to_quiescence(&mut tp, &mut net, &sends, 100_000_000);
            (delivered, *tp.stats())
        };
        let first = run(seed, seed);
        let second = run(seed, seed);
        prop_assert_eq!(&first.0, &second.0, "deliveries diverged across replays");
        prop_assert_eq!(first.1, second.1, "transport stats diverged across replays");
    }
}
