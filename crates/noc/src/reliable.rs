//! Reliable-delivery sublayer: exactly-once, in-order delivery over
//! lossy links.
//!
//! The coherence protocols above the network assume every message sent
//! is eventually delivered, exactly once, and that ring (`r`) messages
//! between ring neighbours arrive in FIFO order — the Ordering invariant
//! and the LTT construction both lean on this. When the fault model
//! destroys frames in flight (probabilistic per-link drops, scheduled
//! link outages), that assumption breaks *unless* something below the
//! protocol restores it.
//!
//! [`ReliableTransport`] is that something: a per-flow ARQ sublayer
//! sitting between the machine and the [`Network`] wire model.
//!
//! - A **flow** is a `(src, dst, channel)` triple ([`FlowKey`]). Each
//!   flow numbers its frames with consecutive sequence numbers starting
//!   at 0.
//! - The sender keeps a bounded in-flight **window** per flow; frames
//!   beyond the window queue behind it in send order, so a flow's wire
//!   order always matches its send order.
//! - Every in-flight frame sits in a **retransmit buffer** until a
//!   cumulative ack covers it. A timeout on the oldest unacked frame
//!   retransmits it with deterministic **exponential backoff** plus
//!   seeded jitter (drawn from the transport's own [`DetRng`] fork, so
//!   retransmission never perturbs any other random stream).
//! - The receiver delivers in order: the expected sequence is handed up
//!   immediately, later sequences park in a bounded reorder buffer,
//!   earlier ones are duplicates and are discarded (re-acked). This is
//!   what makes delivery **exactly-once and in-order** per flow — dupes
//!   created by retransmission die here, below the protocol.
//! - Acks are **cumulative** ("everything below `n` is received") and
//!   ride piggybacked on reverse-direction data frames when reverse
//!   traffic exists; otherwise a standalone ack goes out after an
//!   ack-coalescing timeout. Acks themselves may be dropped: because
//!   they are cumulative, any later ack (or a re-ack provoked by a
//!   duplicate data frame) covers for a lost one.
//! - After `max_retries` attempts a flow is marked **degraded**:
//!   retransmission keeps going (the frame may still get through when an
//!   outage window ends), but the machine stops counting those
//!   retransmits as forward progress, so a permanently dead link still
//!   trips the watchdog — with per-flow attribution in the stall report
//!   instead of a silent hang.
//!
//! The transport is pure state machine: it never owns an event queue.
//! Every call returns [`RelAction`]s telling the caller what to
//! schedule ([`RelAction::Wire`], [`RelAction::Timer`],
//! [`RelAction::AckTimer`]), what to hand up ([`RelAction::Deliver`]),
//! and what to trace. That keeps the sublayer independently testable
//! and keeps all event ordering in the caller's deterministic queue.

use std::collections::{BTreeMap, VecDeque};

use ring_sim::{Cycle, DetRng, FxHashMap};

use crate::fault::{FaultKind, InjectedFault};
use crate::network::{Channel, Network};
use crate::topology::NodeId;

/// Wire size of a standalone cumulative-ack frame, in bytes.
pub const ACK_BYTES: u64 = 8;

/// Configuration of the reliable-delivery sublayer.
///
/// Disabled by default ([`ReliabilityConfig::disabled`]); a disabled
/// config makes the machine skip the sublayer entirely, so the send
/// path, RNG draw sequence, and golden digests are byte-identical to a
/// build without it.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ReliabilityConfig {
    /// Route protocol messages through the reliable transport.
    pub enabled: bool,
    /// Maximum unacked frames in flight per flow; further sends queue.
    pub window: usize,
    /// Retransmission timeout for the first attempt, in cycles.
    pub base_rto: Cycle,
    /// Ceiling on the exponentially backed-off timeout, in cycles.
    pub max_rto: Cycle,
    /// Uniform jitter in `[0, rto_jitter]` cycles added to each
    /// retransmission deadline (decorrelates flows that died together).
    pub rto_jitter: Cycle,
    /// How long a receiver waits for reverse traffic to piggyback an
    /// ack before sending a standalone one, in cycles.
    pub ack_coalesce: Cycle,
    /// Attempts after which a flow counts as degraded (no longer
    /// watchdog progress). Zero means never degrade.
    pub max_retries: u32,
}

impl ReliabilityConfig {
    /// The sublayer switched off; field values are the same as
    /// [`ReliabilityConfig::on`] so flipping `enabled` is enough.
    pub fn disabled() -> Self {
        ReliabilityConfig {
            enabled: false,
            ..Self::on()
        }
    }

    /// The sublayer enabled with default tuning: window 64, base RTO
    /// 512 cycles backing off to 4096, jitter 64, ack coalescing 64,
    /// degradation after 64 attempts.
    ///
    /// The cap and retry budget are sized for the worst ring/torus
    /// round trip, not a WAN: at 64 nodes an xy route is up to 8 links,
    /// so at 20% per-link loss a data+ack round trip succeeds with only
    /// ~3% probability and a flow legitimately needs tens of attempts.
    /// A low cap (~10x the physical RTT) keeps those attempts frequent
    /// enough that recovery completes well inside a forward-progress
    /// watchdog window, and degradation stays what it means: a link
    /// that is *dead*, not merely at the lossy end of spec.
    pub fn on() -> Self {
        ReliabilityConfig {
            enabled: true,
            window: 64,
            base_rto: 512,
            max_rto: 4_096,
            rto_jitter: 64,
            ack_coalesce: 64,
            max_retries: 64,
        }
    }

    /// Validates the configuration.
    ///
    /// A disabled config is always valid (its fields are unused).
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), ReliabilityConfigError> {
        if !self.enabled {
            return Ok(());
        }
        if self.window == 0 {
            return Err(ReliabilityConfigError::ZeroWindow);
        }
        if self.base_rto == 0 {
            return Err(ReliabilityConfigError::ZeroBaseRto);
        }
        if self.max_rto < self.base_rto {
            return Err(ReliabilityConfigError::MaxRtoBelowBase);
        }
        if self.ack_coalesce == 0 {
            return Err(ReliabilityConfigError::ZeroAckCoalesce);
        }
        Ok(())
    }
}

impl Default for ReliabilityConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// A constraint violated by a [`ReliabilityConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReliabilityConfigError {
    /// `window` must be at least 1 when the sublayer is enabled.
    ZeroWindow,
    /// `base_rto` must be at least 1 cycle.
    ZeroBaseRto,
    /// `max_rto` must be at least `base_rto`.
    MaxRtoBelowBase,
    /// `ack_coalesce` must be at least 1 cycle.
    ZeroAckCoalesce,
}

impl std::fmt::Display for ReliabilityConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReliabilityConfigError::ZeroWindow => {
                write!(f, "reliability window must be at least 1 frame")
            }
            ReliabilityConfigError::ZeroBaseRto => {
                write!(f, "reliability base_rto must be at least 1 cycle")
            }
            ReliabilityConfigError::MaxRtoBelowBase => {
                write!(f, "reliability max_rto must be >= base_rto")
            }
            ReliabilityConfigError::ZeroAckCoalesce => {
                write!(f, "reliability ack_coalesce must be at least 1 cycle")
            }
        }
    }
}

impl std::error::Error for ReliabilityConfigError {}

/// Identifies one direction of reliable traffic: `(src, dst, channel)`.
///
/// Sequence numbers, windows, and acks are all per-flow; two flows never
/// interact, so per-flow FIFO is exactly the guarantee the ring layer
/// needs and no global ordering is imposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct FlowKey {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Virtual channel the flow travels on.
    pub channel: Channel,
}

impl FlowKey {
    /// The opposite-direction flow on the same channel (where this
    /// flow's acks piggyback).
    pub fn reverse(self) -> FlowKey {
        FlowKey {
            src: self.dst,
            dst: self.src,
            channel: self.channel,
        }
    }

    /// Deterministic sort key for reports.
    fn order(&self) -> (usize, usize, usize) {
        (self.src.0, self.dst.0, self.channel.index())
    }
}

impl std::fmt::Display for FlowKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n{}->n{} ch{}",
            self.src.0,
            self.dst.0,
            self.channel.index()
        )
    }
}

/// Handle to a frame travelling on the wire, carried inside the
/// caller's in-flight event. Redeemed exactly once via
/// [`ReliableTransport::on_wire`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FrameId(pub u64);

/// What a transport call asks the caller to do.
///
/// The transport never schedules anything itself; the caller owns the
/// event queue and turns these into events (and trace records).
#[derive(Debug, Clone)]
pub enum RelAction<P> {
    /// Hand `payload` up to the protocol layer at `to` — the exactly-
    /// once, in-order delivery boundary.
    Deliver {
        /// Destination node (receiver of the flow).
        to: NodeId,
        /// Source node of the flow.
        from: NodeId,
        /// Channel the flow travels on.
        channel: Channel,
        /// Per-flow sequence number being delivered.
        seq: u64,
        /// The payload handed to the protocol.
        payload: P,
    },
    /// Schedule [`ReliableTransport::on_wire`] for `frame` at `at`.
    Wire {
        /// Arrival cycle at the far end.
        at: Cycle,
        /// Frame to redeem on arrival.
        frame: FrameId,
    },
    /// Schedule [`ReliableTransport::on_timer`] for `flow` at `at`.
    Timer {
        /// Cycle to fire at.
        at: Cycle,
        /// Flow whose retransmission deadline this guards.
        flow: FlowKey,
    },
    /// Schedule [`ReliableTransport::on_ack_timer`] for `flow` at `at`.
    AckTimer {
        /// Cycle to fire at.
        at: Cycle,
        /// Flow whose coalesced ack this flushes.
        flow: FlowKey,
    },
    /// A frame (data, retransmission, or ack) was put on the wire:
    /// account `bytes` over `hops` links on `channel`.
    Sent {
        /// Channel the frame travelled on.
        channel: Channel,
        /// Wire size of the frame.
        bytes: u64,
        /// Links the frame crossed (0 for a self-send).
        hops: u64,
    },
    /// The oldest unacked frame of `flow` timed out and was resent.
    Retransmitted {
        /// The flow being recovered.
        flow: FlowKey,
        /// Sequence number retransmitted.
        seq: u64,
        /// Attempt count including this one (first retransmit is 1).
        attempt: u32,
        /// Whether the flow has exceeded `max_retries` and no longer
        /// counts as watchdog progress.
        degraded: bool,
    },
    /// A lossy link destroyed a frame of `flow` in flight.
    Dropped {
        /// The flow whose frame died.
        flow: FlowKey,
        /// The injected fault that killed it.
        fault: InjectedFault,
    },
}

/// Counters kept by the transport (monotonic over a run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RelStats {
    /// First transmissions of data frames.
    pub data_frames: u64,
    /// Timeout-driven retransmissions.
    pub retransmits: u64,
    /// Standalone ack frames sent (piggybacked acks are free).
    pub acks_sent: u64,
    /// Payloads handed up at the delivery boundary.
    pub delivered: u64,
    /// Received data frames below the expected sequence (retransmission
    /// duplicates), discarded and re-acked.
    pub dup_frames: u64,
    /// Received data frames above the expected sequence, parked in the
    /// reorder buffer.
    pub out_of_order: u64,
    /// Frames destroyed on the wire (data and acks).
    pub wire_drops: u64,
    /// Flows that crossed the `max_retries` degradation threshold.
    pub degraded_flows: u64,
}

/// Per-flow state visible in a stall report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FlowSnapshot {
    /// Sending node.
    pub src: u32,
    /// Receiving node.
    pub dst: u32,
    /// Channel index ([`Channel::index`]).
    pub channel: u8,
    /// Unacked frames in the retransmit buffer.
    pub unacked: usize,
    /// Frames queued behind the window.
    pub queued: usize,
    /// Sequence number of the oldest unacked frame.
    pub oldest_seq: u64,
    /// Retransmission attempts on the oldest unacked frame.
    pub attempts: u32,
    /// Whether the flow crossed the degradation threshold.
    pub degraded: bool,
}

/// Deterministic summary of transport state for stall attribution.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RelSnapshot {
    /// Total unacked frames across all flows.
    pub unacked_frames: usize,
    /// Total frames queued behind windows.
    pub queued_frames: usize,
    /// Retransmissions so far.
    pub retransmits: u64,
    /// Flows currently past the degradation threshold.
    pub degraded_flows: usize,
    /// Flows with unacked traffic, worst (most attempts) first, ties
    /// broken by `(src, dst, channel)`; capped at
    /// [`RelSnapshot::MAX_FLOWS`].
    pub worst_flows: Vec<FlowSnapshot>,
}

impl RelSnapshot {
    /// Cap on `worst_flows` entries.
    pub const MAX_FLOWS: usize = 8;
}

struct InFlight<P> {
    seq: u64,
    payload: P,
    bytes: u64,
    attempts: u32,
    deadline: Cycle,
}

struct SendFlow<P> {
    next_seq: u64,
    inflight: VecDeque<InFlight<P>>,
    queued: VecDeque<(u64, P, u64)>,
    /// Earliest pending retransmission-timer event we know of.
    timer_at: Option<Cycle>,
    degraded: bool,
}

impl<P> Default for SendFlow<P> {
    fn default() -> Self {
        SendFlow {
            next_seq: 0,
            inflight: VecDeque::new(),
            queued: VecDeque::new(),
            timer_at: None,
            degraded: false,
        }
    }
}

struct RecvFlow<P> {
    expected: u64,
    reorder: BTreeMap<u64, P>,
    ack_pending: bool,
    /// Earliest pending ack-timer event we know of.
    ack_timer_at: Option<Cycle>,
}

impl<P> Default for RecvFlow<P> {
    fn default() -> Self {
        RecvFlow {
            expected: 0,
            reorder: BTreeMap::new(),
            ack_pending: false,
            ack_timer_at: None,
        }
    }
}

enum FrameKind<P> {
    Data {
        seq: u64,
        payload: P,
        /// Cumulative ack for the reverse flow, frozen at transmit time.
        piggy: u64,
    },
    Ack {
        cum: u64,
    },
}

struct Frame<P> {
    flow: FlowKey,
    kind: FrameKind<P>,
}

/// The reliable transport: per-flow ARQ state plus its own RNG stream.
///
/// Generic over the payload `P` so the machine can carry its agent
/// inputs and tests can carry plain integers.
pub struct ReliableTransport<P> {
    cfg: ReliabilityConfig,
    rng: DetRng,
    send_flows: FxHashMap<FlowKey, SendFlow<P>>,
    recv_flows: FxHashMap<FlowKey, RecvFlow<P>>,
    frames: FxHashMap<u64, Frame<P>>,
    next_frame: u64,
    stats: RelStats,
}

impl<P: Clone> ReliableTransport<P> {
    /// Creates a transport with `cfg` (must be enabled and valid) and a
    /// dedicated RNG stream derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is disabled or fails validation — the caller
    /// gates construction on `cfg.enabled`.
    pub fn new(cfg: ReliabilityConfig, seed: u64) -> Self {
        assert!(cfg.enabled, "constructing a disabled reliable transport");
        if let Err(e) = cfg.validate() {
            panic!("invalid reliability config: {e}");
        }
        ReliableTransport {
            cfg,
            rng: DetRng::seed(seed ^ 0xAC4D_BEEF_5EED_0001),
            send_flows: FxHashMap::default(),
            recv_flows: FxHashMap::default(),
            frames: FxHashMap::default(),
            next_frame: 0,
            stats: RelStats::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ReliabilityConfig {
        &self.cfg
    }

    /// Monotonic counters.
    pub fn stats(&self) -> &RelStats {
        &self.stats
    }

    /// True when no flow has unacked or queued frames — nothing left
    /// that retransmission could still be recovering.
    pub fn idle(&self) -> bool {
        self.send_flows
            .values()
            .all(|sf| sf.inflight.is_empty() && sf.queued.is_empty())
    }

    /// Sends `payload` reliably from `from` to `to`. `extra_delay` is
    /// added to the first transmission's arrival only (the machine uses
    /// it to preserve reorder-fault draws); retransmissions ignore it.
    #[allow(clippy::too_many_arguments)] // mirrors Network::unicast_lossy plus the action sink
    pub fn send(
        &mut self,
        net: &mut Network,
        now: Cycle,
        from: NodeId,
        to: NodeId,
        channel: Channel,
        bytes: u64,
        extra_delay: Cycle,
        payload: P,
        out: &mut Vec<RelAction<P>>,
    ) {
        let flow = FlowKey {
            src: from,
            dst: to,
            channel,
        };
        let sf = self.send_flows.entry(flow).or_default();
        let seq = sf.next_seq;
        sf.next_seq += 1;
        // FIFO: if anything is already queued, this frame must queue
        // behind it even if the window momentarily has room.
        if !sf.queued.is_empty() || sf.inflight.len() >= self.cfg.window {
            sf.queued.push_back((seq, payload, bytes));
            return;
        }
        self.transmit_data(net, now, flow, seq, payload, bytes, extra_delay, out);
    }

    /// Sends `payload` reliably from `root` to every other node, using
    /// the lossy multicast tree for the first copy of each destination's
    /// frame. Each destination gets its own flow and sequence number;
    /// recovery (retransmission) is per-destination unicast.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::NocError`] from the tree walk.
    #[allow(clippy::too_many_arguments)] // mirrors Network::multicast_lossy_into plus the action sink
    pub fn send_multicast(
        &mut self,
        net: &mut Network,
        now: Cycle,
        root: NodeId,
        channel: Channel,
        bytes: u64,
        payload: P,
        deliveries: &mut Vec<crate::network::Delivery>,
        out: &mut Vec<RelAction<P>>,
    ) -> Result<(), crate::network::NocError> {
        net.multicast_lossy_into(now, root, bytes, channel, deliveries)?;
        for d in deliveries.iter() {
            let flow = FlowKey {
                src: root,
                dst: d.to,
                channel,
            };
            let sf = self.send_flows.entry(flow).or_default();
            let seq = sf.next_seq;
            sf.next_seq += 1;
            if !sf.queued.is_empty() || sf.inflight.len() >= self.cfg.window {
                sf.queued.push_back((seq, payload.clone(), bytes));
                continue;
            }
            // The wire crossing already happened inside the tree walk;
            // register the in-flight frame and either redeem the
            // arrival or let the timer recover the drop.
            self.stats.data_frames += 1;
            out.push(RelAction::Sent {
                channel,
                bytes,
                hops: d.hops,
            });
            let deadline = now + self.cfg.base_rto;
            if d.dropped {
                self.stats.wire_drops += 1;
                out.push(RelAction::Dropped {
                    flow,
                    fault: d.fault.unwrap_or(InjectedFault {
                        kind: FaultKind::Drop,
                        delay: 0,
                    }),
                });
            } else {
                let piggy = self.peek_piggy(flow.reverse());
                let id = self.next_frame;
                self.next_frame += 1;
                self.frames.insert(
                    id,
                    Frame {
                        flow,
                        kind: FrameKind::Data {
                            seq,
                            payload: payload.clone(),
                            piggy,
                        },
                    },
                );
                out.push(RelAction::Wire {
                    at: d.arrival,
                    frame: FrameId(id),
                });
            }
            let Some(sf) = self.send_flows.get_mut(&flow) else {
                unreachable!("flow created above");
            };
            sf.inflight.push_back(InFlight {
                seq,
                payload: payload.clone(),
                bytes,
                attempts: 0,
                deadline,
            });
            arm_timer(sf, flow, deadline, now, out);
        }
        Ok(())
    }

    /// Redeems a wire arrival scheduled by a previous
    /// [`RelAction::Wire`]. Unknown frame ids are ignored (they cannot
    /// occur from a well-behaved caller, but a stale event is harmless).
    pub fn on_wire(
        &mut self,
        net: &mut Network,
        now: Cycle,
        frame: FrameId,
        out: &mut Vec<RelAction<P>>,
    ) {
        let Some(frame) = self.frames.remove(&frame.0) else {
            return;
        };
        match frame.kind {
            FrameKind::Ack { cum } => self.process_ack(net, now, frame.flow, cum, out),
            FrameKind::Data {
                seq,
                payload,
                piggy,
            } => {
                // The piggybacked ack covers the reverse flow, whose
                // sender lives at this frame's destination.
                self.process_ack(net, now, frame.flow.reverse(), piggy, out);
                let flow = frame.flow;
                let window = self.cfg.window;
                let rf = self.recv_flows.entry(flow).or_default();
                if seq < rf.expected {
                    // Duplicate of something already delivered: our ack
                    // was lost or is still in flight. Re-ack.
                    self.stats.dup_frames += 1;
                } else if seq == rf.expected {
                    rf.expected += 1;
                    self.stats.delivered += 1;
                    out.push(RelAction::Deliver {
                        to: flow.dst,
                        from: flow.src,
                        channel: flow.channel,
                        seq,
                        payload,
                    });
                    // Drain whatever the reorder buffer now unblocks.
                    while let Some(p) = rf.reorder.remove(&rf.expected) {
                        let s = rf.expected;
                        rf.expected += 1;
                        self.stats.delivered += 1;
                        out.push(RelAction::Deliver {
                            to: flow.dst,
                            from: flow.src,
                            channel: flow.channel,
                            seq: s,
                            payload: p,
                        });
                    }
                } else {
                    // Ahead of the expected sequence: an earlier frame
                    // was dropped. Park it (bounded) and ack what we
                    // have so the sender's cumulative view stays fresh.
                    if rf.reorder.len() < window && !rf.reorder.contains_key(&seq) {
                        rf.reorder.insert(seq, payload);
                        self.stats.out_of_order += 1;
                    }
                }
                let Some(rf) = self.recv_flows.get_mut(&flow) else {
                    unreachable!("entry above");
                };
                rf.ack_pending = true;
                let at = now + self.cfg.ack_coalesce;
                arm_ack_timer(rf, flow, at, now, out);
            }
        }
    }

    /// Fires a retransmission timer for `flow` (scheduled by a previous
    /// [`RelAction::Timer`]). Retransmits the oldest unacked frame if
    /// its deadline has passed, with exponential backoff and jitter on
    /// the next deadline.
    pub fn on_timer(
        &mut self,
        net: &mut Network,
        now: Cycle,
        flow: FlowKey,
        out: &mut Vec<RelAction<P>>,
    ) {
        let Some(sf) = self.send_flows.get_mut(&flow) else {
            return;
        };
        if sf.timer_at.is_some_and(|t| t <= now) {
            sf.timer_at = None;
        }
        let Some(head) = sf.inflight.front_mut() else {
            return;
        };
        if now >= head.deadline {
            head.attempts += 1;
            let attempt = head.attempts;
            let backoff = backoff_rto(&self.cfg, attempt);
            let jitter = if self.cfg.rto_jitter > 0 {
                self.rng.below(self.cfg.rto_jitter + 1)
            } else {
                0
            };
            head.deadline = now + backoff + jitter;
            let (seq, payload, bytes) = (head.seq, head.payload.clone(), head.bytes);
            let newly_degraded =
                self.cfg.max_retries > 0 && attempt >= self.cfg.max_retries && !sf.degraded;
            if newly_degraded {
                sf.degraded = true;
                self.stats.degraded_flows += 1;
            }
            let degraded = sf.degraded;
            self.stats.retransmits += 1;
            out.push(RelAction::Retransmitted {
                flow,
                seq,
                attempt,
                degraded,
            });
            self.put_data_on_wire(net, now, flow, seq, payload, bytes, 0, out);
        }
        let Some(sf) = self.send_flows.get_mut(&flow) else {
            unreachable!("checked above");
        };
        if let Some(head) = sf.inflight.front() {
            let deadline = head.deadline;
            arm_timer(sf, flow, deadline, now, out);
        }
    }

    /// Fires an ack-coalescing timer for `flow` (scheduled by a
    /// previous [`RelAction::AckTimer`]). Sends a standalone cumulative
    /// ack if one is still owed (reverse data may have piggybacked it
    /// away in the meantime).
    pub fn on_ack_timer(
        &mut self,
        net: &mut Network,
        now: Cycle,
        flow: FlowKey,
        out: &mut Vec<RelAction<P>>,
    ) {
        let Some(rf) = self.recv_flows.get_mut(&flow) else {
            return;
        };
        if rf.ack_timer_at.is_some_and(|t| t <= now) {
            rf.ack_timer_at = None;
        }
        if !rf.ack_pending {
            return;
        }
        rf.ack_pending = false;
        let cum = rf.expected;
        // Acks travel the reverse direction of the flow they cover.
        let d = net.unicast_lossy(now, flow.dst, flow.src, ACK_BYTES, flow.channel);
        self.stats.acks_sent += 1;
        out.push(RelAction::Sent {
            channel: flow.channel,
            bytes: ACK_BYTES,
            hops: d.hops,
        });
        if d.dropped {
            // Lost acks need no recovery: they are cumulative, and a
            // duplicate data frame re-arms ack_pending at the receiver.
            self.stats.wire_drops += 1;
            out.push(RelAction::Dropped {
                flow,
                fault: d.fault.unwrap_or(InjectedFault {
                    kind: FaultKind::Drop,
                    delay: 0,
                }),
            });
            return;
        }
        let id = self.next_frame;
        self.next_frame += 1;
        self.frames.insert(
            id,
            Frame {
                flow,
                kind: FrameKind::Ack { cum },
            },
        );
        out.push(RelAction::Wire {
            at: d.arrival,
            frame: FrameId(id),
        });
    }

    /// Deterministic summary of in-flight state for stall attribution.
    pub fn snapshot(&self) -> RelSnapshot {
        let mut flows: Vec<(FlowKey, FlowSnapshot)> = self
            .send_flows
            .iter()
            .filter(|(_, sf)| !sf.inflight.is_empty() || !sf.queued.is_empty())
            .map(|(k, sf)| {
                let head = sf.inflight.front();
                (
                    *k,
                    FlowSnapshot {
                        src: k.src.0 as u32,
                        dst: k.dst.0 as u32,
                        channel: k.channel.index() as u8,
                        unacked: sf.inflight.len(),
                        queued: sf.queued.len(),
                        oldest_seq: head.map_or(0, |h| h.seq),
                        attempts: head.map_or(0, |h| h.attempts),
                        degraded: sf.degraded,
                    },
                )
            })
            .collect();
        flows.sort_by(|(ka, a), (kb, b)| {
            b.attempts
                .cmp(&a.attempts)
                .then(ka.order().cmp(&kb.order()))
        });
        let unacked_frames = flows.iter().map(|(_, f)| f.unacked).sum();
        let queued_frames = flows.iter().map(|(_, f)| f.queued).sum();
        let degraded_flows = flows.iter().filter(|(_, f)| f.degraded).count();
        flows.truncate(RelSnapshot::MAX_FLOWS);
        RelSnapshot {
            unacked_frames,
            queued_frames,
            retransmits: self.stats.retransmits,
            degraded_flows,
            worst_flows: flows.into_iter().map(|(_, f)| f).collect(),
        }
    }

    /// Reads (and clears the pending flag of) the cumulative ack to
    /// piggyback for `flow`, or 0 if we have never received on it.
    fn peek_piggy(&mut self, flow: FlowKey) -> u64 {
        match self.recv_flows.get_mut(&flow) {
            Some(rf) => {
                rf.ack_pending = false;
                rf.expected
            }
            None => 0,
        }
    }

    /// First transmission of a data frame: wire it, buffer it for
    /// retransmission, arm the flow timer.
    #[allow(clippy::too_many_arguments)]
    fn transmit_data(
        &mut self,
        net: &mut Network,
        now: Cycle,
        flow: FlowKey,
        seq: u64,
        payload: P,
        bytes: u64,
        extra_delay: Cycle,
        out: &mut Vec<RelAction<P>>,
    ) {
        self.stats.data_frames += 1;
        self.put_data_on_wire(
            net,
            now,
            flow,
            seq,
            payload.clone(),
            bytes,
            extra_delay,
            out,
        );
        let deadline = now + self.cfg.base_rto;
        let sf = self.send_flows.entry(flow).or_default();
        sf.inflight.push_back(InFlight {
            seq,
            payload,
            bytes,
            attempts: 0,
            deadline,
        });
        arm_timer(sf, flow, deadline, now, out);
    }

    /// Puts one copy of a data frame on the (lossy) wire. Shared by
    /// first transmissions and retransmissions; the retransmit buffer is
    /// untouched here.
    #[allow(clippy::too_many_arguments)]
    fn put_data_on_wire(
        &mut self,
        net: &mut Network,
        now: Cycle,
        flow: FlowKey,
        seq: u64,
        payload: P,
        bytes: u64,
        extra_delay: Cycle,
        out: &mut Vec<RelAction<P>>,
    ) {
        let piggy = self.peek_piggy(flow.reverse());
        let d = net.unicast_lossy(now, flow.src, flow.dst, bytes, flow.channel);
        out.push(RelAction::Sent {
            channel: flow.channel,
            bytes,
            hops: d.hops,
        });
        if d.dropped {
            self.stats.wire_drops += 1;
            out.push(RelAction::Dropped {
                flow,
                fault: d.fault.unwrap_or(InjectedFault {
                    kind: FaultKind::Drop,
                    delay: 0,
                }),
            });
            return;
        }
        let id = self.next_frame;
        self.next_frame += 1;
        self.frames.insert(
            id,
            Frame {
                flow,
                kind: FrameKind::Data {
                    seq,
                    payload,
                    piggy,
                },
            },
        );
        out.push(RelAction::Wire {
            at: d.arrival + extra_delay,
            frame: FrameId(id),
        });
    }

    /// Applies a cumulative ack to `flow`'s sender state: frees acked
    /// frames, promotes queued frames into the window, re-arms the
    /// timer.
    fn process_ack(
        &mut self,
        net: &mut Network,
        now: Cycle,
        flow: FlowKey,
        cum: u64,
        out: &mut Vec<RelAction<P>>,
    ) {
        let Some(sf) = self.send_flows.get_mut(&flow) else {
            return;
        };
        let mut advanced = false;
        while sf.inflight.front().is_some_and(|h| h.seq < cum) {
            sf.inflight.pop_front();
            advanced = true;
        }
        if advanced && sf.degraded {
            // An ack got through: the path works again.
            sf.degraded = false;
        }
        let mut promote = Vec::new();
        while sf.inflight.len() + promote.len() < self.cfg.window {
            match sf.queued.pop_front() {
                Some(item) => promote.push(item),
                None => break,
            }
        }
        for (seq, payload, bytes) in promote {
            self.transmit_data(net, now, flow, seq, payload, bytes, 0, out);
        }
        let Some(sf) = self.send_flows.get_mut(&flow) else {
            unreachable!("flow exists");
        };
        if let Some(head) = sf.inflight.front() {
            let deadline = head.deadline;
            arm_timer(sf, flow, deadline, now, out);
        }
    }
}

/// Exponential backoff for retransmission `attempt` (1-based), capped
/// at `max_rto`. Jitter is added by the caller.
fn backoff_rto(cfg: &ReliabilityConfig, attempt: u32) -> Cycle {
    let shift = attempt.min(14);
    cfg.base_rto
        .checked_shl(shift)
        .unwrap_or(Cycle::MAX)
        .min(cfg.max_rto)
        .max(cfg.base_rto)
}

/// Arms (or confirms) a retransmission-timer event at `at`. `timer_at`
/// tracks the earliest pending event; an event at or before `at` is
/// already coming, so nothing new is scheduled then.
fn arm_timer<P>(
    sf: &mut SendFlow<P>,
    flow: FlowKey,
    at: Cycle,
    now: Cycle,
    out: &mut Vec<RelAction<P>>,
) {
    let at = at.max(now + 1);
    if sf.timer_at.is_none_or(|t| at < t) {
        sf.timer_at = Some(at);
        out.push(RelAction::Timer { at, flow });
    }
}

/// Arms (or confirms) an ack-timer event at `at`, same discipline as
/// [`arm_timer`].
fn arm_ack_timer<P>(
    rf: &mut RecvFlow<P>,
    flow: FlowKey,
    at: Cycle,
    now: Cycle,
    out: &mut Vec<RelAction<P>>,
) {
    let at = at.max(now + 1);
    if rf.ack_timer_at.is_none_or(|t| at < t) {
        rf.ack_timer_at = Some(at);
        out.push(RelAction::AckTimer { at, flow });
    }
}

impl ring_snapshot::Snap for RelStats {
    fn save(&self, w: &mut ring_snapshot::SnapWriter) {
        w.put(&self.data_frames);
        w.put(&self.retransmits);
        w.put(&self.acks_sent);
        w.put(&self.delivered);
        w.put(&self.dup_frames);
        w.put(&self.out_of_order);
        w.put(&self.wire_drops);
        w.put(&self.degraded_flows);
    }
    fn load(r: &mut ring_snapshot::SnapReader<'_>) -> Result<Self, ring_snapshot::SnapshotError> {
        Ok(RelStats {
            data_frames: r.get()?,
            retransmits: r.get()?,
            acks_sent: r.get()?,
            delivered: r.get()?,
            dup_frames: r.get()?,
            out_of_order: r.get()?,
            wire_drops: r.get()?,
            degraded_flows: r.get()?,
        })
    }
}

impl ring_snapshot::Snap for FlowKey {
    fn save(&self, w: &mut ring_snapshot::SnapWriter) {
        w.put(&(self.src.0 as u64));
        w.put(&(self.dst.0 as u64));
        w.put(&(self.channel.index() as u8));
    }
    fn load(r: &mut ring_snapshot::SnapReader<'_>) -> Result<Self, ring_snapshot::SnapshotError> {
        let src = NodeId(r.get::<u64>()? as usize);
        let dst = NodeId(r.get::<u64>()? as usize);
        let ch = r.get::<u8>()?;
        let channel = Channel::from_index(ch as usize)
            .ok_or_else(|| r.malformed(format!("channel index {ch}")))?;
        Ok(FlowKey { src, dst, channel })
    }
}

impl<P: Clone> ReliableTransport<P> {
    /// Serializes the transport's complete ARQ state mid-flight: RNG
    /// position, every send/recv flow (in-flight windows, queued sends,
    /// reorder buffers, timers), the wire-frame table, and the counters.
    /// `enc` encodes a payload (the machine's agent inputs). Flow and
    /// frame maps are hashed containers, so they are emitted in sorted
    /// key order to keep the encoding canonical.
    pub fn snap_save_with(
        &self,
        w: &mut ring_snapshot::SnapWriter,
        mut enc: impl FnMut(&mut ring_snapshot::SnapWriter, &P),
    ) {
        w.put(&self.rng.state());
        w.put(&self.next_frame);
        w.put(&self.stats);

        let mut send_keys: Vec<&FlowKey> = self.send_flows.keys().collect();
        send_keys.sort_by_key(|k| k.order());
        w.put(&(send_keys.len() as u64));
        for key in send_keys {
            let sf = &self.send_flows[key];
            w.put(key);
            w.put(&sf.next_seq);
            w.put(&(sf.inflight.len() as u64));
            for inf in &sf.inflight {
                w.put(&inf.seq);
                w.put(&inf.bytes);
                w.put(&inf.attempts);
                w.put(&inf.deadline);
                enc(w, &inf.payload);
            }
            w.put(&(sf.queued.len() as u64));
            for (seq, payload, bytes) in &sf.queued {
                w.put(seq);
                w.put(bytes);
                enc(w, payload);
            }
            w.put(&sf.timer_at);
            w.put(&sf.degraded);
        }

        let mut recv_keys: Vec<&FlowKey> = self.recv_flows.keys().collect();
        recv_keys.sort_by_key(|k| k.order());
        w.put(&(recv_keys.len() as u64));
        for key in recv_keys {
            let rf = &self.recv_flows[key];
            w.put(key);
            w.put(&rf.expected);
            w.put(&(rf.reorder.len() as u64));
            for (seq, payload) in &rf.reorder {
                w.put(seq);
                enc(w, payload);
            }
            w.put(&rf.ack_pending);
            w.put(&rf.ack_timer_at);
        }

        let mut frame_ids: Vec<&u64> = self.frames.keys().collect();
        frame_ids.sort_unstable();
        w.put(&(frame_ids.len() as u64));
        for id in frame_ids {
            let frame = &self.frames[id];
            w.put(id);
            w.put(&frame.flow);
            match &frame.kind {
                FrameKind::Data {
                    seq,
                    payload,
                    piggy,
                } => {
                    w.put(&0u8);
                    w.put(seq);
                    w.put(piggy);
                    enc(w, payload);
                }
                FrameKind::Ack { cum } => {
                    w.put(&1u8);
                    w.put(cum);
                }
            }
        }
    }

    /// Rebuilds a transport from configuration plus snapshot state;
    /// `dec` decodes a payload.
    pub fn snap_load_with(
        r: &mut ring_snapshot::SnapReader<'_>,
        cfg: ReliabilityConfig,
        seed: u64,
        mut dec: impl FnMut(
            &mut ring_snapshot::SnapReader<'_>,
        ) -> Result<P, ring_snapshot::SnapshotError>,
    ) -> Result<Self, ring_snapshot::SnapshotError> {
        let mut t = ReliableTransport::new(cfg, seed);
        t.rng = DetRng::from_state(r.get()?);
        t.next_frame = r.get()?;
        t.stats = r.get()?;

        let n_send = r.get_len()?;
        for _ in 0..n_send {
            let key: FlowKey = r.get()?;
            let next_seq: u64 = r.get()?;
            let n_inflight = r.get_len()?;
            let mut inflight = VecDeque::with_capacity(n_inflight);
            for _ in 0..n_inflight {
                let seq: u64 = r.get()?;
                let bytes: u64 = r.get()?;
                let attempts: u32 = r.get()?;
                let deadline: Cycle = r.get()?;
                let payload = dec(r)?;
                inflight.push_back(InFlight {
                    seq,
                    payload,
                    bytes,
                    attempts,
                    deadline,
                });
            }
            let n_queued = r.get_len()?;
            let mut queued = VecDeque::with_capacity(n_queued);
            for _ in 0..n_queued {
                let seq: u64 = r.get()?;
                let bytes: u64 = r.get()?;
                let payload = dec(r)?;
                queued.push_back((seq, payload, bytes));
            }
            let timer_at: Option<Cycle> = r.get()?;
            let degraded: bool = r.get()?;
            t.send_flows.insert(
                key,
                SendFlow {
                    next_seq,
                    inflight,
                    queued,
                    timer_at,
                    degraded,
                },
            );
        }

        let n_recv = r.get_len()?;
        for _ in 0..n_recv {
            let key: FlowKey = r.get()?;
            let expected: u64 = r.get()?;
            let n_reorder = r.get_len()?;
            let mut reorder = BTreeMap::new();
            for _ in 0..n_reorder {
                let seq: u64 = r.get()?;
                reorder.insert(seq, dec(r)?);
            }
            let ack_pending: bool = r.get()?;
            let ack_timer_at: Option<Cycle> = r.get()?;
            t.recv_flows.insert(
                key,
                RecvFlow {
                    expected,
                    reorder,
                    ack_pending,
                    ack_timer_at,
                },
            );
        }

        let n_frames = r.get_len()?;
        for _ in 0..n_frames {
            let id: u64 = r.get()?;
            let flow: FlowKey = r.get()?;
            let kind = match r.get::<u8>()? {
                0 => {
                    let seq: u64 = r.get()?;
                    let piggy: u64 = r.get()?;
                    let payload = dec(r)?;
                    FrameKind::Data {
                        seq,
                        payload,
                        piggy,
                    }
                }
                1 => FrameKind::Ack { cum: r.get()? },
                other => return Err(r.malformed(format!("frame kind {other}"))),
            };
            t.frames.insert(id, Frame { flow, kind });
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, FaultProfile};
    use crate::network::NetworkConfig;
    use crate::topology::Torus;
    use ring_sim::EventQueue;

    fn lossy_net(nodes: usize, profile: FaultProfile, seed: u64) -> Network {
        let side = (nodes as f64).sqrt() as usize;
        let mut net = Network::new(Torus::new(side, side), NetworkConfig::default());
        net.set_fault_plan(FaultPlan::new(profile, seed));
        net
    }

    /// Drives a transport + network to quiescence through a real event
    /// queue, returning every delivery in order of occurrence.
    fn run_to_quiescence(
        tp: &mut ReliableTransport<u64>,
        net: &mut Network,
        sends: &[(Cycle, NodeId, NodeId, u64)],
        limit: Cycle,
    ) -> Vec<(NodeId, NodeId, u64, u64)> {
        #[derive(Debug, Clone, Copy, PartialEq)]
        enum Ev {
            Send(NodeId, NodeId, u64),
            Wire(FrameId),
            Timer(FlowKey),
            AckTimer(FlowKey),
        }
        let mut q: EventQueue<Ev> = EventQueue::new();
        for &(at, from, to, val) in sends {
            q.schedule(at, Ev::Send(from, to, val));
        }
        let mut delivered = Vec::new();
        let mut acts = Vec::new();
        while let Some((now, ev)) = q.pop() {
            assert!(now <= limit, "harness ran past cycle limit {limit}");
            match ev {
                Ev::Send(from, to, val) => {
                    tp.send(net, now, from, to, Channel::Request, 8, 0, val, &mut acts)
                }
                Ev::Wire(f) => tp.on_wire(net, now, f, &mut acts),
                Ev::Timer(fl) => tp.on_timer(net, now, fl, &mut acts),
                Ev::AckTimer(fl) => tp.on_ack_timer(net, now, fl, &mut acts),
            }
            for a in acts.drain(..) {
                match a {
                    RelAction::Wire { at, frame } => q.schedule(at.max(now + 1), Ev::Wire(frame)),
                    RelAction::Timer { at, flow } => q.schedule(at, Ev::Timer(flow)),
                    RelAction::AckTimer { at, flow } => q.schedule(at, Ev::AckTimer(flow)),
                    RelAction::Deliver {
                        to,
                        from,
                        seq,
                        payload,
                        ..
                    } => delivered.push((from, to, seq, payload)),
                    RelAction::Sent { .. }
                    | RelAction::Retransmitted { .. }
                    | RelAction::Dropped { .. } => {}
                }
            }
        }
        assert!(
            tp.idle(),
            "transport still has unacked frames at quiescence"
        );
        delivered
    }

    #[test]
    fn config_validation_catches_each_field() {
        assert!(ReliabilityConfig::disabled().validate().is_ok());
        assert!(ReliabilityConfig::on().validate().is_ok());
        let bad = ReliabilityConfig {
            window: 0,
            ..ReliabilityConfig::on()
        };
        assert_eq!(bad.validate(), Err(ReliabilityConfigError::ZeroWindow));
        let bad = ReliabilityConfig {
            base_rto: 0,
            ..ReliabilityConfig::on()
        };
        assert_eq!(bad.validate(), Err(ReliabilityConfigError::ZeroBaseRto));
        let bad = ReliabilityConfig {
            max_rto: 1,
            base_rto: 2,
            ..ReliabilityConfig::on()
        };
        assert_eq!(bad.validate(), Err(ReliabilityConfigError::MaxRtoBelowBase));
        let bad = ReliabilityConfig {
            ack_coalesce: 0,
            ..ReliabilityConfig::on()
        };
        assert_eq!(bad.validate(), Err(ReliabilityConfigError::ZeroAckCoalesce));
        // A disabled config never validates its fields.
        let off = ReliabilityConfig {
            enabled: false,
            window: 0,
            ..ReliabilityConfig::on()
        };
        assert!(off.validate().is_ok());
    }

    #[test]
    fn lossless_flow_delivers_in_order_without_retransmits() {
        let mut net = lossy_net(16, FaultProfile::drop_rate(0.0), 1);
        let mut tp: ReliableTransport<u64> = ReliableTransport::new(ReliabilityConfig::on(), 1);
        let sends: Vec<(Cycle, NodeId, NodeId, u64)> = (0..40)
            .map(|i| (i * 3, NodeId(0), NodeId(5), 100 + i))
            .collect();
        let delivered = run_to_quiescence(&mut tp, &mut net, &sends, 1_000_000);
        assert_eq!(delivered.len(), 40);
        for (i, &(from, to, seq, val)) in delivered.iter().enumerate() {
            assert_eq!(from, NodeId(0));
            assert_eq!(to, NodeId(5));
            assert_eq!(seq, i as u64);
            assert_eq!(val, 100 + i as u64);
        }
        assert_eq!(tp.stats().retransmits, 0);
        assert_eq!(tp.stats().dup_frames, 0);
    }

    #[test]
    fn heavy_drop_still_delivers_exactly_once_in_order() {
        let mut net = lossy_net(16, FaultProfile::drop_rate(0.4), 7);
        let mut tp: ReliableTransport<u64> = ReliableTransport::new(ReliabilityConfig::on(), 7);
        let mut sends = Vec::new();
        for i in 0..60u64 {
            sends.push((i * 10, NodeId(1), NodeId(14), i));
            sends.push((i * 10 + 5, NodeId(14), NodeId(1), 1000 + i));
        }
        let delivered = run_to_quiescence(&mut tp, &mut net, &sends, 50_000_000);
        let fwd: Vec<u64> = delivered
            .iter()
            .filter(|(f, _, _, _)| *f == NodeId(1))
            .map(|&(_, _, _, v)| v)
            .collect();
        let rev: Vec<u64> = delivered
            .iter()
            .filter(|(f, _, _, _)| *f == NodeId(14))
            .map(|&(_, _, _, v)| v)
            .collect();
        assert_eq!(fwd, (0..60).collect::<Vec<u64>>());
        assert_eq!(rev, (1000..1060).collect::<Vec<u64>>());
        assert!(tp.stats().retransmits > 0, "40% drop must retransmit");
        assert!(tp.stats().wire_drops > 0);
    }

    #[test]
    fn outage_window_is_survived() {
        let profile = FaultProfile {
            outage_period: 5_000,
            outage_len: 2_000,
            ..FaultProfile::none()
        };
        let mut net = lossy_net(16, profile, 3);
        let mut tp: ReliableTransport<u64> = ReliableTransport::new(ReliabilityConfig::on(), 3);
        // Spray traffic across several node pairs so some of it is
        // guaranteed to cross whichever link the rota takes down.
        let mut sends = Vec::new();
        let mut k = 0u64;
        for round in 0..50u64 {
            for (a, b) in [(0usize, 15usize), (3, 12), (7, 8)] {
                sends.push((round * 200, NodeId(a), NodeId(b), k));
                k += 1;
            }
        }
        let delivered = run_to_quiescence(&mut tp, &mut net, &sends, 50_000_000);
        assert_eq!(delivered.len(), sends.len());
        // Per-flow order: payloads were issued in increasing order per pair.
        for (a, b) in [(0usize, 15usize), (3, 12), (7, 8)] {
            let vals: Vec<u64> = delivered
                .iter()
                .filter(|(f, t, _, _)| *f == NodeId(a) && *t == NodeId(b))
                .map(|&(_, _, _, v)| v)
                .collect();
            let mut sorted = vals.clone();
            sorted.sort_unstable();
            assert_eq!(vals, sorted, "flow n{a}->n{b} delivered out of order");
        }
    }

    #[test]
    fn window_preserves_fifo_under_queueing() {
        let cfg = ReliabilityConfig {
            window: 2,
            ..ReliabilityConfig::on()
        };
        let mut net = lossy_net(16, FaultProfile::drop_rate(0.2), 11);
        let mut tp: ReliableTransport<u64> = ReliableTransport::new(cfg, 11);
        // Burst 30 sends in one cycle: 28 of them must queue.
        let sends: Vec<(Cycle, NodeId, NodeId, u64)> =
            (0..30).map(|i| (0, NodeId(2), NodeId(9), i)).collect();
        let delivered = run_to_quiescence(&mut tp, &mut net, &sends, 50_000_000);
        let vals: Vec<u64> = delivered.iter().map(|&(_, _, _, v)| v).collect();
        assert_eq!(vals, (0..30).collect::<Vec<u64>>());
    }

    #[test]
    fn backoff_schedule_is_reproducible_across_equal_seeds() {
        // Same seed => identical retransmission deadlines (the
        // satellite-3 determinism guarantee); a different seed shifts
        // the jittered schedule.
        let timers = |seed: u64| -> Vec<Cycle> {
            let mut net = lossy_net(16, FaultProfile::drop_rate(1.0), seed);
            let mut tp: ReliableTransport<u64> =
                ReliableTransport::new(ReliabilityConfig::on(), seed);
            let mut acts = Vec::new();
            tp.send(
                &mut net,
                0,
                NodeId(0),
                NodeId(5),
                Channel::Request,
                8,
                0,
                42,
                &mut acts,
            );
            let mut out = Vec::new();
            let mut next = acts
                .iter()
                .find_map(|a| match a {
                    RelAction::Timer { at, flow } => Some((*at, *flow)),
                    _ => None,
                })
                .expect("initial timer armed");
            for _ in 0..10 {
                acts.clear();
                let (now, flow) = next;
                tp.on_timer(&mut net, now, flow, &mut acts);
                out.push(now);
                next = acts
                    .iter()
                    .find_map(|a| match a {
                        RelAction::Timer { at, flow } => Some((*at, *flow)),
                        _ => None,
                    })
                    .expect("timer re-armed while frame unacked");
            }
            out
        };
        let a = timers(21);
        let b = timers(21);
        let c = timers(22);
        assert_eq!(a, b, "same seed must reproduce the backoff schedule");
        assert_ne!(a, c, "different seeds should jitter differently");
        // Deadlines grow (backoff) and the gaps are capped by
        // max_rto + jitter.
        let cfg = ReliabilityConfig::on();
        for w in a.windows(2) {
            let gap = w[1] - w[0];
            assert!(gap >= cfg.base_rto, "gap {gap} below base rto");
            assert!(
                gap <= cfg.max_rto + cfg.rto_jitter,
                "gap {gap} above capped rto"
            );
        }
        let late_gap = a[9] - a[8];
        let early_gap = a[1] - a[0];
        assert!(late_gap > early_gap, "backoff should grow the gaps");
    }

    #[test]
    fn degraded_flow_recovers_on_ack() {
        let cfg = ReliabilityConfig {
            max_retries: 3,
            ..ReliabilityConfig::on()
        };
        // 100% drop: the flow must degrade after 3 attempts.
        let mut net = lossy_net(16, FaultProfile::drop_rate(1.0), 5);
        let mut tp: ReliableTransport<u64> = ReliableTransport::new(cfg, 5);
        let mut acts = Vec::new();
        tp.send(
            &mut net,
            0,
            NodeId(0),
            NodeId(5),
            Channel::Request,
            8,
            0,
            7,
            &mut acts,
        );
        let flow = FlowKey {
            src: NodeId(0),
            dst: NodeId(5),
            channel: Channel::Request,
        };
        let mut now = 0;
        let mut saw_degraded = false;
        for _ in 0..5 {
            now += 100_000; // far past any deadline
            acts.clear();
            tp.on_timer(&mut net, now, flow, &mut acts);
            for a in &acts {
                if let RelAction::Retransmitted { degraded, .. } = a {
                    saw_degraded |= degraded;
                }
            }
        }
        assert!(saw_degraded, "flow should degrade after max_retries");
        assert_eq!(tp.stats().degraded_flows, 1);
        let snap = tp.snapshot();
        assert_eq!(snap.degraded_flows, 1);
        assert_eq!(snap.worst_flows.len(), 1);
        assert!(snap.worst_flows[0].degraded);
        // A cumulative ack revives the flow.
        acts.clear();
        tp.process_ack(&mut net, now, flow, 1, &mut acts);
        assert!(tp.idle());
        assert_eq!(tp.snapshot().degraded_flows, 0);
    }

    #[test]
    fn snapshot_orders_flows_deterministically() {
        let mut net = lossy_net(16, FaultProfile::drop_rate(1.0), 9);
        let mut tp: ReliableTransport<u64> = ReliableTransport::new(ReliabilityConfig::on(), 9);
        let mut acts = Vec::new();
        for dst in [9usize, 3, 6] {
            tp.send(
                &mut net,
                0,
                NodeId(1),
                NodeId(dst),
                Channel::Request,
                8,
                0,
                dst as u64,
                &mut acts,
            );
        }
        // Retransmit only the flow to n6 so it sorts first.
        let flow6 = FlowKey {
            src: NodeId(1),
            dst: NodeId(6),
            channel: Channel::Request,
        };
        acts.clear();
        tp.on_timer(&mut net, 1_000_000, flow6, &mut acts);
        let snap = tp.snapshot();
        assert_eq!(snap.unacked_frames, 3);
        assert_eq!(snap.worst_flows.len(), 3);
        assert_eq!(snap.worst_flows[0].dst, 6, "most attempts sorts first");
        assert_eq!(snap.worst_flows[1].dst, 3, "ties break by (src,dst,ch)");
        assert_eq!(snap.worst_flows[2].dst, 9);
        assert_eq!(snap.retransmits, 1);
    }

    #[test]
    fn standalone_ack_flows_back_when_no_reverse_traffic() {
        let mut net = lossy_net(16, FaultProfile::drop_rate(0.0), 13);
        let mut tp: ReliableTransport<u64> = ReliableTransport::new(ReliabilityConfig::on(), 13);
        let delivered = run_to_quiescence(
            &mut tp,
            &mut net,
            &[(0, NodeId(0), NodeId(5), 1)],
            1_000_000,
        );
        assert_eq!(delivered.len(), 1);
        // One-way traffic: the ack cannot piggyback, so exactly one
        // standalone ack was sent and the send window drained.
        assert_eq!(tp.stats().acks_sent, 1);
        assert_eq!(tp.stats().data_frames, 1);
    }

    #[test]
    fn multicast_sets_up_per_destination_flows() {
        let mut net = lossy_net(16, FaultProfile::drop_rate(0.15), 17);
        let mut tp: ReliableTransport<u64> = ReliableTransport::new(ReliabilityConfig::on(), 17);

        #[derive(Debug, Clone, Copy, PartialEq)]
        enum Ev {
            Wire(FrameId),
            Timer(FlowKey),
            AckTimer(FlowKey),
        }
        let mut q: EventQueue<Ev> = EventQueue::new();
        let mut acts = Vec::new();
        let mut dels = Vec::new();
        tp.send_multicast(
            &mut net,
            0,
            NodeId(0),
            Channel::Request,
            8,
            99,
            &mut dels,
            &mut acts,
        )
        .expect("tree walk succeeds");
        let mut delivered = Vec::new();
        loop {
            for a in acts.drain(..) {
                match a {
                    RelAction::Wire { at, frame } => q.schedule(at.max(1), Ev::Wire(frame)),
                    RelAction::Timer { at, flow } => q.schedule(at, Ev::Timer(flow)),
                    RelAction::AckTimer { at, flow } => q.schedule(at, Ev::AckTimer(flow)),
                    RelAction::Deliver { to, payload, .. } => delivered.push((to, payload)),
                    _ => {}
                }
            }
            match q.pop() {
                Some((now, Ev::Wire(f))) => tp.on_wire(&mut net, now, f, &mut acts),
                Some((now, Ev::Timer(fl))) => tp.on_timer(&mut net, now, fl, &mut acts),
                Some((now, Ev::AckTimer(fl))) => tp.on_ack_timer(&mut net, now, fl, &mut acts),
                None => break,
            }
        }
        assert!(tp.idle());
        assert_eq!(
            delivered.len(),
            15,
            "every non-root node hears the multicast"
        );
        let mut nodes: Vec<usize> = delivered.iter().map(|(n, _)| n.0).collect();
        nodes.sort_unstable();
        assert_eq!(nodes, (1..16).collect::<Vec<usize>>());
        assert!(delivered.iter().all(|&(_, v)| v == 99));
    }
}
