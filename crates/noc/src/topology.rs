//! 2D torus topology, node/link identifiers, and xy routing.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node (core + caches + protocol agent) in the machine.
///
/// Nodes are numbered row-major: node `y * width + x` sits at `(x, y)`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(v)
    }
}

/// One of the four directed link directions out of a router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Towards +x (wrapping).
    East,
    /// Towards -x (wrapping).
    West,
    /// Towards +y (wrapping).
    South,
    /// Towards -y (wrapping).
    North,
}

impl Direction {
    /// All four directions, in a fixed order.
    pub const ALL: [Direction; 4] = [
        Direction::East,
        Direction::West,
        Direction::South,
        Direction::North,
    ];

    fn index(self) -> usize {
        match self {
            Direction::East => 0,
            Direction::West => 1,
            Direction::South => 2,
            Direction::North => 3,
        }
    }
}

/// Identifier of a directed link: the out-link of `node` in `direction`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LinkId(pub usize);

/// An 8×8 (by default; any size ≥ 2×2) 2D torus.
///
/// # Examples
///
/// ```
/// use ring_noc::{NodeId, Torus};
///
/// let t = Torus::new(8, 8);
/// assert_eq!(t.nodes(), 64);
/// assert_eq!(t.coords(NodeId(9)), (1, 1));
/// assert_eq!(t.node_at(1, 1), NodeId(9));
/// // Wrap-around makes opposite corners close:
/// assert_eq!(t.distance(NodeId(0), NodeId(63)), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Torus {
    width: usize,
    height: usize,
}

impl Torus {
    /// Creates a `width × height` torus.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is smaller than 2.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width >= 2 && height >= 2, "torus must be at least 2x2");
        Torus { width, height }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.width * self.height
    }

    /// Torus width (x extent).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Torus height (y extent).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of directed links (4 per node).
    pub fn links(&self) -> usize {
        self.nodes() * 4
    }

    /// Coordinates `(x, y)` of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node id is out of range.
    pub fn coords(&self, n: NodeId) -> (usize, usize) {
        assert!(n.0 < self.nodes(), "node {n} out of range");
        (n.0 % self.width, n.0 / self.width)
    }

    /// Node at coordinates `(x, y)` (taken modulo the torus extents).
    pub fn node_at(&self, x: usize, y: usize) -> NodeId {
        NodeId((y % self.height) * self.width + (x % self.width))
    }

    /// The out-link of `n` in direction `d`.
    pub fn link(&self, n: NodeId, d: Direction) -> LinkId {
        LinkId(n.0 * 4 + d.index())
    }

    /// The neighbor reached by following direction `d` from `n`.
    pub fn neighbor(&self, n: NodeId, d: Direction) -> NodeId {
        let (x, y) = self.coords(n);
        match d {
            Direction::East => self.node_at(x + 1, y),
            Direction::West => self.node_at(x + self.width - 1, y),
            Direction::South => self.node_at(x, y + 1),
            Direction::North => self.node_at(x, y + self.height - 1),
        }
    }

    /// Signed minimal offset along one torus dimension of extent `len`,
    /// from `a` to `b`: positive means move in the + direction.
    fn min_offset(a: usize, b: usize, len: usize) -> isize {
        let fwd = (b + len - a) % len;
        let bwd = len - fwd;
        if fwd <= bwd {
            fwd as isize
        } else {
            -(bwd as isize)
        }
    }

    /// The xy (dimension-ordered) minimal route from `from` to `to`:
    /// the sequence of directed links traversed. Empty if `from == to`.
    ///
    /// xy routing resolves the x offset fully before the y offset, matching
    /// the paper's "2D torus with xy routing".
    pub fn route(&self, from: NodeId, to: NodeId) -> Vec<LinkId> {
        self.route_iter(from, to).collect()
    }

    /// Iterator form of [`Torus::route`] — walks the same links without
    /// allocating, for the per-message hot path.
    pub fn route_iter(&self, from: NodeId, to: NodeId) -> RouteIter<'_> {
        let (fx, fy) = self.coords(from);
        let (tx, ty) = self.coords(to);
        RouteIter {
            torus: self,
            cur: from,
            dx: Self::min_offset(fx, tx, self.width),
            dy: Self::min_offset(fy, ty, self.height),
        }
    }

    /// Minimal hop distance between two nodes.
    pub fn distance(&self, a: NodeId, b: NodeId) -> usize {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        (Self::min_offset(ax, bx, self.width).unsigned_abs())
            + (Self::min_offset(ay, by, self.height).unsigned_abs())
    }

    /// Iterator over all node ids.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes()).map(NodeId)
    }
}

/// Lazily walks the links of an xy route (see [`Torus::route_iter`]).
#[derive(Debug, Clone)]
pub struct RouteIter<'a> {
    torus: &'a Torus,
    cur: NodeId,
    /// Remaining signed x offset (resolved first, per xy routing).
    dx: isize,
    /// Remaining signed y offset.
    dy: isize,
}

impl Iterator for RouteIter<'_> {
    type Item = LinkId;

    fn next(&mut self) -> Option<LinkId> {
        let (d, remaining) = if self.dx != 0 {
            let d = if self.dx > 0 {
                Direction::East
            } else {
                Direction::West
            };
            (d, &mut self.dx)
        } else if self.dy != 0 {
            let d = if self.dy > 0 {
                Direction::South
            } else {
                Direction::North
            };
            (d, &mut self.dy)
        } else {
            return None;
        };
        *remaining -= remaining.signum();
        let link = self.torus.link(self.cur, d);
        self.cur = self.torus.neighbor(self.cur, d);
        Some(link)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.dx.unsigned_abs() + self.dy.unsigned_abs();
        (n, Some(n))
    }
}

impl ExactSizeIterator for RouteIter<'_> {}

impl ring_snapshot::Snap for NodeId {
    fn save(&self, w: &mut ring_snapshot::SnapWriter) {
        w.put(&(self.0 as u64));
    }
    fn load(r: &mut ring_snapshot::SnapReader<'_>) -> Result<Self, ring_snapshot::SnapshotError> {
        Ok(NodeId(r.get::<u64>()? as usize))
    }
}

impl ring_snapshot::Snap for LinkId {
    fn save(&self, w: &mut ring_snapshot::SnapWriter) {
        w.put(&(self.0 as u64));
    }
    fn load(r: &mut ring_snapshot::SnapReader<'_>) -> Result<Self, ring_snapshot::SnapshotError> {
        Ok(LinkId(r.get::<u64>()? as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_roundtrip() {
        let t = Torus::new(8, 8);
        for n in t.iter() {
            let (x, y) = t.coords(n);
            assert_eq!(t.node_at(x, y), n);
        }
    }

    #[test]
    fn neighbors_wrap() {
        let t = Torus::new(8, 8);
        assert_eq!(t.neighbor(NodeId(0), Direction::West), NodeId(7));
        assert_eq!(t.neighbor(NodeId(0), Direction::North), NodeId(56));
        assert_eq!(t.neighbor(NodeId(7), Direction::East), NodeId(0));
        assert_eq!(t.neighbor(NodeId(63), Direction::South), NodeId(7));
    }

    #[test]
    fn route_length_equals_distance() {
        let t = Torus::new(8, 8);
        for a in t.iter() {
            for b in t.iter() {
                assert_eq!(t.route(a, b).len(), t.distance(a, b));
            }
        }
    }

    #[test]
    fn max_distance_on_8x8_torus_is_8() {
        let t = Torus::new(8, 8);
        let max = t
            .iter()
            .flat_map(|a| t.iter().map(move |b| (a, b)))
            .map(|(a, b)| t.distance(a, b))
            .max()
            .unwrap();
        assert_eq!(max, 8); // 4 + 4 with wrap-around
    }

    #[test]
    fn distance_is_symmetric() {
        let t = Torus::new(8, 8);
        for a in t.iter() {
            for b in t.iter() {
                assert_eq!(t.distance(a, b), t.distance(b, a));
            }
        }
    }

    #[test]
    fn self_route_is_empty() {
        let t = Torus::new(4, 4);
        assert!(t.route(NodeId(5), NodeId(5)).is_empty());
        assert_eq!(t.distance(NodeId(5), NodeId(5)), 0);
    }

    #[test]
    fn route_follows_links() {
        let t = Torus::new(8, 8);
        // From (0,0) to (2,1): x first (2 east), then y (1 south).
        let r = t.route(NodeId(0), t.node_at(2, 1));
        assert_eq!(r.len(), 3);
        assert_eq!(r[0], t.link(NodeId(0), Direction::East));
        assert_eq!(r[1], t.link(NodeId(1), Direction::East));
        assert_eq!(r[2], t.link(NodeId(2), Direction::South));
    }

    #[test]
    fn route_iter_matches_route_and_is_exact_size() {
        let t = Torus::new(8, 8);
        for a in t.iter() {
            for b in t.iter() {
                let it = t.route_iter(a, b);
                assert_eq!(it.len(), t.distance(a, b));
                assert_eq!(it.collect::<Vec<_>>(), t.route(a, b));
            }
        }
    }

    #[test]
    #[should_panic(expected = "torus must be at least 2x2")]
    fn tiny_torus_rejected() {
        let _ = Torus::new(1, 8);
    }

    #[test]
    fn link_ids_unique() {
        let t = Torus::new(4, 4);
        let mut seen = std::collections::HashSet::new();
        for n in t.iter() {
            for d in Direction::ALL {
                assert!(seen.insert(t.link(n, d)));
            }
        }
        assert_eq!(seen.len(), t.links());
    }

    #[test]
    fn rectangular_torus_works() {
        let t = Torus::new(4, 2);
        assert_eq!(t.nodes(), 8);
        assert_eq!(t.distance(NodeId(0), NodeId(7)), 2);
    }
}
