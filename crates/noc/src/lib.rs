//! On-chip network model for the Uncorq embedded-ring coherence simulator.
//!
//! The paper's machine (Table 3) is a 64-core CMP connected by an 8×8 2D
//! torus with xy routing, 8 processor cycles per hop. This crate models:
//!
//! - [`Torus`] — the physical topology: node coordinates, wrap-around
//!   minimal xy routes, hop distances;
//! - [`Network`] — a timing model over the torus with per-link occupancy
//!   (contention) and serialization delay, offering [`Network::unicast`]
//!   and [`Network::multicast`] (the unconstrained delivery that Uncorq's
//!   `R` messages use);
//! - [`RingEmbedding`] — the logical unidirectional ring embedded in the
//!   torus (a Hamiltonian cycle), used by all `r` messages and by the `R`
//!   messages of Eager and Flexible Snooping.
//!
//! # Examples
//!
//! ```
//! use ring_noc::{NetworkConfig, Network, NodeId, Torus};
//!
//! let torus = Torus::new(8, 8);
//! let mut net = Network::new(torus, NetworkConfig::default());
//! let d = net.unicast(0, NodeId(0), NodeId(63), 8, ring_noc::Channel::Request);
//! assert!(d.arrival > 0);
//! assert!(d.hops >= 1);
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod fault;
mod multicast;
mod network;
mod reliable;
mod ring;
mod topology;

pub use fault::{
    DeliveryClass, FaultInjector, FaultKind, FaultPlan, FaultProfile, FaultStats, InjectedFault,
    OutageEvent,
};
pub use multicast::{multicast_tree, TreeEdge};
pub use network::{Channel, Delivery, LinkTraffic, Network, NetworkConfig, NocError};
pub use reliable::{
    FlowKey, FlowSnapshot, FrameId, RelAction, RelSnapshot, RelStats, ReliabilityConfig,
    ReliabilityConfigError, ReliableTransport, ACK_BYTES,
};
pub use ring::RingEmbedding;
pub use topology::{Direction, LinkId, NodeId, RouteIter, Torus};
