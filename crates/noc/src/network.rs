//! Network timing model: per-link occupancy and serialization.

use ring_sim::Cycle;
use serde::{Deserialize, Serialize};

use crate::multicast::multicast_tree;
use crate::topology::{NodeId, Torus};

/// Virtual network (message class) a message travels on.
///
/// Like real coherence NoCs, the network provides separate virtual
/// channels per protocol message class, so request bursts (e.g. Uncorq's
/// multicast `R` delivery) cannot block the response ring, and neither
/// can data transfers. Each class has its own per-link occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Channel {
    /// Snoop requests and probes.
    Request,
    /// Combined responses / acks.
    Response,
    /// Data-carrying transfers.
    Data,
}

impl Channel {
    /// Number of virtual channels.
    pub const COUNT: usize = 3;

    fn index(self) -> usize {
        match self {
            Channel::Request => 0,
            Channel::Response => 1,
            Channel::Data => 2,
        }
    }
}

/// Timing parameters of the on-chip network (paper Table 3: 8×8 2D torus,
/// 8 processor cycles per hop, 2 GHz network at 64 GB/s).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Latency of one router-to-router hop, in processor cycles.
    pub hop_cycles: Cycle,
    /// Link bandwidth, in bytes per processor cycle. Serialization of a
    /// message over a link takes `ceil(bytes / link_bytes_per_cycle)`.
    pub link_bytes_per_cycle: u64,
    /// When `true`, messages contend for links (a link can carry one flit
    /// per cycle); when `false`, the network is contention-free and every
    /// message sees only hop + serialization latency.
    pub model_contention: bool,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            hop_cycles: 8,
            link_bytes_per_cycle: 8,
            model_contention: true,
        }
    }
}

/// Outcome of injecting a message: when it arrives and how many links it
/// traversed (for traffic accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Delivery {
    /// Destination node.
    pub to: NodeId,
    /// Absolute arrival cycle at the destination.
    pub arrival: Cycle,
    /// Number of links traversed.
    pub hops: u64,
}

/// The network timing model. Owns per-link occupancy state.
///
/// All protocol messages (ring `R`/`r`, direct suppliership transfers,
/// Uncorq multicast requests, HT probes/responses) are timed through this
/// one model, so every protocol sees identical network resources — matching
/// the paper's "all algorithms use exactly the same network".
///
/// # Examples
///
/// ```
/// use ring_noc::{Network, NetworkConfig, NodeId, Torus};
///
/// let mut net = Network::new(Torus::new(8, 8), NetworkConfig::default());
/// // 1-hop control message: 8 cycles of hop latency + 1 cycle serialization.
/// let d = net.unicast(0, NodeId(0), NodeId(1), 8, ring_noc::Channel::Request);
/// assert_eq!(d.arrival, 9);
/// assert_eq!(d.hops, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    torus: Torus,
    cfg: NetworkConfig,
    /// Per-channel, per-link occupancy: `free_at[channel][link]`.
    free_at: Vec<Vec<Cycle>>,
    /// Per-link traffic counters (all virtual channels combined),
    /// indexed like `free_at[_]` by physical link.
    link_traffic: Vec<LinkTraffic>,
    messages_sent: u64,
}

/// Messages and bytes that crossed one physical link, for hotspot
/// analysis (the embedded ring concentrates load on its ring links).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkTraffic {
    /// Messages that traversed the link.
    pub messages: u64,
    /// Bytes that traversed the link.
    pub bytes: u64,
}

impl Network {
    /// Creates a network over `torus` with the given timing parameters.
    ///
    /// # Panics
    ///
    /// Panics if `hop_cycles` or `link_bytes_per_cycle` is zero.
    pub fn new(torus: Torus, cfg: NetworkConfig) -> Self {
        assert!(cfg.hop_cycles > 0, "hop latency must be positive");
        assert!(
            cfg.link_bytes_per_cycle > 0,
            "link bandwidth must be positive"
        );
        let links = torus.links();
        Network {
            torus,
            cfg,
            free_at: vec![vec![0; links]; Channel::COUNT],
            link_traffic: vec![LinkTraffic::default(); links],
            messages_sent: 0,
        }
    }

    /// The underlying topology.
    pub fn torus(&self) -> &Torus {
        &self.torus
    }

    /// The timing configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.cfg
    }

    /// Total messages injected so far.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Per-link traffic counters, indexed by physical link id.
    pub fn link_traffic(&self) -> &[LinkTraffic] {
        &self.link_traffic
    }

    fn serialization(&self, bytes: u64) -> Cycle {
        bytes.div_ceil(self.cfg.link_bytes_per_cycle)
    }

    /// Sends a `bytes`-sized message from `from` to `to` at cycle `now`
    /// along the xy route on virtual channel `ch`, reserving link
    /// occupancy on that channel.
    ///
    /// Sending to self arrives instantly with zero hops.
    pub fn unicast(
        &mut self,
        now: Cycle,
        from: NodeId,
        to: NodeId,
        bytes: u64,
        ch: Channel,
    ) -> Delivery {
        self.messages_sent += 1;
        if from == to {
            return Delivery {
                to,
                arrival: now,
                hops: 0,
            };
        }
        let ser = self.serialization(bytes);
        let route = self.torus.route(from, to);
        let free_at = &mut self.free_at[ch.index()];
        let mut t = now;
        for link in &route {
            self.link_traffic[link.0].messages += 1;
            self.link_traffic[link.0].bytes += bytes;
            if self.cfg.model_contention {
                let depart = t.max(free_at[link.0]);
                free_at[link.0] = depart + ser;
                t = depart + self.cfg.hop_cycles;
            } else {
                t += self.cfg.hop_cycles;
            }
        }
        Delivery {
            to,
            arrival: t + ser,
            hops: route.len() as u64,
        }
    }

    /// Estimates the contention-free latency from `from` to `to` for a
    /// `bytes`-sized message, without reserving any link.
    pub fn latency_estimate(&self, from: NodeId, to: NodeId, bytes: u64) -> Cycle {
        let hops = self.torus.distance(from, to) as Cycle;
        hops * self.cfg.hop_cycles + self.serialization(bytes)
    }

    /// Broadcasts a `bytes`-sized message from `root` to every other node
    /// using a dimension-ordered multicast tree (the unconstrained delivery
    /// Uncorq uses for its `R` messages). Returns one [`Delivery`] per
    /// destination; the `hops` field of each delivery is the number of
    /// *tree* links attributed to that destination (each tree link is
    /// counted exactly once across the whole broadcast, so summing `hops`
    /// over all deliveries gives total broadcast traffic).
    pub fn multicast(
        &mut self,
        now: Cycle,
        root: NodeId,
        bytes: u64,
        ch: Channel,
    ) -> Vec<Delivery> {
        self.messages_sent += 1;
        let ser = self.serialization(bytes);
        let edges = multicast_tree(&self.torus, root);
        let free_at = &mut self.free_at[ch.index()];
        // Arrival time at each node, filled in BFS order (edges are already
        // topologically ordered root-outward by construction).
        let mut arrive: Vec<Option<Cycle>> = vec![None; self.torus.nodes()];
        arrive[root.0] = Some(now);
        let mut deliveries = Vec::with_capacity(self.torus.nodes() - 1);
        for e in &edges {
            let t0 = arrive[e.from.0].expect("multicast edges must be topologically ordered");
            self.link_traffic[e.link.0].messages += 1;
            self.link_traffic[e.link.0].bytes += bytes;
            let t = if self.cfg.model_contention {
                let depart = t0.max(free_at[e.link.0]);
                free_at[e.link.0] = depart + ser;
                depart + self.cfg.hop_cycles
            } else {
                t0 + self.cfg.hop_cycles
            };
            arrive[e.to.0] = Some(t);
            deliveries.push(Delivery {
                to: e.to,
                arrival: t + ser,
                hops: 1,
            });
        }
        deliveries
    }

    /// Clears all link occupancy (used between independent measurements).
    pub fn reset_contention(&mut self) {
        for ch in &mut self.free_at {
            ch.fill(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Torus;

    const CH: Channel = Channel::Request;

    fn net() -> Network {
        Network::new(Torus::new(8, 8), NetworkConfig::default())
    }

    #[test]
    fn self_send_is_instant() {
        let mut n = net();
        let d = n.unicast(100, NodeId(3), NodeId(3), 64, CH);
        assert_eq!(d.arrival, 100);
        assert_eq!(d.hops, 0);
    }

    #[test]
    fn latency_scales_with_hops() {
        let mut n = net();
        let d1 = n.unicast(0, NodeId(0), NodeId(1), 8, CH);
        n.reset_contention();
        let d2 = n.unicast(0, NodeId(0), NodeId(2), 8, CH);
        assert_eq!(d1.arrival, 8 + 1);
        assert_eq!(d2.arrival, 16 + 1);
    }

    #[test]
    fn contention_serializes_same_link() {
        let mut n = net();
        // Two 64-byte messages over the same single link back-to-back.
        let a = n.unicast(0, NodeId(0), NodeId(1), 64, CH);
        let b = n.unicast(0, NodeId(0), NodeId(1), 64, CH);
        assert!(b.arrival > a.arrival, "second message must queue");
    }

    #[test]
    fn virtual_channels_are_independent() {
        let mut n = net();
        let a = n.unicast(0, NodeId(0), NodeId(1), 64, Channel::Request);
        let b = n.unicast(0, NodeId(0), NodeId(1), 64, Channel::Response);
        assert_eq!(a.arrival, b.arrival, "different classes must not contend");
    }

    #[test]
    fn no_contention_mode_is_pure_latency() {
        let cfg = NetworkConfig {
            model_contention: false,
            ..NetworkConfig::default()
        };
        let mut n = Network::new(Torus::new(8, 8), cfg);
        let a = n.unicast(0, NodeId(0), NodeId(1), 64, CH);
        let b = n.unicast(0, NodeId(0), NodeId(1), 64, CH);
        assert_eq!(a.arrival, b.arrival);
    }

    #[test]
    fn estimate_matches_uncontended_unicast() {
        let mut n = net();
        let est = n.latency_estimate(NodeId(0), NodeId(5), 8);
        let d = n.unicast(0, NodeId(0), NodeId(5), 8, CH);
        assert_eq!(est, d.arrival);
    }

    #[test]
    fn multicast_reaches_all_other_nodes() {
        let mut n = net();
        let ds = n.multicast(0, NodeId(0), 8, CH);
        assert_eq!(ds.len(), 63);
        let mut seen: Vec<usize> = ds.iter().map(|d| d.to.0).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 63);
        assert!(!seen.contains(&0));
    }

    #[test]
    fn multicast_total_hops_is_n_minus_one() {
        let mut n = net();
        let ds = n.multicast(0, NodeId(17), 8, CH);
        let total: u64 = ds.iter().map(|d| d.hops).sum();
        assert_eq!(total, 63);
    }

    #[test]
    fn multicast_max_arrival_bounded_by_diameter() {
        let mut n = net();
        let ds = n.multicast(0, NodeId(0), 8, CH);
        let max = ds.iter().map(|d| d.arrival).max().unwrap();
        // Diameter 8 hops * 8 cycles + serialization; with tree contention
        // allow a small margin.
        assert!(max <= 8 * 8 + 8 + 8, "max arrival {max}");
    }

    #[test]
    fn multicast_nearest_nodes_arrive_first() {
        let mut n = net();
        let ds = n.multicast(0, NodeId(0), 8, CH);
        let near = ds.iter().find(|d| d.to == NodeId(1)).unwrap().arrival;
        let far = ds.iter().find(|d| d.to == NodeId(36)).unwrap().arrival;
        assert!(near < far);
    }

    #[test]
    fn message_count_increments() {
        let mut n = net();
        n.unicast(0, NodeId(0), NodeId(1), 8, CH);
        n.multicast(0, NodeId(0), 8, CH);
        assert_eq!(n.messages_sent(), 2);
    }
}
