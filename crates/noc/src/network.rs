//! Network timing model: per-link occupancy and serialization.

use std::fmt;

use ring_sim::Cycle;
use serde::{Deserialize, Serialize};

use crate::fault::{FaultInjector, FaultKind, FaultPlan, FaultStats, InjectedFault, OutageEvent};
use crate::multicast::{multicast_tree, TreeEdge};
use crate::topology::{NodeId, Torus};

/// An error the network model reports instead of panicking, so the
/// machine layer can trace it as a protocol error and keep running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NocError {
    /// A multicast tree edge departs a node the broadcast has not
    /// reached yet — the tree is not topologically ordered root-outward
    /// (only possible with a corrupted or hand-installed tree).
    MulticastTreeDisorder {
        /// Root of the broadcast.
        root: NodeId,
        /// The unreached node the offending edge departs from.
        from: NodeId,
    },
}

impl fmt::Display for NocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NocError::MulticastTreeDisorder { root, from } => write!(
                f,
                "multicast tree rooted at {root} is not topologically ordered: \
                 an edge departs unreached node {from}"
            ),
        }
    }
}

impl std::error::Error for NocError {}

/// Virtual network (message class) a message travels on.
///
/// Like real coherence NoCs, the network provides separate virtual
/// channels per protocol message class, so request bursts (e.g. Uncorq's
/// multicast `R` delivery) cannot block the response ring, and neither
/// can data transfers. Each class has its own per-link occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Channel {
    /// Snoop requests and probes.
    Request,
    /// Combined responses / acks.
    Response,
    /// Data-carrying transfers.
    Data,
}

impl Channel {
    /// Number of virtual channels.
    pub const COUNT: usize = 3;

    /// Dense index of the channel (stable across runs; used for
    /// occupancy tables, flow sort keys, and trace encoding).
    pub fn index(self) -> usize {
        match self {
            Channel::Request => 0,
            Channel::Response => 1,
            Channel::Data => 2,
        }
    }
}

/// Timing parameters of the on-chip network (paper Table 3: 8×8 2D torus,
/// 8 processor cycles per hop, 2 GHz network at 64 GB/s).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Latency of one router-to-router hop, in processor cycles.
    pub hop_cycles: Cycle,
    /// Link bandwidth, in bytes per processor cycle. Serialization of a
    /// message over a link takes `ceil(bytes / link_bytes_per_cycle)`.
    pub link_bytes_per_cycle: u64,
    /// When `true`, messages contend for links (a link can carry one flit
    /// per cycle); when `false`, the network is contention-free and every
    /// message sees only hop + serialization latency.
    pub model_contention: bool,
}

impl NetworkConfig {
    /// Minimum cycles any *cross-node* delivery can take: one hop of
    /// latency plus at least one serialization cycle (every message is at
    /// least one byte, and `ceil(bytes / link_bytes_per_cycle) >= 1`).
    /// Contention and fault jitter only ever add delay, so this is a
    /// sound lower bound — the conservative-PDES lookahead.
    ///
    /// Same-node deliveries (`unicast` with `from == to`) bypass the
    /// network entirely and can be zero-latency; only node-local work may
    /// react inside a lookahead window.
    pub fn min_cross_node_latency(&self) -> Cycle {
        self.hop_cycles + 1
    }
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            hop_cycles: 8,
            link_bytes_per_cycle: 8,
            model_contention: true,
        }
    }
}

/// Outcome of injecting a message: when it arrives and how many links it
/// traversed (for traffic accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Delivery {
    /// Destination node.
    pub to: NodeId,
    /// Absolute arrival cycle at the destination.
    pub arrival: Cycle,
    /// Number of links traversed.
    pub hops: u64,
    /// The fault injected into this delivery, if chaos mode perturbed it
    /// (so the machine can trace injected faults next to protocol
    /// events).
    pub fault: Option<InjectedFault>,
    /// `true` when a lossy link destroyed the message in flight — only
    /// possible on the `*_lossy` wire paths used by the reliability
    /// sublayer, which retransmits it. `arrival` is then the cycle the
    /// frame died, and `fault` names the drop class.
    pub dropped: bool,
}

/// The network timing model. Owns per-link occupancy state.
///
/// All protocol messages (ring `R`/`r`, direct suppliership transfers,
/// Uncorq multicast requests, HT probes/responses) are timed through this
/// one model, so every protocol sees identical network resources — matching
/// the paper's "all algorithms use exactly the same network".
///
/// # Examples
///
/// ```
/// use ring_noc::{Network, NetworkConfig, NodeId, Torus};
///
/// let mut net = Network::new(Torus::new(8, 8), NetworkConfig::default());
/// // 1-hop control message: 8 cycles of hop latency + 1 cycle serialization.
/// let d = net.unicast(0, NodeId(0), NodeId(1), 8, ring_noc::Channel::Request);
/// assert_eq!(d.arrival, 9);
/// assert_eq!(d.hops, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    torus: Torus,
    cfg: NetworkConfig,
    /// Per-channel, per-link occupancy: `free_at[channel][link]`.
    free_at: Vec<Vec<Cycle>>,
    /// Per-link traffic counters (all virtual channels combined),
    /// indexed like `free_at[_]` by physical link.
    link_traffic: Vec<LinkTraffic>,
    /// Per-link destroyed-frame counters (drops + outage kills), for
    /// stall-report attribution.
    link_drops: Vec<u64>,
    /// Link-outage transitions observed by lossy traffic, drained by the
    /// machine into `LinkDown`/`LinkUp` trace events.
    outage_events: Vec<OutageEvent>,
    messages_sent: u64,
    /// Installed by chaos mode; `None` in normal runs.
    faults: Option<FaultInjector>,
    /// Per-root multicast trees, built lazily on first use and cached
    /// (the topology never changes) so repeated broadcasts from the
    /// same root allocate nothing.
    trees: Vec<Option<Box<[TreeEdge]>>>,
    /// Reusable per-broadcast arrival scratch, indexed by node;
    /// `Cycle::MAX` marks an unreached node.
    arrive: Vec<Cycle>,
    /// Reusable per-broadcast lossy scratch: nodes whose copy of the
    /// frame was destroyed (the subtree below a lossy edge).
    killed: Vec<bool>,
}

/// Applies the lossy per-link checks to one link crossing departing at
/// `depart`: scheduled outage first (a pure schedule lookup), then a
/// probabilistic drop draw. Returns the destroying fault, if any.
///
/// A free function over the injector and drop counters so callers can
/// use it while other fields of the network are borrowed.
fn lossy_check(
    faults: &mut Option<FaultInjector>,
    link_drops: &mut [u64],
    depart: Cycle,
    link: crate::topology::LinkId,
) -> Option<InjectedFault> {
    let inj = faults.as_mut()?;
    if let Some(up_at) = inj.link_down(depart, link) {
        inj.count_outage_drop();
        link_drops[link.0] += 1;
        return Some(InjectedFault {
            kind: FaultKind::Outage,
            delay: up_at.saturating_sub(depart),
        });
    }
    if inj.drop_frame() {
        link_drops[link.0] += 1;
        return Some(InjectedFault {
            kind: FaultKind::Drop,
            delay: 0,
        });
    }
    None
}

/// Messages and bytes that crossed one physical link, for hotspot
/// analysis (the embedded ring concentrates load on its ring links).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkTraffic {
    /// Messages that traversed the link.
    pub messages: u64,
    /// Bytes that traversed the link.
    pub bytes: u64,
}

impl Network {
    /// Creates a network over `torus` with the given timing parameters.
    ///
    /// # Panics
    ///
    /// Panics if `hop_cycles` or `link_bytes_per_cycle` is zero.
    pub fn new(torus: Torus, cfg: NetworkConfig) -> Self {
        assert!(cfg.hop_cycles > 0, "hop latency must be positive");
        assert!(
            cfg.link_bytes_per_cycle > 0,
            "link bandwidth must be positive"
        );
        let links = torus.links();
        let nodes = torus.nodes();
        Network {
            torus,
            cfg,
            free_at: vec![vec![0; links]; Channel::COUNT],
            link_traffic: vec![LinkTraffic::default(); links],
            link_drops: vec![0; links],
            outage_events: Vec::new(),
            messages_sent: 0,
            faults: None,
            trees: vec![None; nodes],
            arrive: vec![Cycle::MAX; nodes],
            killed: vec![false; nodes],
        }
    }

    /// Arms deterministic fault injection over `plan`. Jitter and
    /// congestion faults are applied *through the link-occupancy chain*,
    /// which preserves per-link, per-channel FIFO order (a later message
    /// can never overtake an earlier one on the same link) — so the
    /// embedded ring's ordering guarantee survives injection.
    ///
    /// # Panics
    ///
    /// Panics unless [`NetworkConfig::model_contention`] is on: without
    /// the occupancy chain, jitter could reorder same-link messages and
    /// inject out-of-spec faults into the ring.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        assert!(
            self.cfg.model_contention,
            "fault injection requires contention modeling (ring FIFO safety)"
        );
        let mut inj = FaultInjector::new(plan);
        inj.set_links(self.torus.links());
        self.faults = Some(inj);
    }

    /// Mutable access to the fault injector, for the machine layer to
    /// draw reorder/duplication decisions on non-ring deliveries.
    pub fn faults_mut(&mut self) -> Option<&mut FaultInjector> {
        self.faults.as_mut()
    }

    /// What the injector has injected so far (zero when chaos mode is
    /// off).
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.as_ref().map(|f| *f.stats()).unwrap_or_default()
    }

    /// The underlying topology.
    pub fn torus(&self) -> &Torus {
        &self.torus
    }

    /// The timing configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.cfg
    }

    /// Total messages injected so far.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Per-link traffic counters, indexed by physical link id.
    pub fn link_traffic(&self) -> &[LinkTraffic] {
        &self.link_traffic
    }

    /// Per-link destroyed-frame counters (probabilistic drops plus
    /// outage kills), indexed by physical link id. All zero unless the
    /// lossy wire paths ran.
    pub fn link_drops(&self) -> &[u64] {
        &self.link_drops
    }

    /// Drains link-outage transitions observed since the last call, in
    /// chronological order, appending them to `out`.
    pub fn take_outage_events(&mut self, out: &mut Vec<OutageEvent>) {
        out.append(&mut self.outage_events);
    }

    fn serialization(&self, bytes: u64) -> Cycle {
        bytes.div_ceil(self.cfg.link_bytes_per_cycle)
    }

    /// The minimum latency of any cross-node delivery this network can
    /// ever produce: one hop plus at least one serialization cycle.
    /// Contention, jitter, and congestion only ever *add* delay, and a
    /// non-empty message serializes for at least one cycle, so every
    /// delivery between distinct nodes arrives at least this many
    /// cycles after its send.
    ///
    /// This is the conservative-PDES lookahead: a parallel engine that
    /// synchronizes its logical processes every `w` cycles is race-free
    /// for `w <= min_link_latency()`, because no event executed in the
    /// current window can schedule a cross-node delivery *into* that
    /// window. (Same-node deliveries can be zero-latency —
    /// [`Network::unicast`] with `from == to` arrives immediately — so
    /// only node-local work may react within the window.)
    pub fn min_link_latency(&self) -> Cycle {
        self.cfg.min_cross_node_latency()
    }

    /// Sends a `bytes`-sized message from `from` to `to` at cycle `now`
    /// along the xy route on virtual channel `ch`, reserving link
    /// occupancy on that channel.
    ///
    /// Sending to self arrives instantly with zero hops.
    pub fn unicast(
        &mut self,
        now: Cycle,
        from: NodeId,
        to: NodeId,
        bytes: u64,
        ch: Channel,
    ) -> Delivery {
        self.messages_sent += 1;
        if from == to {
            return Delivery {
                to,
                arrival: now,
                hops: 0,
                fault: None,
                dropped: false,
            };
        }
        let ser = self.serialization(bytes);
        // Chaos mode: jitter delays this message's injection; a
        // congestion burst keeps every link of the route busy for a
        // while. Both act through the occupancy chain below, so same-link
        // FIFO order is preserved.
        let mut fault = None;
        if let Some(inj) = self.faults.as_mut() {
            if let Some(jit) = inj.jitter() {
                fault = Some(InjectedFault {
                    kind: FaultKind::Jitter,
                    delay: jit,
                });
            }
            if let Some(burst) = inj.congestion() {
                let free_at = &mut self.free_at[ch.index()];
                for link in self.torus.route_iter(from, to) {
                    free_at[link.0] = free_at[link.0].max(now) + burst;
                }
                if fault.is_none() {
                    fault = Some(InjectedFault {
                        kind: FaultKind::Congestion,
                        delay: burst,
                    });
                }
            }
        }
        let jitter = match fault {
            Some(InjectedFault {
                kind: FaultKind::Jitter,
                delay,
            }) => delay,
            _ => 0,
        };
        let free_at = &mut self.free_at[ch.index()];
        let mut t = now + jitter;
        let mut hops = 0;
        for link in self.torus.route_iter(from, to) {
            self.link_traffic[link.0].messages += 1;
            self.link_traffic[link.0].bytes += bytes;
            hops += 1;
            if self.cfg.model_contention {
                let depart = t.max(free_at[link.0]);
                free_at[link.0] = depart + ser;
                t = depart + self.cfg.hop_cycles;
            } else {
                t += self.cfg.hop_cycles;
            }
        }
        Delivery {
            to,
            arrival: t + ser,
            hops,
            fault,
            dropped: false,
        }
    }

    /// Estimates the contention-free latency from `from` to `to` for a
    /// `bytes`-sized message, without reserving any link.
    pub fn latency_estimate(&self, from: NodeId, to: NodeId, bytes: u64) -> Cycle {
        let hops = self.torus.distance(from, to) as Cycle;
        hops * self.cfg.hop_cycles + self.serialization(bytes)
    }

    /// Broadcasts a `bytes`-sized message from `root` to every other node
    /// using a dimension-ordered multicast tree (the unconstrained delivery
    /// Uncorq uses for its `R` messages). Returns one [`Delivery`] per
    /// destination; the `hops` field of each delivery is the number of
    /// *tree* links attributed to that destination (each tree link is
    /// counted exactly once across the whole broadcast, so summing `hops`
    /// over all deliveries gives total broadcast traffic).
    ///
    /// Allocating convenience wrapper over [`Network::multicast_into`].
    pub fn multicast(
        &mut self,
        now: Cycle,
        root: NodeId,
        bytes: u64,
        ch: Channel,
    ) -> Result<Vec<Delivery>, NocError> {
        let mut deliveries = Vec::with_capacity(self.torus.nodes() - 1);
        self.multicast_into(now, root, bytes, ch, &mut deliveries)?;
        Ok(deliveries)
    }

    /// [`Network::multicast`] into a caller-owned buffer (cleared first),
    /// so the per-broadcast hot path allocates nothing: the multicast
    /// tree is cached per root and the arrival scratch is reused.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::MulticastTreeDisorder`] if the tree is not
    /// topologically ordered root-outward — impossible for trees built
    /// by [`multicast_tree`], so only a corrupted or hand-installed tree
    /// (see [`Network::install_multicast_tree`]) triggers it. Link
    /// traffic and occupancy already charged for earlier edges stay
    /// charged; `out` holds the deliveries computed before the error.
    pub fn multicast_into(
        &mut self,
        now: Cycle,
        root: NodeId,
        bytes: u64,
        ch: Channel,
        out: &mut Vec<Delivery>,
    ) -> Result<(), NocError> {
        out.clear();
        self.messages_sent += 1;
        let ser = self.serialization(bytes);
        let edges: &[TreeEdge] = self.trees[root.0]
            .get_or_insert_with(|| multicast_tree(&self.torus, root).into_boxed_slice());
        // Arrival time at each node, filled in BFS order (edges are
        // topologically ordered root-outward by construction).
        self.arrive.fill(Cycle::MAX);
        self.arrive[root.0] = now;
        for e in edges {
            let t0 = self.arrive[e.from.0];
            if t0 == Cycle::MAX {
                return Err(NocError::MulticastTreeDisorder { root, from: e.from });
            }
            self.link_traffic[e.link.0].messages += 1;
            self.link_traffic[e.link.0].bytes += bytes;
            // Chaos mode, per tree edge: jitter delays the hop, a
            // congestion burst keeps the edge's link busy (delaying this
            // and subsequent traffic). Multicast deliveries are unordered
            // by design, so any perturbation here is in-spec.
            let mut fault = None;
            if let Some(inj) = self.faults.as_mut() {
                if let Some(jit) = inj.jitter() {
                    fault = Some(InjectedFault {
                        kind: FaultKind::Jitter,
                        delay: jit,
                    });
                }
                if let Some(burst) = inj.congestion() {
                    self.free_at[ch.index()][e.link.0] =
                        self.free_at[ch.index()][e.link.0].max(t0) + burst;
                    if fault.is_none() {
                        fault = Some(InjectedFault {
                            kind: FaultKind::Congestion,
                            delay: burst,
                        });
                    }
                }
            }
            let jitter = match fault {
                Some(InjectedFault {
                    kind: FaultKind::Jitter,
                    delay,
                }) => delay,
                _ => 0,
            };
            let free_at = &mut self.free_at[ch.index()];
            let t = if self.cfg.model_contention {
                let depart = (t0 + jitter).max(free_at[e.link.0]);
                free_at[e.link.0] = depart + ser;
                depart + self.cfg.hop_cycles
            } else {
                t0 + jitter + self.cfg.hop_cycles
            };
            self.arrive[e.to.0] = t;
            out.push(Delivery {
                to: e.to,
                arrival: t + ser,
                hops: 1,
                fault,
                dropped: false,
            });
        }
        Ok(())
    }

    /// [`Network::unicast`] over lossy links: each link crossed may
    /// destroy the frame, either probabilistically
    /// ([`crate::FaultProfile::drop_prob`], drawn per link) or because
    /// the link sits inside a scheduled outage window. A destroyed frame
    /// comes back with [`Delivery::dropped`] set and `fault` naming the
    /// drop class; links up to and including the lossy one keep their
    /// occupancy and traffic charges (the frame really crossed them).
    ///
    /// Only the reliability sublayer sends through this path — the
    /// protocol layers above it always use [`Network::unicast`], whose
    /// draw sequence is untouched, so runs without reliability stay
    /// byte-identical.
    pub fn unicast_lossy(
        &mut self,
        now: Cycle,
        from: NodeId,
        to: NodeId,
        bytes: u64,
        ch: Channel,
    ) -> Delivery {
        if let Some(inj) = self.faults.as_mut() {
            inj.observe_outages(now, &mut self.outage_events);
        }
        self.messages_sent += 1;
        if from == to {
            return Delivery {
                to,
                arrival: now,
                hops: 0,
                fault: None,
                dropped: false,
            };
        }
        let ser = self.serialization(bytes);
        let mut fault = None;
        if let Some(inj) = self.faults.as_mut() {
            if let Some(jit) = inj.jitter() {
                fault = Some(InjectedFault {
                    kind: FaultKind::Jitter,
                    delay: jit,
                });
            }
            if let Some(burst) = inj.congestion() {
                let free_at = &mut self.free_at[ch.index()];
                for link in self.torus.route_iter(from, to) {
                    free_at[link.0] = free_at[link.0].max(now) + burst;
                }
                if fault.is_none() {
                    fault = Some(InjectedFault {
                        kind: FaultKind::Congestion,
                        delay: burst,
                    });
                }
            }
        }
        let jitter = match fault {
            Some(InjectedFault {
                kind: FaultKind::Jitter,
                delay,
            }) => delay,
            _ => 0,
        };
        let mut t = now + jitter;
        let mut hops = 0;
        let mut dropped = false;
        for link in self.torus.route_iter(from, to) {
            self.link_traffic[link.0].messages += 1;
            self.link_traffic[link.0].bytes += bytes;
            hops += 1;
            let depart;
            if self.cfg.model_contention {
                depart = t.max(self.free_at[ch.index()][link.0]);
                self.free_at[ch.index()][link.0] = depart + ser;
                t = depart + self.cfg.hop_cycles;
            } else {
                depart = t;
                t += self.cfg.hop_cycles;
            }
            if let Some(kill) = lossy_check(&mut self.faults, &mut self.link_drops, depart, link) {
                fault = Some(kill);
                dropped = true;
                break;
            }
        }
        Delivery {
            to,
            arrival: t + ser,
            hops,
            fault,
            dropped,
        }
    }

    /// [`Network::multicast_into`] over lossy links. Each tree edge may
    /// destroy the frame crossing it; a destroyed frame kills the whole
    /// subtree below that edge (children of a dropped node are reported
    /// dropped with zero hops and no link charges — the frame never
    /// departed their parent).
    ///
    /// # Errors
    ///
    /// Same contract as [`Network::multicast_into`].
    pub fn multicast_lossy_into(
        &mut self,
        now: Cycle,
        root: NodeId,
        bytes: u64,
        ch: Channel,
        out: &mut Vec<Delivery>,
    ) -> Result<(), NocError> {
        if let Some(inj) = self.faults.as_mut() {
            inj.observe_outages(now, &mut self.outage_events);
        }
        out.clear();
        self.messages_sent += 1;
        let ser = self.serialization(bytes);
        if self.trees[root.0].is_none() {
            self.trees[root.0] = Some(multicast_tree(&self.torus, root).into_boxed_slice());
        }
        let Some(edges) = self.trees[root.0].take() else {
            unreachable!("tree built above");
        };
        self.arrive.fill(Cycle::MAX);
        self.arrive[root.0] = now;
        // Nodes whose copy of the frame was destroyed (the subtree below
        // a lossy edge): a dropped node keeps its parent's arrival time
        // for tree-ordering purposes and is marked in the reusable
        // scratch.
        self.killed.fill(false);
        let mut result = Ok(());
        for e in edges.iter() {
            let t0 = self.arrive[e.from.0];
            if t0 == Cycle::MAX {
                result = Err(NocError::MulticastTreeDisorder { root, from: e.from });
                break;
            }
            if self.killed[e.from.0] {
                // The frame never reached the parent; the whole subtree
                // is dropped without touching any link.
                self.killed[e.to.0] = true;
                self.arrive[e.to.0] = t0;
                out.push(Delivery {
                    to: e.to,
                    arrival: t0,
                    hops: 0,
                    fault: None,
                    dropped: true,
                });
                continue;
            }
            self.link_traffic[e.link.0].messages += 1;
            self.link_traffic[e.link.0].bytes += bytes;
            let mut fault = None;
            if let Some(inj) = self.faults.as_mut() {
                if let Some(jit) = inj.jitter() {
                    fault = Some(InjectedFault {
                        kind: FaultKind::Jitter,
                        delay: jit,
                    });
                }
                if let Some(burst) = inj.congestion() {
                    self.free_at[ch.index()][e.link.0] =
                        self.free_at[ch.index()][e.link.0].max(t0) + burst;
                    if fault.is_none() {
                        fault = Some(InjectedFault {
                            kind: FaultKind::Congestion,
                            delay: burst,
                        });
                    }
                }
            }
            let jitter = match fault {
                Some(InjectedFault {
                    kind: FaultKind::Jitter,
                    delay,
                }) => delay,
                _ => 0,
            };
            let (depart, t) = if self.cfg.model_contention {
                let depart = (t0 + jitter).max(self.free_at[ch.index()][e.link.0]);
                self.free_at[ch.index()][e.link.0] = depart + ser;
                (depart, depart + self.cfg.hop_cycles)
            } else {
                (t0 + jitter, t0 + jitter + self.cfg.hop_cycles)
            };
            let mut dropped = false;
            if let Some(kill) = lossy_check(&mut self.faults, &mut self.link_drops, depart, e.link)
            {
                fault = Some(kill);
                dropped = true;
                self.killed[e.to.0] = true;
            }
            self.arrive[e.to.0] = t;
            out.push(Delivery {
                to: e.to,
                arrival: t + ser,
                hops: 1,
                fault,
                dropped,
            });
        }
        self.trees[root.0] = Some(edges);
        result
    }

    /// Replaces the cached multicast tree for `root` with an explicit
    /// edge list. A testing/fault-modeling hook: the edges are *not*
    /// validated here, so a disordered tree makes the next broadcast
    /// from `root` report [`NocError::MulticastTreeDisorder`].
    pub fn install_multicast_tree(&mut self, root: NodeId, edges: Vec<TreeEdge>) {
        self.trees[root.0] = Some(edges.into_boxed_slice());
    }

    /// Clears all link occupancy (used between independent measurements).
    pub fn reset_contention(&mut self) {
        for ch in &mut self.free_at {
            ch.fill(0);
        }
    }
}

impl Channel {
    /// Inverse of [`Channel::index`].
    pub fn from_index(i: usize) -> Option<Channel> {
        match i {
            0 => Some(Channel::Request),
            1 => Some(Channel::Response),
            2 => Some(Channel::Data),
            _ => None,
        }
    }
}

impl Network {
    /// Serializes the network's dynamic state: link occupancy chains,
    /// traffic/drop counters, undrained outage transitions, and the
    /// fault injector's cursor. The topology and timing configuration
    /// are rebuilt from the machine configuration at restore, and the
    /// multicast-tree cache and per-call scratch buffers are
    /// deliberately excluded (they are recomputed caches with no
    /// observable effect).
    pub fn snap_save(&self, w: &mut ring_snapshot::SnapWriter) {
        w.put(&self.free_at);
        w.put(
            &self
                .link_traffic
                .iter()
                .map(|t| (t.messages, t.bytes))
                .collect::<Vec<(u64, u64)>>(),
        );
        w.put(&self.link_drops);
        w.put(
            &self
                .outage_events
                .iter()
                .map(|e| (e.at, e.link.0 as u64, (e.down, e.up_at)))
                .collect::<Vec<(Cycle, u64, (bool, Cycle))>>(),
        );
        w.put(&self.messages_sent);
        match &self.faults {
            None => w.put(&false),
            Some(inj) => {
                w.put(&true);
                inj.snap_save(w);
            }
        }
    }

    /// Rebuilds a network from configuration plus snapshot state.
    pub fn snap_load(
        r: &mut ring_snapshot::SnapReader<'_>,
        torus: Torus,
        cfg: NetworkConfig,
        plan: Option<FaultPlan>,
    ) -> Result<Self, ring_snapshot::SnapshotError> {
        let mut n = Network::new(torus, cfg);
        let free_at: Vec<Vec<Cycle>> = r.get()?;
        if free_at.len() != n.free_at.len() || free_at.iter().any(|f| f.len() != n.torus.links()) {
            return Err(r.malformed("link occupancy shape does not match the topology"));
        }
        n.free_at = free_at;
        let traffic: Vec<(u64, u64)> = r.get()?;
        if traffic.len() != n.link_traffic.len() {
            return Err(r.malformed("link traffic length does not match the topology"));
        }
        n.link_traffic = traffic
            .into_iter()
            .map(|(messages, bytes)| LinkTraffic { messages, bytes })
            .collect();
        n.link_drops = r.get()?;
        if n.link_drops.len() != n.torus.links() {
            return Err(r.malformed("link drop length does not match the topology"));
        }
        let outages: Vec<(Cycle, u64, (bool, Cycle))> = r.get()?;
        n.outage_events = outages
            .into_iter()
            .map(|(at, link, (down, up_at))| OutageEvent {
                at,
                link: crate::topology::LinkId(link as usize),
                down,
                up_at,
            })
            .collect();
        n.messages_sent = r.get()?;
        let has_faults: bool = r.get()?;
        n.faults =
            match (has_faults, plan) {
                (false, _) => None,
                (true, Some(plan)) => Some(FaultInjector::snap_load(r, plan, n.torus.links())?),
                (true, None) => return Err(r.malformed(
                    "snapshot carries fault-injector state but the configuration has no fault plan",
                )),
            };
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Torus;

    const CH: Channel = Channel::Request;

    fn net() -> Network {
        Network::new(Torus::new(8, 8), NetworkConfig::default())
    }

    #[test]
    fn lookahead_lower_bounds_every_cross_node_delivery() {
        // Default config: 8 cycles/hop + 1 serialization cycle.
        assert_eq!(NetworkConfig::default().min_cross_node_latency(), 9);
        let mut n = net();
        let la = n.min_link_latency();
        for to in 1..64usize {
            let d = n.unicast(0, NodeId(0), NodeId(to), 64, CH);
            assert!(d.arrival >= la, "node {to}: {} < {la}", d.arrival);
        }
    }

    #[test]
    fn self_send_is_instant() {
        let mut n = net();
        let d = n.unicast(100, NodeId(3), NodeId(3), 64, CH);
        assert_eq!(d.arrival, 100);
        assert_eq!(d.hops, 0);
    }

    #[test]
    fn latency_scales_with_hops() {
        let mut n = net();
        let d1 = n.unicast(0, NodeId(0), NodeId(1), 8, CH);
        n.reset_contention();
        let d2 = n.unicast(0, NodeId(0), NodeId(2), 8, CH);
        assert_eq!(d1.arrival, 8 + 1);
        assert_eq!(d2.arrival, 16 + 1);
    }

    #[test]
    fn contention_serializes_same_link() {
        let mut n = net();
        // Two 64-byte messages over the same single link back-to-back.
        let a = n.unicast(0, NodeId(0), NodeId(1), 64, CH);
        let b = n.unicast(0, NodeId(0), NodeId(1), 64, CH);
        assert!(b.arrival > a.arrival, "second message must queue");
    }

    #[test]
    fn virtual_channels_are_independent() {
        let mut n = net();
        let a = n.unicast(0, NodeId(0), NodeId(1), 64, Channel::Request);
        let b = n.unicast(0, NodeId(0), NodeId(1), 64, Channel::Response);
        assert_eq!(a.arrival, b.arrival, "different classes must not contend");
    }

    #[test]
    fn no_contention_mode_is_pure_latency() {
        let cfg = NetworkConfig {
            model_contention: false,
            ..NetworkConfig::default()
        };
        let mut n = Network::new(Torus::new(8, 8), cfg);
        let a = n.unicast(0, NodeId(0), NodeId(1), 64, CH);
        let b = n.unicast(0, NodeId(0), NodeId(1), 64, CH);
        assert_eq!(a.arrival, b.arrival);
    }

    #[test]
    fn estimate_matches_uncontended_unicast() {
        let mut n = net();
        let est = n.latency_estimate(NodeId(0), NodeId(5), 8);
        let d = n.unicast(0, NodeId(0), NodeId(5), 8, CH);
        assert_eq!(est, d.arrival);
    }

    #[test]
    fn multicast_reaches_all_other_nodes() {
        let mut n = net();
        let ds = n.multicast(0, NodeId(0), 8, CH).unwrap();
        assert_eq!(ds.len(), 63);
        let mut seen: Vec<usize> = ds.iter().map(|d| d.to.0).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 63);
        assert!(!seen.contains(&0));
    }

    #[test]
    fn multicast_total_hops_is_n_minus_one() {
        let mut n = net();
        let ds = n.multicast(0, NodeId(17), 8, CH).unwrap();
        let total: u64 = ds.iter().map(|d| d.hops).sum();
        assert_eq!(total, 63);
    }

    #[test]
    fn multicast_max_arrival_bounded_by_diameter() {
        let mut n = net();
        let ds = n.multicast(0, NodeId(0), 8, CH).unwrap();
        let max = ds.iter().map(|d| d.arrival).max().unwrap();
        // Diameter 8 hops * 8 cycles + serialization; with tree contention
        // allow a small margin.
        assert!(max <= 8 * 8 + 8 + 8, "max arrival {max}");
    }

    #[test]
    fn multicast_nearest_nodes_arrive_first() {
        let mut n = net();
        let ds = n.multicast(0, NodeId(0), 8, CH).unwrap();
        let near = ds.iter().find(|d| d.to == NodeId(1)).unwrap().arrival;
        let far = ds.iter().find(|d| d.to == NodeId(36)).unwrap().arrival;
        assert!(near < far);
    }

    #[test]
    fn message_count_increments() {
        let mut n = net();
        n.unicast(0, NodeId(0), NodeId(1), 8, CH);
        n.multicast(0, NodeId(0), 8, CH).unwrap();
        assert_eq!(n.messages_sent(), 2);
    }

    #[test]
    fn repeated_multicasts_reuse_the_cached_tree() {
        let mut a = net();
        let mut b = net();
        // Same roots, fresh contention each time: the cached-tree path
        // must time every broadcast exactly like a fresh network.
        for root in [NodeId(0), NodeId(17), NodeId(63)] {
            for _ in 0..3 {
                let da = a.multicast(0, root, 8, CH).unwrap();
                a.reset_contention();
                let db = b.multicast(0, root, 8, CH).unwrap();
                b.reset_contention();
                assert_eq!(da, db);
            }
        }
    }

    #[test]
    fn multicast_into_reuses_the_buffer() {
        let mut n = net();
        let mut buf = Vec::new();
        n.multicast_into(0, NodeId(0), 8, CH, &mut buf).unwrap();
        assert_eq!(buf.len(), 63);
        n.reset_contention();
        let first = buf.clone();
        n.multicast_into(0, NodeId(0), 8, CH, &mut buf).unwrap();
        assert_eq!(buf, first, "buffer must be cleared and refilled");
    }

    #[test]
    fn disordered_tree_reports_typed_error() {
        let mut n = net();
        // An edge departing node 5, which the (empty-prefix) broadcast
        // from node 0 has not reached.
        let t = Torus::new(8, 8);
        let bad = vec![crate::multicast::TreeEdge {
            from: NodeId(5),
            to: NodeId(6),
            link: t.link(NodeId(5), crate::topology::Direction::East),
        }];
        n.install_multicast_tree(NodeId(0), bad);
        let err = n.multicast(0, NodeId(0), 8, CH).unwrap_err();
        assert_eq!(
            err,
            NocError::MulticastTreeDisorder {
                root: NodeId(0),
                from: NodeId(5),
            }
        );
        assert!(err.to_string().contains("not topologically ordered"));
    }

    fn chaos_net(seed: u64) -> Network {
        let mut n = net();
        n.set_fault_plan(crate::fault::FaultPlan::new(
            crate::fault::FaultProfile::chaos(),
            seed,
        ));
        n
    }

    #[test]
    fn faults_never_accelerate_delivery() {
        let mut clean = net();
        let mut dirty = chaos_net(1);
        for i in 0..200u64 {
            let from = NodeId((i % 64) as usize);
            let to = NodeId(((i * 13 + 7) % 64) as usize);
            let a = clean.unicast(i * 10, from, to, 72, CH);
            let b = dirty.unicast(i * 10, from, to, 72, CH);
            assert!(
                b.arrival >= a.arrival,
                "fault injection made a delivery faster: {} < {}",
                b.arrival,
                a.arrival
            );
        }
    }

    #[test]
    fn faults_preserve_same_link_fifo() {
        // Messages injected in time order on one link must arrive in
        // order even under heavy jitter/congestion — the ring's FIFO
        // guarantee. (Same-cycle sends tie-break FIFO in the event
        // queue, so equality is fine.)
        for seed in 0..20u64 {
            let mut n = chaos_net(seed);
            let mut last = 0;
            for i in 0..100u64 {
                let d = n.unicast(i, NodeId(0), NodeId(1), 8, CH);
                assert!(
                    d.arrival >= last,
                    "seed {seed}: delivery {i} overtook its predecessor"
                );
                last = d.arrival;
            }
        }
    }

    #[test]
    fn fault_injection_is_deterministic_and_annotated() {
        let mut a = chaos_net(3);
        let mut b = chaos_net(3);
        let mut faults = 0;
        for i in 0..300u64 {
            let da = a.unicast(i * 3, NodeId(0), NodeId(9), 72, CH);
            let db = b.unicast(i * 3, NodeId(0), NodeId(9), 72, CH);
            assert_eq!(da, db);
            if da.fault.is_some() {
                faults += 1;
            }
        }
        assert!(faults > 0, "chaos profile should annotate some deliveries");
        assert_eq!(a.fault_stats(), b.fault_stats());
        assert!(a.fault_stats().total() >= faults);
    }

    #[test]
    fn multicast_faults_are_annotated() {
        let mut n = chaos_net(5);
        let mut faulted = 0;
        for i in 0..20u64 {
            let ds = n.multicast(i * 100, NodeId(0), 8, CH).unwrap();
            faulted += ds.iter().filter(|d| d.fault.is_some()).count();
        }
        assert!(faulted > 0, "multicast edges should see injected faults");
    }

    #[test]
    #[should_panic(expected = "contention modeling")]
    fn fault_plan_requires_contention_model() {
        let cfg = NetworkConfig {
            model_contention: false,
            ..NetworkConfig::default()
        };
        let mut n = Network::new(Torus::new(4, 4), cfg);
        n.set_fault_plan(crate::fault::FaultPlan::new(
            crate::fault::FaultProfile::jitter(),
            0,
        ));
    }
}
