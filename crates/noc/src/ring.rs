//! The logical unidirectional ring embedded in the physical network.

use serde::{Deserialize, Serialize};

use crate::topology::{NodeId, Torus};

/// A logical unidirectional ring embedded in a torus: a cyclic order over
/// all nodes. `r` messages (and, in Eager/Flexible Snooping, `R` messages)
/// travel node-to-node in this order; each logical hop is routed over the
/// physical network.
///
/// Two embeddings are provided:
///
/// - [`RingEmbedding::boustrophedon`] — a snake path (row 0 left-to-right,
///   row 1 right-to-left, …) closed by the torus wrap link. Every logical
///   hop is exactly one physical link, the natural embedding for a torus
///   and the one used for all paper experiments.
/// - [`RingEmbedding::row_major`] — naive row-major order, in which the
///   end-of-row hop crosses two links. Used by the embedding ablation
///   bench.
///
/// # Examples
///
/// ```
/// use ring_noc::{NodeId, RingEmbedding, Torus};
///
/// let t = Torus::new(8, 8);
/// let ring = RingEmbedding::boustrophedon(&t);
/// assert_eq!(ring.len(), 64);
/// // Following successors visits every node once and returns to the start.
/// let mut n = NodeId(0);
/// for _ in 0..64 { n = ring.successor(n); }
/// assert_eq!(n, NodeId(0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RingEmbedding {
    /// order[i] = node at ring position i.
    order: Vec<NodeId>,
    /// position[node.0] = ring position of node.
    position: Vec<usize>,
}

impl RingEmbedding {
    fn from_order(order: Vec<NodeId>) -> Self {
        let mut position = vec![usize::MAX; order.len()];
        for (i, n) in order.iter().enumerate() {
            assert!(
                position[n.0] == usize::MAX,
                "node {n} appears twice in ring order"
            );
            position[n.0] = i;
        }
        assert!(
            position.iter().all(|&p| p != usize::MAX),
            "ring order must cover every node"
        );
        RingEmbedding { order, position }
    }

    /// Builds the snake (boustrophedon) embedding over `torus`; every
    /// logical ring hop traverses exactly one physical link.
    pub fn boustrophedon(torus: &Torus) -> Self {
        let mut order = Vec::with_capacity(torus.nodes());
        for y in 0..torus.height() {
            if y % 2 == 0 {
                for x in 0..torus.width() {
                    order.push(torus.node_at(x, y));
                }
            } else {
                for x in (0..torus.width()).rev() {
                    order.push(torus.node_at(x, y));
                }
            }
        }
        Self::from_order(order)
    }

    /// Builds the naive row-major embedding over `torus` (ablation only).
    pub fn row_major(torus: &Torus) -> Self {
        Self::from_order(torus.iter().collect())
    }

    /// Builds a ring from an explicit node order.
    ///
    /// # Panics
    ///
    /// Panics if the order is not a permutation of `0..order.len()`.
    pub fn from_custom_order(order: Vec<NodeId>) -> Self {
        Self::from_order(order)
    }

    /// The same ring traversed in the opposite direction — the paper's
    /// §2.1 load-balancing option ("the same ring with different
    /// directions") for spreading lines across two logical rings.
    pub fn reversed(&self) -> Self {
        // `self` is already a validated permutation, so build the
        // reversed order and its position index directly instead of
        // cloning and re-validating through `from_order`.
        let n = self.order.len();
        let order: Vec<NodeId> = self.order.iter().rev().copied().collect();
        let mut position = vec![0; n];
        for (i, node) in order.iter().enumerate() {
            position[node.0] = i;
        }
        RingEmbedding { order, position }
    }

    /// Number of nodes on the ring.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the ring is empty (never true for a valid embedding).
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The node after `n` in ring order.
    pub fn successor(&self, n: NodeId) -> NodeId {
        let p = self.position[n.0];
        self.order[(p + 1) % self.order.len()]
    }

    /// The node before `n` in ring order.
    pub fn predecessor(&self, n: NodeId) -> NodeId {
        let p = self.position[n.0];
        self.order[(p + self.order.len() - 1) % self.order.len()]
    }

    /// Ring position of `n` (0-based).
    pub fn position(&self, n: NodeId) -> usize {
        self.position[n.0]
    }

    /// Number of ring hops from `from` to `to` following ring order
    /// (0 when equal).
    pub fn ring_distance(&self, from: NodeId, to: NodeId) -> usize {
        let n = self.order.len();
        (self.position[to.0] + n - self.position[from.0]) % n
    }

    /// Whether `x` lies strictly between `from` and `to` in ring order
    /// (exclusive on both ends).
    pub fn is_between(&self, from: NodeId, x: NodeId, to: NodeId) -> bool {
        let dx = self.ring_distance(from, x);
        let dt = self.ring_distance(from, to);
        dx > 0 && dx < dt
    }

    /// Iterates nodes in ring order starting at position 0.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.order.iter().copied()
    }

    /// Total physical links traversed by one full lap of the ring.
    pub fn lap_physical_hops(&self, torus: &Torus) -> usize {
        (0..self.order.len())
            .map(|i| {
                let a = self.order[i];
                let b = self.order[(i + 1) % self.order.len()];
                torus.distance(a, b)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boustrophedon_hops_are_single_links() {
        let t = Torus::new(8, 8);
        let ring = RingEmbedding::boustrophedon(&t);
        for n in t.iter() {
            let s = ring.successor(n);
            assert_eq!(t.distance(n, s), 1, "hop {n} -> {s} not adjacent");
        }
        assert_eq!(ring.lap_physical_hops(&t), 64);
    }

    #[test]
    fn row_major_lap_is_longer() {
        let t = Torus::new(8, 8);
        let snake = RingEmbedding::boustrophedon(&t);
        let naive = RingEmbedding::row_major(&t);
        assert!(naive.lap_physical_hops(&t) > snake.lap_physical_hops(&t));
    }

    #[test]
    fn successor_predecessor_inverse() {
        let t = Torus::new(8, 8);
        let ring = RingEmbedding::boustrophedon(&t);
        for n in t.iter() {
            assert_eq!(ring.predecessor(ring.successor(n)), n);
        }
    }

    #[test]
    fn ring_distance_properties() {
        let t = Torus::new(4, 4);
        let ring = RingEmbedding::boustrophedon(&t);
        for a in t.iter() {
            assert_eq!(ring.ring_distance(a, a), 0);
            for b in t.iter() {
                if a != b {
                    let d1 = ring.ring_distance(a, b);
                    let d2 = ring.ring_distance(b, a);
                    assert_eq!(d1 + d2, 16);
                }
            }
        }
    }

    #[test]
    fn is_between_matches_order() {
        let t = Torus::new(4, 4);
        let ring = RingEmbedding::boustrophedon(&t);
        let a = ring.iter().next().unwrap();
        let b = ring.successor(a);
        let c = ring.successor(b);
        assert!(ring.is_between(a, b, c));
        assert!(!ring.is_between(a, c, b));
        assert!(!ring.is_between(a, a, c));
    }

    #[test]
    fn visits_all_nodes_once() {
        let t = Torus::new(8, 8);
        let ring = RingEmbedding::boustrophedon(&t);
        let mut seen = std::collections::HashSet::new();
        let mut n = NodeId(0);
        for _ in 0..64 {
            assert!(seen.insert(n));
            n = ring.successor(n);
        }
        assert_eq!(seen.len(), 64);
        assert_eq!(n, NodeId(0));
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn duplicate_order_rejected() {
        let _ = RingEmbedding::from_custom_order(vec![NodeId(0), NodeId(0)]);
    }

    #[test]
    fn reversed_ring_swaps_successor_and_predecessor() {
        let t = Torus::new(8, 8);
        let ring = RingEmbedding::boustrophedon(&t);
        let rev = ring.reversed();
        for n in t.iter() {
            assert_eq!(rev.successor(n), ring.predecessor(n));
            assert_eq!(rev.predecessor(n), ring.successor(n));
        }
        assert_eq!(rev.lap_physical_hops(&t), ring.lap_physical_hops(&t));
    }

    #[test]
    fn custom_order_roundtrips() {
        let order = vec![NodeId(2), NodeId(0), NodeId(1)];
        let ring = RingEmbedding::from_custom_order(order);
        assert_eq!(ring.successor(NodeId(2)), NodeId(0));
        assert_eq!(ring.successor(NodeId(1)), NodeId(2));
        assert_eq!(ring.position(NodeId(0)), 1);
    }
}
