//! Dimension-ordered multicast tree construction.

use crate::topology::{Direction, LinkId, NodeId, Torus};

/// One directed edge of a multicast tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeEdge {
    /// Parent node (already reached).
    pub from: NodeId,
    /// Child node (reached over `link`).
    pub to: NodeId,
    /// The physical link traversed.
    pub link: LinkId,
}

/// Builds a dimension-ordered multicast tree rooted at `root` covering all
/// nodes of the torus.
///
/// The tree mirrors xy routing: the message first spreads along the root's
/// row (splitting east/west to use the torus wrap minimally), and each node
/// of that row then spreads along its column (splitting south/north). Each
/// of the `N-1` tree edges is one physical link, so a broadcast costs
/// exactly `N-1` link traversals — the efficient multicast the paper
/// assumes for Uncorq request delivery.
///
/// Edges are returned in root-outward (topological) order: an edge's
/// `from` node always appears as a `to` of an earlier edge or is the root.
///
/// # Examples
///
/// ```
/// use ring_noc::{multicast_tree, NodeId, Torus};
///
/// let t = Torus::new(8, 8);
/// let edges = multicast_tree(&t, NodeId(0));
/// assert_eq!(edges.len(), 63);
/// ```
pub fn multicast_tree(torus: &Torus, root: NodeId) -> Vec<TreeEdge> {
    let w = torus.width();
    let h = torus.height();
    let mut edges = Vec::with_capacity(torus.nodes() - 1);

    // Phase 1: spread along the root's row, east for the first half,
    // west for the rest (minimal wrap split).
    let east_steps = w / 2;
    let west_steps = w - 1 - east_steps;
    let mut row_nodes = vec![root];
    let mut cur = root;
    for _ in 0..east_steps {
        let next = torus.neighbor(cur, Direction::East);
        edges.push(TreeEdge {
            from: cur,
            to: next,
            link: torus.link(cur, Direction::East),
        });
        row_nodes.push(next);
        cur = next;
    }
    cur = root;
    for _ in 0..west_steps {
        let next = torus.neighbor(cur, Direction::West);
        edges.push(TreeEdge {
            from: cur,
            to: next,
            link: torus.link(cur, Direction::West),
        });
        row_nodes.push(next);
        cur = next;
    }

    // Phase 2: each row node spreads along its column.
    let south_steps = h / 2;
    let north_steps = h - 1 - south_steps;
    for &row_node in &row_nodes {
        let mut cur = row_node;
        for _ in 0..south_steps {
            let next = torus.neighbor(cur, Direction::South);
            edges.push(TreeEdge {
                from: cur,
                to: next,
                link: torus.link(cur, Direction::South),
            });
            cur = next;
        }
        cur = row_node;
        for _ in 0..north_steps {
            let next = torus.neighbor(cur, Direction::North);
            edges.push(TreeEdge {
                from: cur,
                to: next,
                link: torus.link(cur, Direction::North),
            });
            cur = next;
        }
    }
    debug_assert_eq!(edges.len(), torus.nodes() - 1);
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn covers_every_node_exactly_once() {
        let t = Torus::new(8, 8);
        for root in [NodeId(0), NodeId(27), NodeId(63)] {
            let edges = multicast_tree(&t, root);
            let mut reached: HashSet<NodeId> = HashSet::new();
            reached.insert(root);
            for e in &edges {
                assert!(reached.contains(&e.from), "edge from unreached node");
                assert!(reached.insert(e.to), "node {:?} reached twice", e.to);
            }
            assert_eq!(reached.len(), t.nodes());
        }
    }

    #[test]
    fn edge_count_is_n_minus_one() {
        for (w, h) in [(2, 2), (4, 8), (8, 8), (3, 5)] {
            let t = Torus::new(w, h);
            assert_eq!(multicast_tree(&t, NodeId(1)).len(), t.nodes() - 1);
        }
    }

    #[test]
    fn edges_use_adjacent_links() {
        let t = Torus::new(8, 8);
        for e in multicast_tree(&t, NodeId(9)) {
            assert_eq!(t.distance(e.from, e.to), 1);
        }
    }

    #[test]
    fn tree_depth_bounded_by_half_extents() {
        // On an 8x8 torus the deepest leaf is 4 (row) + 4 (col) = 8 edges.
        let t = Torus::new(8, 8);
        let edges = multicast_tree(&t, NodeId(0));
        let mut depth = vec![0usize; t.nodes()];
        for e in &edges {
            depth[e.to.0] = depth[e.from.0] + 1;
        }
        assert_eq!(*depth.iter().max().unwrap(), 8);
    }
}
