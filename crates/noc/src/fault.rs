//! Deterministic fault injection for the network model.
//!
//! The Uncorq protocols claim correctness under *any* delivery schedule
//! the network can legally produce (PAPER §4–5): snoop requests may race,
//! responses may be delayed arbitrarily, and suppliership transfers may
//! cross other traffic in flight. This module perturbs delivery — extra
//! per-link latency jitter, transient link congestion bursts, bounded
//! extra delay ("reordering") of non-ring messages, and duplicated
//! point-to-point deliveries — to drive the recovery machinery (retry
//! backoff, squash marks, SNID starvation interception) through schedules
//! a well-behaved torus never produces.
//!
//! Everything is driven by the in-tree deterministic RNG: a
//! [`FaultPlan`] (profile + seed) fully reproduces a chaos run, byte for
//! byte.
//!
//! # In-spec vs out-of-scope faults
//!
//! The embedded ring is a *reliable, FIFO* transport by construction; the
//! protocols are not designed to survive lost, corrupted, duplicated, or
//! reordered **ring** messages. Injected faults therefore only perturb
//! what the paper's network model legitimately allows:
//!
//! - **Jitter / congestion** delay messages *through the link-occupancy
//!   chain*, so per-link, per-channel FIFO order is preserved (a message
//!   can never overtake an earlier one on the same link) — the ring stays
//!   a ring, it just gets slower and burstier.
//! - **Reordering** (extra delivery delay) applies only to messages that
//!   are unordered by design: Uncorq's multicast `R` deliveries and
//!   direct suppliership transfers.
//! - **Duplication** applies only to idempotent point-to-point
//!   deliveries (suppliership and memory completions, which the agents
//!   de-duplicate by transaction identity); duplicating a ring message
//!   would fabricate protocol state and is out of scope.
//! - **Drops and link outages** destroy messages outright and are only
//!   legal *underneath the reliability sublayer*
//!   ([`crate::ReliableTransport`]), which retransmits until the
//!   delivery boundary is exactly-once and in-order again — above that
//!   boundary the protocols still see a reliable FIFO ring. Profiles
//!   using these classes report [`FaultProfile::needs_reliability`] and
//!   are rejected by machines that do not enable the sublayer.

use crate::topology::LinkId;
use ring_sim::{splitmix64_mix, Cycle, DetRng};
use serde::{Deserialize, Serialize};

/// The class of an injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// Extra per-message latency on a link.
    Jitter,
    /// Extra delivery delay for an unordered (non-ring) message.
    Reorder,
    /// A duplicated point-to-point delivery.
    Duplicate,
    /// A transient busy burst on the links of a route.
    Congestion,
    /// A wire frame destroyed by a lossy link.
    Drop,
    /// A wire frame destroyed by a scheduled link-outage window.
    Outage,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FaultKind::Jitter => "jitter",
            FaultKind::Reorder => "reorder",
            FaultKind::Duplicate => "duplicate",
            FaultKind::Congestion => "congestion",
            FaultKind::Drop => "drop",
            FaultKind::Outage => "outage",
        };
        f.write_str(s)
    }
}

/// How a delivery is ordered with respect to the protocol, used to
/// guard fault classes that are only legal on some delivery kinds.
///
/// The ring is a reliable FIFO transport *by protocol assumption*;
/// duplicating or reordering a ring delivery fabricates protocol state.
/// This was previously enforced only by convention at the machine's
/// call sites — [`FaultInjector::duplicate`] now takes the class and
/// debug-asserts it, so a future fault class (or a new call site) can't
/// silently violate it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeliveryClass {
    /// A ring hop to the successor: ordered, never duplicated or
    /// reordered.
    Ring,
    /// An unordered point-to-point or multicast delivery (multicast `R`,
    /// suppliership transfer, memory completion): idempotent at the
    /// receiver.
    Direct,
}

/// One concrete injected fault, attached to the delivery it perturbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectedFault {
    /// What was injected.
    pub kind: FaultKind,
    /// Extra cycles the fault added (burst length for congestion).
    pub delay: Cycle,
}

/// Probabilities and magnitudes of each fault class.
///
/// All probabilities are per delivery (per multicast tree edge for
/// multicasts). A magnitude of zero disables the class regardless of its
/// probability.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultProfile {
    /// Probability of extra latency on a delivery.
    pub jitter_prob: f64,
    /// Maximum extra latency cycles (uniform in `1..=jitter_max`).
    pub jitter_max: Cycle,
    /// Probability of extra delivery delay for non-ring messages.
    pub reorder_prob: f64,
    /// Maximum reorder delay cycles (uniform in `1..=reorder_max`).
    pub reorder_max: Cycle,
    /// Probability of duplicating an idempotent delivery.
    pub duplicate_prob: f64,
    /// Maximum extra delay of the duplicate copy (uniform in
    /// `1..=duplicate_delay_max`).
    pub duplicate_delay_max: Cycle,
    /// Probability of a congestion burst on a route.
    pub congestion_prob: f64,
    /// Cycles each affected link stays busy during a burst.
    pub congestion_cycles: Cycle,
    /// Probability that a lossy link destroys a wire frame (drawn per
    /// link traversed). Requires the reliability sublayer.
    pub drop_prob: f64,
    /// Period of the scheduled link-outage rota in cycles (0 = no
    /// outages). In every period one deterministically chosen link is
    /// down for the first [`FaultProfile::outage_len`] cycles.
    pub outage_period: Cycle,
    /// Length of each outage window in cycles (0 = no outages). Must
    /// be shorter than the period so every link eventually recovers.
    pub outage_len: Cycle,
}

impl FaultProfile {
    /// No faults at all (the well-behaved baseline).
    pub fn none() -> Self {
        FaultProfile {
            jitter_prob: 0.0,
            jitter_max: 0,
            reorder_prob: 0.0,
            reorder_max: 0,
            duplicate_prob: 0.0,
            duplicate_delay_max: 0,
            congestion_prob: 0.0,
            congestion_cycles: 0,
            drop_prob: 0.0,
            outage_period: 0,
            outage_len: 0,
        }
    }

    /// Latency jitter only.
    pub fn jitter() -> Self {
        FaultProfile {
            jitter_prob: 0.25,
            jitter_max: 24,
            ..Self::none()
        }
    }

    /// Reordering (extra delay) of non-ring messages only.
    pub fn reorder() -> Self {
        FaultProfile {
            reorder_prob: 0.30,
            reorder_max: 96,
            ..Self::none()
        }
    }

    /// Duplicated idempotent deliveries only.
    pub fn duplicate() -> Self {
        FaultProfile {
            duplicate_prob: 0.25,
            duplicate_delay_max: 48,
            ..Self::none()
        }
    }

    /// Transient link congestion bursts only.
    pub fn congestion() -> Self {
        FaultProfile {
            congestion_prob: 0.05,
            congestion_cycles: 64,
            ..Self::none()
        }
    }

    /// Every delivery-preserving fault class at once.
    pub fn chaos() -> Self {
        FaultProfile {
            jitter_prob: 0.20,
            jitter_max: 24,
            reorder_prob: 0.20,
            reorder_max: 96,
            duplicate_prob: 0.15,
            duplicate_delay_max: 48,
            congestion_prob: 0.04,
            congestion_cycles: 64,
            ..Self::none()
        }
    }

    /// Per-link message drop at the given rate (requires the
    /// reliability sublayer).
    pub fn drop_rate(prob: f64) -> Self {
        FaultProfile {
            drop_prob: prob,
            ..Self::none()
        }
    }

    /// Scheduled link outages: every 20k cycles one deterministically
    /// chosen link goes dark for 4k cycles (requires the reliability
    /// sublayer).
    pub fn outage() -> Self {
        FaultProfile {
            outage_period: 20_000,
            outage_len: 4_000,
            ..Self::none()
        }
    }

    /// Drops, outages, and every delivery-preserving class at once —
    /// the worst weather the reliability sublayer must survive.
    pub fn lossy_chaos() -> Self {
        FaultProfile {
            drop_prob: 0.05,
            outage_period: 20_000,
            outage_len: 4_000,
            ..Self::chaos()
        }
    }

    /// The named profiles, in sweep order.
    pub fn named() -> Vec<(&'static str, FaultProfile)> {
        vec![
            ("none", Self::none()),
            ("jitter", Self::jitter()),
            ("reorder", Self::reorder()),
            ("duplicate", Self::duplicate()),
            ("congestion", Self::congestion()),
            ("chaos", Self::chaos()),
            ("drop1", Self::drop_rate(0.01)),
            ("drop5", Self::drop_rate(0.05)),
            ("drop20", Self::drop_rate(0.20)),
            ("outage", Self::outage()),
            ("lossy_chaos", Self::lossy_chaos()),
        ]
    }

    /// Looks a profile up by its sweep name.
    pub fn by_name(name: &str) -> Option<FaultProfile> {
        Self::named()
            .into_iter()
            .find(|(n, _)| *n == name)
            .map(|(_, p)| p)
    }

    /// Whether this profile can ever inject anything.
    pub fn is_nop(&self) -> bool {
        (self.jitter_prob <= 0.0 || self.jitter_max == 0)
            && (self.reorder_prob <= 0.0 || self.reorder_max == 0)
            && (self.duplicate_prob <= 0.0)
            && (self.congestion_prob <= 0.0 || self.congestion_cycles == 0)
            && !self.needs_reliability()
    }

    /// Whether this profile destroys messages (drops or outages) and
    /// therefore requires the reliability sublayer to be enabled.
    pub fn needs_reliability(&self) -> bool {
        self.drop_prob > 0.0 || (self.outage_period > 0 && self.outage_len > 0)
    }
}

/// A reproducible fault-injection recipe: a profile plus the seed of the
/// injector's RNG stream. Two runs with the same machine configuration
/// and the same plan are byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// What to inject, and how often.
    pub profile: FaultProfile,
    /// Seed of the injector's deterministic RNG.
    pub seed: u64,
}

impl FaultPlan {
    /// A plan over `profile` with the given seed.
    pub fn new(profile: FaultProfile, seed: u64) -> Self {
        FaultPlan { profile, seed }
    }
}

/// Counters of what was actually injected during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Jitter faults injected.
    pub jitters: u64,
    /// Reorder delays injected.
    pub reorders: u64,
    /// Deliveries duplicated.
    pub duplicates: u64,
    /// Congestion bursts injected.
    pub congestions: u64,
    /// Wire frames destroyed by probabilistic link drops.
    pub drops: u64,
    /// Wire frames destroyed by scheduled link outages.
    pub outage_drops: u64,
}

impl FaultStats {
    /// Total faults of all classes.
    pub fn total(&self) -> u64 {
        self.jitters
            + self.reorders
            + self.duplicates
            + self.congestions
            + self.drops
            + self.outage_drops
    }
}

/// A link-outage transition, observed lazily by traffic crossing the
/// network while the outage rota state differs from the last announced
/// one. Drained via `Network::take_outage_events` and turned into
/// `LinkDown`/`LinkUp` trace events by the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutageEvent {
    /// Cycle at which traffic observed the transition.
    pub at: Cycle,
    /// The link concerned.
    pub link: LinkId,
    /// `true` when the link went down, `false` when it came back up.
    pub down: bool,
    /// When a down link is scheduled to recover (0 for up events).
    pub up_at: Cycle,
}

/// The runtime fault source: draws each fault decision from its own
/// deterministic RNG stream so the workload and protocol tiebreak
/// streams are unperturbed by chaos mode.
///
/// The scheduled link-outage rota is *not* drawn from the RNG stream:
/// which link is down during outage window `k` is a pure hash of
/// `(seed, k)`, so querying outage state never perturbs the stream no
/// matter how much traffic asks.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    profile: FaultProfile,
    seed: u64,
    rng: DetRng,
    stats: FaultStats,
    /// Total links of the network (0 until the network installs the
    /// plan; no outage can fire before that).
    links: usize,
    /// The outage window last announced via [`FaultInjector::observe_outages`].
    announced: Option<(u64, LinkId)>,
}

impl FaultInjector {
    /// Builds the injector for a plan.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            profile: plan.profile,
            seed: plan.seed,
            rng: DetRng::seed(plan.seed ^ 0xFA17_FA17),
            stats: FaultStats::default(),
            links: 0,
            announced: None,
        }
    }

    /// Installs the link count of the hosting network, enabling the
    /// outage rota.
    pub fn set_links(&mut self, links: usize) {
        self.links = links;
    }

    /// The profile this injector draws from.
    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// What was injected so far.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    fn draw(&mut self, prob: f64, max: Cycle) -> Option<Cycle> {
        if prob <= 0.0 || max == 0 {
            return None;
        }
        if !self.rng.chance(prob) {
            return None;
        }
        Some(1 + self.rng.below(max))
    }

    /// Extra latency for one delivery, if a jitter fault fires.
    pub fn jitter(&mut self) -> Option<Cycle> {
        let d = self.draw(self.profile.jitter_prob, self.profile.jitter_max)?;
        self.stats.jitters += 1;
        Some(d)
    }

    /// Busy-burst length for a route's links, if a congestion fault
    /// fires.
    pub fn congestion(&mut self) -> Option<Cycle> {
        if self.profile.congestion_prob <= 0.0 || self.profile.congestion_cycles == 0 {
            return None;
        }
        if !self.rng.chance(self.profile.congestion_prob) {
            return None;
        }
        self.stats.congestions += 1;
        Some(self.profile.congestion_cycles)
    }

    /// Extra delivery delay for an unordered (non-ring) message, if a
    /// reorder fault fires.
    pub fn reorder(&mut self) -> Option<Cycle> {
        let d = self.draw(self.profile.reorder_prob, self.profile.reorder_max)?;
        self.stats.reorders += 1;
        Some(d)
    }

    /// Extra delay of a duplicated copy of an idempotent delivery, if a
    /// duplication fault fires.
    ///
    /// Duplication is only legal for [`DeliveryClass::Direct`]
    /// deliveries — a duplicated ring message would fabricate protocol
    /// state (the ring is reliable FIFO by protocol assumption). Debug
    /// builds assert this; release builds refuse the draw.
    pub fn duplicate(&mut self, class: DeliveryClass) -> Option<Cycle> {
        debug_assert_ne!(
            class,
            DeliveryClass::Ring,
            "duplicating a ring delivery would fabricate protocol state"
        );
        if class == DeliveryClass::Ring {
            return None;
        }
        if self.profile.duplicate_prob <= 0.0 {
            return None;
        }
        if !self.rng.chance(self.profile.duplicate_prob) {
            return None;
        }
        self.stats.duplicates += 1;
        Some(1 + self.rng.below(self.profile.duplicate_delay_max.max(1)))
    }

    /// Whether a lossy link destroys the frame currently crossing it.
    /// Only drawn by the reliability sublayer's wire path; a profile
    /// without drops never touches the RNG here, so plain traffic stays
    /// byte-identical.
    pub fn drop_frame(&mut self) -> bool {
        if self.profile.drop_prob <= 0.0 {
            return false;
        }
        if !self.rng.chance(self.profile.drop_prob) {
            return false;
        }
        self.stats.drops += 1;
        true
    }

    /// The outage window active at `now`, if any:
    /// `(window index, down link, recovery cycle)`. Pure — never
    /// perturbs the RNG stream.
    fn outage_window(&self, now: Cycle) -> Option<(u64, LinkId, Cycle)> {
        let (period, len) = (self.profile.outage_period, self.profile.outage_len);
        if period == 0 || len == 0 || self.links == 0 {
            return None;
        }
        if now % period >= len {
            return None;
        }
        let window = now / period;
        let link = LinkId(
            splitmix64_mix(self.seed ^ window.wrapping_mul(0x9E37_79B9_7F4A_7C15)) as usize
                % self.links,
        );
        Some((window, link, window * period + len))
    }

    /// If `link` is inside a scheduled outage at `now`, the cycle it
    /// recovers. Pure — never perturbs the RNG stream.
    pub fn link_down(&self, now: Cycle, link: LinkId) -> Option<Cycle> {
        match self.outage_window(now) {
            Some((_, down, up_at)) if down == link => Some(up_at),
            _ => None,
        }
    }

    /// Counts a frame destroyed by an outage (the decision itself is
    /// pure, so the counter is bumped by the wire path that acted on it).
    pub fn count_outage_drop(&mut self) {
        self.stats.outage_drops += 1;
    }

    /// Compares the outage rota at `now` against the last announced
    /// state and appends `LinkDown`/`LinkUp` transitions. Called by the
    /// network whenever lossy traffic crosses it, so outage events
    /// surface lazily but in chronological order.
    pub fn observe_outages(&mut self, now: Cycle, out: &mut Vec<OutageEvent>) {
        let current = self.outage_window(now).map(|(w, l, _)| (w, l));
        if current == self.announced {
            return;
        }
        if let Some((_, link)) = self.announced {
            out.push(OutageEvent {
                at: now,
                link,
                down: false,
                up_at: 0,
            });
        }
        if let Some((w, link, up_at)) = self.outage_window(now) {
            let _ = w;
            out.push(OutageEvent {
                at: now,
                link,
                down: true,
                up_at,
            });
        }
        self.announced = current;
    }
}

impl ring_snapshot::Snap for FaultStats {
    fn save(&self, w: &mut ring_snapshot::SnapWriter) {
        w.put(&self.jitters);
        w.put(&self.reorders);
        w.put(&self.duplicates);
        w.put(&self.congestions);
        w.put(&self.drops);
        w.put(&self.outage_drops);
    }
    fn load(r: &mut ring_snapshot::SnapReader<'_>) -> Result<Self, ring_snapshot::SnapshotError> {
        Ok(FaultStats {
            jitters: r.get()?,
            reorders: r.get()?,
            duplicates: r.get()?,
            congestions: r.get()?,
            drops: r.get()?,
            outage_drops: r.get()?,
        })
    }
}

impl FaultInjector {
    /// Serializes the injector's cursor: the RNG position mid-stream,
    /// the injection counters, and the last announced outage window.
    /// The profile, seed, and link count are not stored — they come
    /// back from the machine configuration's [`FaultPlan`] at restore.
    pub fn snap_save(&self, w: &mut ring_snapshot::SnapWriter) {
        w.put(&self.rng.state());
        w.put(&self.stats);
        w.put(&self.announced.map(|(win, l)| (win, l.0 as u64)));
    }

    /// Rebuilds the injector from `plan` and a snapshot cursor.
    pub fn snap_load(
        r: &mut ring_snapshot::SnapReader<'_>,
        plan: FaultPlan,
        links: usize,
    ) -> Result<Self, ring_snapshot::SnapshotError> {
        let mut inj = FaultInjector::new(plan);
        inj.set_links(links);
        inj.rng = DetRng::from_state(r.get()?);
        inj.stats = r.get()?;
        inj.announced = r
            .get::<Option<(u64, u64)>>()?
            .map(|(win, l)| (win, LinkId(l as usize)));
        Ok(inj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_profiles_resolve() {
        for (name, p) in FaultProfile::named() {
            assert_eq!(FaultProfile::by_name(name), Some(p));
        }
        assert!(FaultProfile::by_name("nope").is_none());
        assert!(FaultProfile::none().is_nop());
        assert!(!FaultProfile::chaos().is_nop());
    }

    #[test]
    fn lossy_profiles_declare_their_reliability_need() {
        assert!(!FaultProfile::none().needs_reliability());
        assert!(!FaultProfile::chaos().needs_reliability());
        assert!(FaultProfile::drop_rate(0.2).needs_reliability());
        assert!(FaultProfile::outage().needs_reliability());
        assert!(FaultProfile::lossy_chaos().needs_reliability());
        assert!(!FaultProfile::drop_rate(0.2).is_nop());
        assert!(!FaultProfile::outage().is_nop());
    }

    #[test]
    fn injector_is_deterministic() {
        let plan = FaultPlan::new(FaultProfile::chaos(), 42);
        let mut a = FaultInjector::new(plan);
        let mut b = FaultInjector::new(plan);
        for _ in 0..500 {
            assert_eq!(a.jitter(), b.jitter());
            assert_eq!(a.reorder(), b.reorder());
            assert_eq!(
                a.duplicate(DeliveryClass::Direct),
                b.duplicate(DeliveryClass::Direct)
            );
            assert_eq!(a.congestion(), b.congestion());
        }
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().total() > 0, "chaos profile must inject something");
    }

    #[test]
    fn none_profile_never_fires() {
        let mut inj = FaultInjector::new(FaultPlan::new(FaultProfile::none(), 7));
        for _ in 0..200 {
            assert_eq!(inj.jitter(), None);
            assert_eq!(inj.reorder(), None);
            assert_eq!(inj.duplicate(DeliveryClass::Direct), None);
            assert_eq!(inj.congestion(), None);
            assert!(!inj.drop_frame());
        }
        assert_eq!(inj.stats().total(), 0);
    }

    #[test]
    fn magnitudes_respect_bounds() {
        let mut inj = FaultInjector::new(FaultPlan::new(FaultProfile::chaos(), 9));
        let p = *inj.profile();
        for _ in 0..2000 {
            if let Some(d) = inj.jitter() {
                assert!((1..=p.jitter_max).contains(&d));
            }
            if let Some(d) = inj.reorder() {
                assert!((1..=p.reorder_max).contains(&d));
            }
            if let Some(d) = inj.duplicate(DeliveryClass::Direct) {
                assert!((1..=p.duplicate_delay_max).contains(&d));
            }
            if let Some(d) = inj.congestion() {
                assert_eq!(d, p.congestion_cycles);
            }
        }
    }

    /// Regression test for the ring-duplication convention: duplicating
    /// a ring delivery must trip the debug assertion instead of being
    /// silently accepted by a future fault class or call site.
    #[test]
    #[should_panic(expected = "fabricate protocol state")]
    #[cfg(debug_assertions)]
    fn duplicating_a_ring_delivery_panics_in_debug() {
        let mut inj = FaultInjector::new(FaultPlan::new(FaultProfile::duplicate(), 1));
        let _ = inj.duplicate(DeliveryClass::Ring);
    }

    #[test]
    fn drop_draws_are_deterministic_and_rate_shaped() {
        let plan = FaultPlan::new(FaultProfile::drop_rate(0.20), 13);
        let mut a = FaultInjector::new(plan);
        let mut b = FaultInjector::new(plan);
        let mut fired = 0u64;
        for _ in 0..5000 {
            let fa = a.drop_frame();
            assert_eq!(fa, b.drop_frame());
            fired += fa as u64;
        }
        assert_eq!(a.stats().drops, fired);
        // 20% of 5000 with generous slack.
        assert!((700..=1300).contains(&fired), "drop rate off: {fired}/5000");
    }

    #[test]
    fn outage_rota_is_pure_and_periodic() {
        let plan = FaultPlan::new(FaultProfile::outage(), 99);
        let mut inj = FaultInjector::new(plan);
        inj.set_links(64);
        let p = inj.profile().outage_period;
        let len = inj.profile().outage_len;
        for window in 0u64..8 {
            let start = window * p;
            // Exactly one link is down during the window...
            let down: Vec<LinkId> = (0..64)
                .map(LinkId)
                .filter(|&l| inj.link_down(start + len / 2, l).is_some())
                .collect();
            assert_eq!(down.len(), 1, "window {window}");
            let up_at = inj.link_down(start + len / 2, down[0]).unwrap();
            assert_eq!(up_at, start + len);
            // ...and no link is down outside it.
            assert!((0..64)
                .map(LinkId)
                .all(|l| inj.link_down(start + len, l).is_none()));
            // Purity: asking never perturbs the RNG-backed draws.
            let before = inj.stats().total();
            assert_eq!(inj.stats().total(), before);
        }
    }

    #[test]
    fn outage_transitions_surface_once_per_window_edge() {
        let plan = FaultPlan::new(FaultProfile::outage(), 5);
        let mut inj = FaultInjector::new(plan);
        inj.set_links(16);
        let p = inj.profile().outage_period;
        let len = inj.profile().outage_len;
        let mut out = Vec::new();
        inj.observe_outages(1, &mut out);
        assert_eq!(out.len(), 1, "first window announces its down link");
        assert!(out[0].down);
        assert_eq!(out[0].up_at, len);
        inj.observe_outages(len / 2, &mut out);
        assert_eq!(out.len(), 1, "same window announces nothing new");
        inj.observe_outages(len + 1, &mut out);
        assert_eq!(out.len(), 2, "window end announces the up transition");
        assert!(!out[1].down);
        inj.observe_outages(p + 1, &mut out);
        assert_eq!(out.len(), 3, "next window announces its down link");
        assert!(out[2].down);
    }
}
