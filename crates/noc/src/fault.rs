//! Deterministic fault injection for the network model.
//!
//! The Uncorq protocols claim correctness under *any* delivery schedule
//! the network can legally produce (PAPER §4–5): snoop requests may race,
//! responses may be delayed arbitrarily, and suppliership transfers may
//! cross other traffic in flight. This module perturbs delivery — extra
//! per-link latency jitter, transient link congestion bursts, bounded
//! extra delay ("reordering") of non-ring messages, and duplicated
//! point-to-point deliveries — to drive the recovery machinery (retry
//! backoff, squash marks, SNID starvation interception) through schedules
//! a well-behaved torus never produces.
//!
//! Everything is driven by the in-tree deterministic RNG: a
//! [`FaultPlan`] (profile + seed) fully reproduces a chaos run, byte for
//! byte.
//!
//! # In-spec vs out-of-scope faults
//!
//! The embedded ring is a *reliable, FIFO* transport by construction; the
//! protocols are not designed to survive lost, corrupted, duplicated, or
//! reordered **ring** messages. Injected faults therefore only perturb
//! what the paper's network model legitimately allows:
//!
//! - **Jitter / congestion** delay messages *through the link-occupancy
//!   chain*, so per-link, per-channel FIFO order is preserved (a message
//!   can never overtake an earlier one on the same link) — the ring stays
//!   a ring, it just gets slower and burstier.
//! - **Reordering** (extra delivery delay) applies only to messages that
//!   are unordered by design: Uncorq's multicast `R` deliveries and
//!   direct suppliership transfers.
//! - **Duplication** applies only to idempotent point-to-point
//!   deliveries (suppliership and memory completions, which the agents
//!   de-duplicate by transaction identity); duplicating a ring message
//!   would fabricate protocol state and is out of scope.

use ring_sim::{Cycle, DetRng};
use serde::{Deserialize, Serialize};

/// The class of an injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// Extra per-message latency on a link.
    Jitter,
    /// Extra delivery delay for an unordered (non-ring) message.
    Reorder,
    /// A duplicated point-to-point delivery.
    Duplicate,
    /// A transient busy burst on the links of a route.
    Congestion,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FaultKind::Jitter => "jitter",
            FaultKind::Reorder => "reorder",
            FaultKind::Duplicate => "duplicate",
            FaultKind::Congestion => "congestion",
        };
        f.write_str(s)
    }
}

/// One concrete injected fault, attached to the delivery it perturbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectedFault {
    /// What was injected.
    pub kind: FaultKind,
    /// Extra cycles the fault added (burst length for congestion).
    pub delay: Cycle,
}

/// Probabilities and magnitudes of each fault class.
///
/// All probabilities are per delivery (per multicast tree edge for
/// multicasts). A magnitude of zero disables the class regardless of its
/// probability.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultProfile {
    /// Probability of extra latency on a delivery.
    pub jitter_prob: f64,
    /// Maximum extra latency cycles (uniform in `1..=jitter_max`).
    pub jitter_max: Cycle,
    /// Probability of extra delivery delay for non-ring messages.
    pub reorder_prob: f64,
    /// Maximum reorder delay cycles (uniform in `1..=reorder_max`).
    pub reorder_max: Cycle,
    /// Probability of duplicating an idempotent delivery.
    pub duplicate_prob: f64,
    /// Maximum extra delay of the duplicate copy (uniform in
    /// `1..=duplicate_delay_max`).
    pub duplicate_delay_max: Cycle,
    /// Probability of a congestion burst on a route.
    pub congestion_prob: f64,
    /// Cycles each affected link stays busy during a burst.
    pub congestion_cycles: Cycle,
}

impl FaultProfile {
    /// No faults at all (the well-behaved baseline).
    pub fn none() -> Self {
        FaultProfile {
            jitter_prob: 0.0,
            jitter_max: 0,
            reorder_prob: 0.0,
            reorder_max: 0,
            duplicate_prob: 0.0,
            duplicate_delay_max: 0,
            congestion_prob: 0.0,
            congestion_cycles: 0,
        }
    }

    /// Latency jitter only.
    pub fn jitter() -> Self {
        FaultProfile {
            jitter_prob: 0.25,
            jitter_max: 24,
            ..Self::none()
        }
    }

    /// Reordering (extra delay) of non-ring messages only.
    pub fn reorder() -> Self {
        FaultProfile {
            reorder_prob: 0.30,
            reorder_max: 96,
            ..Self::none()
        }
    }

    /// Duplicated idempotent deliveries only.
    pub fn duplicate() -> Self {
        FaultProfile {
            duplicate_prob: 0.25,
            duplicate_delay_max: 48,
            ..Self::none()
        }
    }

    /// Transient link congestion bursts only.
    pub fn congestion() -> Self {
        FaultProfile {
            congestion_prob: 0.05,
            congestion_cycles: 64,
            ..Self::none()
        }
    }

    /// Every fault class at once.
    pub fn chaos() -> Self {
        FaultProfile {
            jitter_prob: 0.20,
            jitter_max: 24,
            reorder_prob: 0.20,
            reorder_max: 96,
            duplicate_prob: 0.15,
            duplicate_delay_max: 48,
            congestion_prob: 0.04,
            congestion_cycles: 64,
        }
    }

    /// The named profiles, in sweep order.
    pub fn named() -> Vec<(&'static str, FaultProfile)> {
        vec![
            ("none", Self::none()),
            ("jitter", Self::jitter()),
            ("reorder", Self::reorder()),
            ("duplicate", Self::duplicate()),
            ("congestion", Self::congestion()),
            ("chaos", Self::chaos()),
        ]
    }

    /// Looks a profile up by its sweep name.
    pub fn by_name(name: &str) -> Option<FaultProfile> {
        Self::named()
            .into_iter()
            .find(|(n, _)| *n == name)
            .map(|(_, p)| p)
    }

    /// Whether this profile can ever inject anything.
    pub fn is_nop(&self) -> bool {
        (self.jitter_prob <= 0.0 || self.jitter_max == 0)
            && (self.reorder_prob <= 0.0 || self.reorder_max == 0)
            && (self.duplicate_prob <= 0.0)
            && (self.congestion_prob <= 0.0 || self.congestion_cycles == 0)
    }
}

/// A reproducible fault-injection recipe: a profile plus the seed of the
/// injector's RNG stream. Two runs with the same machine configuration
/// and the same plan are byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// What to inject, and how often.
    pub profile: FaultProfile,
    /// Seed of the injector's deterministic RNG.
    pub seed: u64,
}

impl FaultPlan {
    /// A plan over `profile` with the given seed.
    pub fn new(profile: FaultProfile, seed: u64) -> Self {
        FaultPlan { profile, seed }
    }
}

/// Counters of what was actually injected during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Jitter faults injected.
    pub jitters: u64,
    /// Reorder delays injected.
    pub reorders: u64,
    /// Deliveries duplicated.
    pub duplicates: u64,
    /// Congestion bursts injected.
    pub congestions: u64,
}

impl FaultStats {
    /// Total faults of all classes.
    pub fn total(&self) -> u64 {
        self.jitters + self.reorders + self.duplicates + self.congestions
    }
}

/// The runtime fault source: draws each fault decision from its own
/// deterministic RNG stream so the workload and protocol tiebreak
/// streams are unperturbed by chaos mode.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    profile: FaultProfile,
    rng: DetRng,
    stats: FaultStats,
}

impl FaultInjector {
    /// Builds the injector for a plan.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            profile: plan.profile,
            rng: DetRng::seed(plan.seed ^ 0xFA17_FA17),
            stats: FaultStats::default(),
        }
    }

    /// The profile this injector draws from.
    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// What was injected so far.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    fn draw(&mut self, prob: f64, max: Cycle) -> Option<Cycle> {
        if prob <= 0.0 || max == 0 {
            return None;
        }
        if !self.rng.chance(prob) {
            return None;
        }
        Some(1 + self.rng.below(max))
    }

    /// Extra latency for one delivery, if a jitter fault fires.
    pub fn jitter(&mut self) -> Option<Cycle> {
        let d = self.draw(self.profile.jitter_prob, self.profile.jitter_max)?;
        self.stats.jitters += 1;
        Some(d)
    }

    /// Busy-burst length for a route's links, if a congestion fault
    /// fires.
    pub fn congestion(&mut self) -> Option<Cycle> {
        if self.profile.congestion_prob <= 0.0 || self.profile.congestion_cycles == 0 {
            return None;
        }
        if !self.rng.chance(self.profile.congestion_prob) {
            return None;
        }
        self.stats.congestions += 1;
        Some(self.profile.congestion_cycles)
    }

    /// Extra delivery delay for an unordered (non-ring) message, if a
    /// reorder fault fires.
    pub fn reorder(&mut self) -> Option<Cycle> {
        let d = self.draw(self.profile.reorder_prob, self.profile.reorder_max)?;
        self.stats.reorders += 1;
        Some(d)
    }

    /// Extra delay of a duplicated copy of an idempotent delivery, if a
    /// duplication fault fires.
    pub fn duplicate(&mut self) -> Option<Cycle> {
        if self.profile.duplicate_prob <= 0.0 {
            return None;
        }
        if !self.rng.chance(self.profile.duplicate_prob) {
            return None;
        }
        self.stats.duplicates += 1;
        Some(1 + self.rng.below(self.profile.duplicate_delay_max.max(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_profiles_resolve() {
        for (name, p) in FaultProfile::named() {
            assert_eq!(FaultProfile::by_name(name), Some(p));
        }
        assert!(FaultProfile::by_name("nope").is_none());
        assert!(FaultProfile::none().is_nop());
        assert!(!FaultProfile::chaos().is_nop());
    }

    #[test]
    fn injector_is_deterministic() {
        let plan = FaultPlan::new(FaultProfile::chaos(), 42);
        let mut a = FaultInjector::new(plan);
        let mut b = FaultInjector::new(plan);
        for _ in 0..500 {
            assert_eq!(a.jitter(), b.jitter());
            assert_eq!(a.reorder(), b.reorder());
            assert_eq!(a.duplicate(), b.duplicate());
            assert_eq!(a.congestion(), b.congestion());
        }
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().total() > 0, "chaos profile must inject something");
    }

    #[test]
    fn none_profile_never_fires() {
        let mut inj = FaultInjector::new(FaultPlan::new(FaultProfile::none(), 7));
        for _ in 0..200 {
            assert_eq!(inj.jitter(), None);
            assert_eq!(inj.reorder(), None);
            assert_eq!(inj.duplicate(), None);
            assert_eq!(inj.congestion(), None);
        }
        assert_eq!(inj.stats().total(), 0);
    }

    #[test]
    fn magnitudes_respect_bounds() {
        let mut inj = FaultInjector::new(FaultPlan::new(FaultProfile::chaos(), 9));
        let p = *inj.profile();
        for _ in 0..2000 {
            if let Some(d) = inj.jitter() {
                assert!((1..=p.jitter_max).contains(&d));
            }
            if let Some(d) = inj.reorder() {
                assert!((1..=p.reorder_max).contains(&d));
            }
            if let Some(d) = inj.duplicate() {
                assert!((1..=p.duplicate_delay_max).contains(&d));
            }
            if let Some(d) = inj.congestion() {
                assert_eq!(d, p.congestion_cycles);
            }
        }
    }
}
