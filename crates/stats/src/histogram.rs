//! Fixed-bin histograms with cumulative distributions.

use serde::{Deserialize, Serialize};

/// One point of a cumulative distribution: the upper edge of a bin and the
/// fraction of samples at or below it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CdfPoint {
    /// Upper edge (inclusive) of the bin, in the sample's unit (cycles).
    pub upper: u64,
    /// Fraction of all samples `<= upper`, in `[0, 1]`.
    pub cumulative: f64,
}

/// A histogram with uniform bins of width `bin_width`, covering
/// `[0, bin_width * bins)`, plus an overflow bin.
///
/// Used to regenerate the read-miss latency histograms of Figures 8 and 11.
///
/// # Examples
///
/// ```
/// use ring_stats::Histogram;
///
/// let mut h = Histogram::new(100, 20);
/// h.record(50);    // bin 0
/// h.record(250);   // bin 2
/// h.record(10_000); // overflow
/// assert_eq!(h.count(0), 1);
/// assert_eq!(h.count(2), 1);
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    bin_width: u64,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` bins of width `bin_width`.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width` is zero or `bins` is zero.
    pub fn new(bin_width: u64, bins: usize) -> Self {
        assert!(bin_width > 0, "bin width must be positive");
        assert!(bins > 0, "bin count must be positive");
        Histogram {
            bin_width,
            counts: vec![0; bins],
            overflow: 0,
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = (value / self.bin_width) as usize;
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.total += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples in bin `idx` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn count(&self, idx: usize) -> u64 {
        self.counts[idx]
    }

    /// Number of samples beyond the last bin.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total number of recorded samples, including overflow.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Width of each bin.
    pub fn bin_width(&self) -> u64 {
        self.bin_width
    }

    /// Number of (non-overflow) bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Mean of all recorded samples, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Smallest recorded sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min)
    }

    /// Largest recorded sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max)
    }

    /// Fraction of samples in each bin (overflow excluded), in bin order.
    pub fn densities(&self) -> Vec<f64> {
        let t = self.total.max(1) as f64;
        self.counts.iter().map(|&c| c as f64 / t).collect()
    }

    /// Cumulative distribution at each bin's upper edge.
    ///
    /// The final point does not include overflow samples, so it reaches 1.0
    /// only when no samples overflowed.
    pub fn cdf(&self) -> Vec<CdfPoint> {
        let t = self.total.max(1) as f64;
        let mut acc = 0u64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                acc += c;
                CdfPoint {
                    upper: (i as u64 + 1) * self.bin_width,
                    cumulative: acc as f64 / t,
                }
            })
            .collect()
    }

    /// Approximate percentile (linear in bins). `p` in `[0, 100]`.
    ///
    /// Returns the upper edge of the first bin at which the cumulative
    /// fraction reaches `p`, or the overflow edge if it never does.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 100]`.
    pub fn percentile(&self, p: f64) -> u64 {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0,100]");
        let need = (p / 100.0 * self.total as f64).ceil() as u64;
        let mut acc = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= need {
                return (i as u64 + 1) * self.bin_width;
            }
        }
        self.bin_width * self.counts.len() as u64
    }

    /// Merges another histogram into this one.
    ///
    /// # Panics
    ///
    /// Panics if bin widths or bin counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bin_width, other.bin_width, "bin width mismatch");
        assert_eq!(self.counts.len(), other.counts.len(), "bin count mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Writes the histogram as CSV (`bin_start,bin_end,count,cumulative`)
    /// for external plotting — the regenerable form of the paper's
    /// Figures 8(a)/(b) and 11(a)/(b).
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from the writer.
    pub fn write_csv<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(w, "bin_start,bin_end,count,cumulative")?;
        let total = self.total.max(1) as f64;
        let mut acc = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            writeln!(
                w,
                "{},{},{},{:.6}",
                i as u64 * self.bin_width,
                (i as u64 + 1) * self.bin_width,
                c,
                acc as f64 / total
            )?;
        }
        if self.overflow > 0 {
            writeln!(
                w,
                "{},inf,{},{:.6}",
                self.counts.len() as u64 * self.bin_width,
                self.overflow,
                (acc + self.overflow) as f64 / total
            )?;
        }
        Ok(())
    }

    /// Renders an ASCII bar chart, one row per bin, suitable for terminal
    /// output of Figures 8(a)/(b) and 11(a)/(b). Empty leading/trailing bins
    /// are trimmed.
    pub fn render_ascii(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let first = self.counts.iter().position(|&c| c > 0).unwrap_or(0);
        let last = self
            .counts
            .iter()
            .rposition(|&c| c > 0)
            .unwrap_or(self.counts.len().saturating_sub(1));
        let mut out = String::new();
        let mut cum = 0u64;
        for i in 0..=first.saturating_sub(1) {
            cum += self.counts.get(i).copied().unwrap_or(0);
        }
        for i in first..=last {
            let c = self.counts[i];
            cum += c;
            let bar = (c as usize * width) / max as usize;
            out.push_str(&format!(
                "{:>6}-{:<6} |{:<w$}| {:>8} ({:>5.1}% cum)\n",
                i as u64 * self.bin_width,
                (i as u64 + 1) * self.bin_width,
                "#".repeat(bar),
                c,
                100.0 * cum as f64 / self.total.max(1) as f64,
                w = width
            ));
        }
        if self.overflow > 0 {
            out.push_str(&format!(
                "{:>6}+{:<6} |{:<w$}| {:>8}\n",
                (last as u64 + 1) * self.bin_width,
                "",
                "",
                self.overflow,
                w = width
            ));
        }
        out
    }
}

/// Sub-bucket precision of [`LogHistogram`]: each power-of-two octave is
/// split into `2^LOG_SUB_BITS` sub-buckets, bounding the relative
/// quantization error at `2^-LOG_SUB_BITS` (~3.1%).
const LOG_SUB_BITS: u32 = 5;
const LOG_SUB_BUCKETS: u64 = 1 << LOG_SUB_BITS; // 32
/// Largest most-significant-bit position tracked exactly; values at or
/// above `2^(LOG_MAX_MSB + 1)` (4 Mcycles) saturate into the top bucket.
const LOG_MAX_MSB: u32 = 21;
const LOG_BUCKETS: usize = ((LOG_MAX_MSB - LOG_SUB_BITS + 2) * LOG_SUB_BUCKETS as u32) as usize;

/// An HDR-style log-bucketed histogram for latency distributions.
///
/// Values below 32 land in unit-width buckets (exact); larger values are
/// bucketed with 32 sub-buckets per power-of-two octave, so every
/// percentile is reported with at most ~3.1% relative error. Values of
/// `2^22` cycles (≈4M) or more saturate into the top bucket — far beyond
/// any plausible transaction latency, and counted by [`saturated`].
///
/// The bucket geometry is a compile-time constant, so any two
/// `LogHistogram`s can be merged. Recording is two shifts, a compare and
/// an increment — cheap enough to stay always-on in the simulator hot
/// path.
///
/// [`saturated`]: LogHistogram::saturated
///
/// # Examples
///
/// ```
/// use ring_stats::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// let p50 = h.percentile(50.0);
/// assert!((490..=510).contains(&p50), "p50 was {p50}");
/// assert_eq!(h.percentile(100.0), 1000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
    saturated: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; LOG_BUCKETS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            saturated: 0,
        }
    }

    /// Bucket index for `value`; `LOG_BUCKETS` means "saturated".
    fn index(value: u64) -> usize {
        if value < LOG_SUB_BUCKETS {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros();
        if msb > LOG_MAX_MSB {
            return LOG_BUCKETS;
        }
        // `sub` is in [32, 64): the top LOG_SUB_BITS+1 bits of the value.
        let sub = (value >> (msb - LOG_SUB_BITS)) as usize;
        ((msb - LOG_SUB_BITS) as usize + 1) * LOG_SUB_BUCKETS as usize + sub
            - LOG_SUB_BUCKETS as usize
    }

    /// Inclusive upper edge of bucket `idx`.
    fn upper(idx: usize) -> u64 {
        if idx < LOG_SUB_BUCKETS as usize {
            return idx as u64;
        }
        let group = (idx >> LOG_SUB_BITS) as u32;
        let sub = (idx as u64 & (LOG_SUB_BUCKETS - 1)) + LOG_SUB_BUCKETS;
        ((sub + 1) << (group - 1)) - 1
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = Self::index(value);
        if idx >= LOG_BUCKETS {
            self.saturated += 1;
            self.counts[LOG_BUCKETS - 1] += 1;
        } else {
            self.counts[idx] += 1;
        }
        self.total += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total number of recorded samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of samples that exceeded the tracked range and were clamped
    /// into the top bucket. `min`/`max`/`sum` stay exact regardless.
    pub fn saturated(&self) -> u64 {
        self.saturated
    }

    /// Mean of all recorded samples, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Smallest recorded sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min)
    }

    /// Largest recorded sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max)
    }

    /// Approximate percentile. `p` in `[0, 100]`; returns 0 if empty.
    ///
    /// Reports the upper edge of the first bucket at which the cumulative
    /// count reaches `ceil(p/100 * total)`, clamped to the exact observed
    /// `[min, max]` range, so `percentile(100) == max` and no percentile
    /// ever falls outside the recorded values.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 100]`.
    pub fn percentile(&self, p: f64) -> u64 {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0,100]");
        if self.total == 0 {
            return 0;
        }
        let need = ((p / 100.0 * self.total as f64).ceil() as u64).max(1);
        if need >= self.total {
            // The last sample in rank order is exactly the observed max;
            // this also keeps percentile(100) exact for saturated samples.
            return self.max;
        }
        let mut acc = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= need {
                return Self::upper(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median (50th percentile).
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.percentile(90.0)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.percentile(99.9)
    }

    /// Merges another histogram into this one. The bucket geometry is a
    /// compile-time constant, so any two `LogHistogram`s are compatible.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.saturated += other.saturated;
    }

    /// Returns a merged copy of `self` and `other`.
    pub fn merged(&self, other: &LogHistogram) -> LogHistogram {
        let mut out = self.clone();
        out.merge(other);
        out
    }
}

impl ring_snapshot::Snap for Histogram {
    fn save(&self, w: &mut ring_snapshot::SnapWriter) {
        w.put(&self.bin_width);
        w.put(&self.counts);
        w.put(&self.overflow);
        w.put(&self.total);
        w.put(&self.sum);
        w.put(&self.min);
        w.put(&self.max);
    }
    fn load(r: &mut ring_snapshot::SnapReader<'_>) -> Result<Self, ring_snapshot::SnapshotError> {
        Ok(Histogram {
            bin_width: r.get()?,
            counts: r.get()?,
            overflow: r.get()?,
            total: r.get()?,
            sum: r.get()?,
            min: r.get()?,
            max: r.get()?,
        })
    }
}

impl ring_snapshot::Snap for LogHistogram {
    fn save(&self, w: &mut ring_snapshot::SnapWriter) {
        w.put(&self.counts);
        w.put(&self.total);
        w.put(&self.sum);
        w.put(&self.min);
        w.put(&self.max);
        w.put(&self.saturated);
    }
    fn load(r: &mut ring_snapshot::SnapReader<'_>) -> Result<Self, ring_snapshot::SnapshotError> {
        Ok(LogHistogram {
            counts: r.get()?,
            total: r.get()?,
            sum: r.get()?,
            min: r.get()?,
            max: r.get()?,
            saturated: r.get()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_bins() {
        let mut h = Histogram::new(10, 5);
        h.record(0);
        h.record(9);
        h.record(10);
        h.record(49);
        h.record(50); // overflow
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(4), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn mean_min_max() {
        let mut h = Histogram::new(10, 10);
        for v in [5, 15, 25] {
            h.record(v);
        }
        assert_eq!(h.mean(), 15.0);
        assert_eq!(h.min(), Some(5));
        assert_eq!(h.max(), Some(25));
    }

    #[test]
    fn empty_histogram_is_well_behaved() {
        let h = Histogram::new(10, 10);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.total(), 0);
        assert_eq!(h.percentile(50.0), 10);
    }

    #[test]
    fn cdf_reaches_one_without_overflow() {
        let mut h = Histogram::new(10, 4);
        for v in [1, 11, 21, 31] {
            h.record(v);
        }
        let cdf = h.cdf();
        assert_eq!(cdf.len(), 4);
        assert!((cdf[3].cumulative - 1.0).abs() < 1e-12);
        assert_eq!(cdf[0].upper, 10);
        assert!((cdf[0].cumulative - 0.25).abs() < 1e-12);
    }

    #[test]
    fn percentile_monotone() {
        let mut h = Histogram::new(1, 100);
        for v in 0..100 {
            h.record(v);
        }
        assert!(h.percentile(10.0) <= h.percentile(50.0));
        assert!(h.percentile(50.0) <= h.percentile(99.0));
        assert_eq!(h.percentile(50.0), 50);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(10, 4);
        let mut b = Histogram::new(10, 4);
        a.record(5);
        b.record(5);
        b.record(35);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.count(0), 2);
        assert_eq!(a.count(3), 1);
    }

    #[test]
    #[should_panic(expected = "bin width mismatch")]
    fn merge_rejects_different_widths() {
        let mut a = Histogram::new(10, 4);
        let b = Histogram::new(20, 4);
        a.merge(&b);
    }

    #[test]
    fn ascii_render_contains_counts() {
        let mut h = Histogram::new(10, 4);
        h.record(15);
        h.record(15);
        let s = h.render_ascii(20);
        assert!(s.contains("2"));
        assert!(s.contains('#'));
    }

    #[test]
    #[should_panic(expected = "bin width must be positive")]
    fn zero_bin_width_rejected() {
        let _ = Histogram::new(0, 4);
    }

    #[test]
    fn csv_export_roundtrips_counts() {
        let mut h = Histogram::new(10, 3);
        h.record(5);
        h.record(15);
        h.record(100); // overflow
        let mut buf = Vec::new();
        h.write_csv(&mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "bin_start,bin_end,count,cumulative");
        assert_eq!(lines[1], "0,10,1,0.333333");
        assert_eq!(lines[2], "10,20,1,0.666667");
        assert!(lines[4].starts_with("30,inf,1"));
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn densities_sum_below_one_with_overflow() {
        let mut h = Histogram::new(10, 2);
        h.record(5);
        h.record(100);
        let d: f64 = h.densities().iter().sum();
        assert!((d - 0.5).abs() < 1e-12);
    }

    #[test]
    fn log_histogram_empty_is_well_behaved() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.total(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.p999(), 0);
        assert_eq!(h.saturated(), 0);
    }

    #[test]
    fn log_histogram_single_sample_pins_every_percentile() {
        let mut h = LogHistogram::new();
        h.record(137);
        for p in [0.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            assert_eq!(h.percentile(p), 137, "p{p}");
        }
        assert_eq!(h.min(), Some(137));
        assert_eq!(h.max(), Some(137));
        assert_eq!(h.mean(), 137.0);
    }

    #[test]
    fn log_histogram_small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        // Unit-width buckets below 32: percentiles are exact.
        assert_eq!(h.percentile(50.0), 15);
        assert_eq!(h.percentile(100.0), 31);
        assert_eq!(h.min(), Some(0));
    }

    #[test]
    fn log_histogram_relative_error_is_bounded() {
        let mut h = LogHistogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for p in [10.0, 50.0, 90.0, 99.0, 99.9] {
            let exact = (p / 100.0 * 100_000.0_f64).ceil() as u64;
            let got = h.percentile(p);
            let err = (got as f64 - exact as f64).abs() / exact as f64;
            assert!(err <= 1.0 / 32.0 + 1e-9, "p{p}: got {got}, exact {exact}");
        }
    }

    #[test]
    fn log_histogram_saturating_bucket() {
        let mut h = LogHistogram::new();
        h.record(10);
        h.record(1 << 23); // beyond the 4M-cycle tracked range
        h.record(u64::MAX);
        assert_eq!(h.saturated(), 2);
        assert_eq!(h.total(), 3);
        // min/max/sum stay exact even for saturated samples.
        assert_eq!(h.min(), Some(10));
        assert_eq!(h.max(), Some(u64::MAX));
        // Percentiles are clamped to the observed range, never beyond max.
        assert_eq!(h.percentile(100.0), u64::MAX);
        assert_eq!(h.percentile(1.0), 10);
    }

    #[test]
    fn log_histogram_merge_preserves_percentile_bounds() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for v in 1..=1000u64 {
            a.record(v);
        }
        for v in 5000..=9000u64 {
            b.record(v);
        }
        let m = a.merged(&b);
        assert_eq!(m.total(), a.total() + b.total());
        assert_eq!(m.min(), a.min());
        assert_eq!(m.max(), b.max());
        for p in [10.0, 50.0, 90.0, 99.0, 99.9] {
            let lo = a.percentile(p).min(b.percentile(p));
            let hi = a.percentile(p).max(b.percentile(p));
            let got = m.percentile(p);
            assert!(
                (lo..=hi).contains(&got),
                "merged p{p} = {got} outside [{lo}, {hi}]"
            );
        }
        // Merge is symmetric.
        assert_eq!(b.merged(&a), m);
    }

    #[test]
    fn log_histogram_percentiles_monotone() {
        let mut h = LogHistogram::new();
        let mut x = 1u64;
        for i in 0..10_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
            h.record(x % 50_000);
        }
        assert!(h.p50() <= h.p90());
        assert!(h.p90() <= h.p99());
        assert!(h.p99() <= h.p999());
        assert!(h.p999() <= h.max().unwrap());
    }
}
