//! Network traffic accounting in byte×hops.

use serde::{Deserialize, Serialize};

/// Accumulates interconnect traffic, classified by message category,
/// measured in byte-hops (message size × links traversed).
///
/// Regenerates the traffic column of Figure 11(c), which compares Uncorq
/// traffic against HyperTransport traffic.
///
/// # Examples
///
/// ```
/// let mut t = ring_stats::TrafficMeter::new();
/// t.add_control(8, 3);  // 8-byte control message over 3 links
/// t.add_data(72, 2);    // 72-byte data message over 2 links
/// assert_eq!(t.control_byte_hops(), 24);
/// assert_eq!(t.data_byte_hops(), 144);
/// assert_eq!(t.total_byte_hops(), 168);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TrafficMeter {
    control: u64,
    data: u64,
    messages: u64,
}

impl TrafficMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a control message of `bytes` traversing `hops` links.
    pub fn add_control(&mut self, bytes: u64, hops: u64) {
        self.control += bytes * hops;
        self.messages += 1;
    }

    /// Records a data-carrying message of `bytes` traversing `hops` links.
    pub fn add_data(&mut self, bytes: u64, hops: u64) {
        self.data += bytes * hops;
        self.messages += 1;
    }

    /// Byte-hops of control traffic.
    pub fn control_byte_hops(&self) -> u64 {
        self.control
    }

    /// Byte-hops of data traffic.
    pub fn data_byte_hops(&self) -> u64 {
        self.data
    }

    /// Total byte-hops.
    pub fn total_byte_hops(&self) -> u64 {
        self.control + self.data
    }

    /// Number of messages recorded.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Merges another meter into this one.
    pub fn merge(&mut self, other: &TrafficMeter) {
        self.control += other.control;
        self.data += other.data;
        self.messages += other.messages;
    }
}

impl ring_snapshot::Snap for TrafficMeter {
    fn save(&self, w: &mut ring_snapshot::SnapWriter) {
        w.put(&self.control);
        w.put(&self.data);
        w.put(&self.messages);
    }
    fn load(r: &mut ring_snapshot::SnapReader<'_>) -> Result<Self, ring_snapshot::SnapshotError> {
        Ok(TrafficMeter {
            control: r.get()?,
            data: r.get()?,
            messages: r.get()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_by_category() {
        let mut t = TrafficMeter::new();
        t.add_control(8, 10);
        t.add_control(8, 1);
        t.add_data(72, 4);
        assert_eq!(t.control_byte_hops(), 88);
        assert_eq!(t.data_byte_hops(), 288);
        assert_eq!(t.total_byte_hops(), 376);
        assert_eq!(t.messages(), 3);
    }

    #[test]
    fn zero_hop_message_is_free() {
        let mut t = TrafficMeter::new();
        t.add_control(8, 0);
        assert_eq!(t.total_byte_hops(), 0);
        assert_eq!(t.messages(), 1);
    }

    #[test]
    fn merge_sums() {
        let mut a = TrafficMeter::new();
        let mut b = TrafficMeter::new();
        a.add_data(10, 1);
        b.add_control(5, 2);
        a.merge(&b);
        assert_eq!(a.total_byte_hops(), 20);
        assert_eq!(a.messages(), 2);
    }
}
