//! Statistics collection for the Uncorq embedded-ring coherence simulator.
//!
//! This crate provides the measurement substrate used to regenerate every
//! figure and table of the MICRO 2007 Uncorq paper:
//!
//! - [`Histogram`] — fixed-bin latency histograms with cumulative
//!   distributions (Figures 8(a)/(b) and 11(a)/(b)),
//! - [`Summary`] — streaming mean/min/max/count accumulators
//!   (the latency columns of Figures 8(c), 10(b) and 11(c)),
//! - [`TrafficMeter`] — byte×hop traffic accounting (Figure 11(c)),
//! - [`Table`] — plain-text table rendering that prints the same rows the
//!   paper reports.
//!
//! # Examples
//!
//! ```
//! use ring_stats::{Histogram, Summary};
//!
//! let mut h = Histogram::new(10, 50);
//! let mut s = Summary::new();
//! for lat in [12u64, 17, 23, 23, 480] {
//!     h.record(lat);
//!     s.record(lat as f64);
//! }
//! assert_eq!(h.total(), 5);
//! assert!((s.mean() - 111.0).abs() < 1.0);
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod histogram;
mod summary;
mod table;
mod traffic;

pub use histogram::{CdfPoint, Histogram, LogHistogram};
pub use summary::Summary;
pub use table::{Align, Table};
pub use traffic::TrafficMeter;

/// Formats a ratio `a / b` as a percentage string with no decimals,
/// matching the paper's table style (e.g. `"56"` for 0.56).
///
/// Returns `"-"` when the denominator is zero.
///
/// # Examples
///
/// ```
/// assert_eq!(ring_stats::percent(56.0, 100.0), "56");
/// assert_eq!(ring_stats::percent(1.0, 0.0), "-");
/// assert_eq!(ring_stats::percent(-23.0, 100.0), "-23");
/// ```
pub fn percent(a: f64, b: f64) -> String {
    if b == 0.0 {
        "-".to_string()
    } else {
        format!("{:.0}", 100.0 * a / b)
    }
}

/// Relative reduction `(base - new) / base` in percent, the quantity the
/// paper reports in columns like "(Eager-Uncorq)/Eager (%)".
///
/// Returns `0.0` when `base` is zero.
///
/// # Examples
///
/// ```
/// assert_eq!(ring_stats::reduction_pct(363.0, 168.0), 54.0_f64.round());
/// ```
pub fn reduction_pct(base: f64, new: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        (100.0 * (base - new) / base).round()
    }
}
