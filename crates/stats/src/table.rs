//! Plain-text table rendering in the style of the paper's result tables.

/// Column alignment for [`Table`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (application names).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple text table builder producing the same row layout the paper's
/// tables use (e.g. Figure 8(c): application, latencies, percentages).
///
/// # Examples
///
/// ```
/// use ring_stats::{Align, Table};
///
/// let mut t = Table::new(vec!["App".into(), "Lat".into()]);
/// t.align(vec![Align::Left, Align::Right]);
/// t.row(vec!["fmm".into(), "345".into()]);
/// let s = t.render();
/// assert!(s.contains("fmm"));
/// assert!(s.contains("345"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    aligns: Vec<Align>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        let n = headers.len();
        Table {
            headers,
            rows: Vec::new(),
            aligns: vec![Align::Right; n],
        }
    }

    /// Sets per-column alignment.
    ///
    /// # Panics
    ///
    /// Panics if the number of alignments differs from the number of columns.
    pub fn align(&mut self, aligns: Vec<Align>) -> &mut Self {
        assert_eq!(aligns.len(), self.headers.len(), "alignment count mismatch");
        self.aligns = aligns;
        self
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the number of columns.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row length mismatch");
        self.rows.push(cells);
        self
    }

    /// Appends a separator row (rendered as dashes), used before the
    /// average rows in the paper's tables.
    pub fn separator(&mut self) -> &mut Self {
        self.rows.push(Vec::new());
        self
    }

    /// Number of data rows (separators excluded).
    pub fn len(&self) -> usize {
        self.rows.iter().filter(|r| !r.is_empty()).count()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let n = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], aligns: &[Align]| {
            let mut line = String::new();
            for i in 0..n {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                match aligns[i] {
                    Align::Left => line.push_str(&format!("{:<w$}", cell, w = widths[i])),
                    Align::Right => line.push_str(&format!("{:>w$}", cell, w = widths[i])),
                }
                if i + 1 < n {
                    line.push_str("  ");
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths, &self.aligns));
        let total: usize = widths.iter().sum::<usize>() + 2 * (n - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            if r.is_empty() {
                out.push_str(&"-".repeat(total));
                out.push('\n');
            } else {
                out.push_str(&fmt_row(r, &widths, &self.aligns));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_headers_and_rows() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["yy".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains('a'));
        assert!(s.contains("22"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn separator_renders_dashes() {
        let mut t = Table::new(vec!["a".into()]);
        t.row(vec!["1".into()]);
        t.separator();
        t.row(vec!["2".into()]);
        let s = t.render();
        // header underline + explicit separator
        assert!(s.matches('-').count() > 1);
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row length mismatch")]
    fn rejects_wrong_row_length() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn alignment_pads_correctly() {
        let mut t = Table::new(vec!["name".into(), "v".into()]);
        t.align(vec![Align::Left, Align::Right]);
        t.row(vec!["ab".into(), "1".into()]);
        let s = t.render();
        let data_line = s.lines().nth(2).unwrap();
        assert!(data_line.starts_with("ab"));
    }

    #[test]
    fn empty_table() {
        let t = Table::new(vec!["a".into()]);
        assert!(t.is_empty());
        assert!(t.render().contains('a'));
    }
}
