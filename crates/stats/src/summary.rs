//! Streaming summary statistics.

use serde::{Deserialize, Serialize};

/// Streaming accumulator for mean/min/max/count, used for the average
/// latency columns of the paper's tables.
///
/// # Examples
///
/// ```
/// let mut s = ring_stats::Summary::new();
/// s.record(1.0);
/// s.record(3.0);
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.count(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    sum_sq: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum_sq: 0.0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.sum_sq += v * v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of samples, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Population variance, or 0.0 if empty.
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let m = self.mean();
        (self.sum_sq / self.count as f64 - m * m).max(0.0)
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl ring_snapshot::Snap for Summary {
    fn save(&self, w: &mut ring_snapshot::SnapWriter) {
        w.put(&self.count);
        w.put(&self.sum);
        w.put(&self.min);
        w.put(&self.max);
        w.put(&self.sum_sq);
    }
    fn load(r: &mut ring_snapshot::SnapReader<'_>) -> Result<Self, ring_snapshot::SnapshotError> {
        Ok(Summary {
            count: r.get()?,
            sum: r.get()?,
            min: r.get()?,
            max: r.get()?,
            sum_sq: r.get()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_count() {
        let mut s = Summary::new();
        for v in [2.0, 4.0, 6.0] {
            s.record(v);
        }
        assert_eq!(s.mean(), 4.0);
        assert_eq!(s.count(), 3);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(6.0));
    }

    #[test]
    fn empty_is_zeroish() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
    }

    #[test]
    fn variance_of_constant_is_zero() {
        let mut s = Summary::new();
        for _ in 0..10 {
            s.record(7.0);
        }
        assert!(s.variance() < 1e-12);
    }

    #[test]
    fn merge_equals_combined_stream() {
        let mut a = Summary::new();
        let mut b = Summary::new();
        let mut c = Summary::new();
        for v in [1.0, 2.0] {
            a.record(v);
            c.record(v);
        }
        for v in [3.0, 4.0] {
            b.record(v);
            c.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        assert!((a.mean() - c.mean()).abs() < 1e-12);
        assert!((a.variance() - c.variance()).abs() < 1e-12);
    }
}
