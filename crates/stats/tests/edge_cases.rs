//! Edge-case coverage for the statistics substrate: empty summaries,
//! histogram overflow handling, and zero-hop traffic accounting.

use ring_stats::{Histogram, Summary, TrafficMeter};

#[test]
fn empty_summary_is_well_defined() {
    let s = Summary::new();
    assert_eq!(s.count(), 0);
    assert_eq!(s.sum(), 0.0);
    assert_eq!(s.mean(), 0.0);
    assert_eq!(s.variance(), 0.0);
    assert_eq!(s.stddev(), 0.0);
    assert_eq!(s.min(), None);
    assert_eq!(s.max(), None);
}

#[test]
fn merging_an_empty_summary_changes_nothing() {
    let mut a = Summary::new();
    a.record(10.0);
    a.record(20.0);
    let before = (a.count(), a.sum(), a.mean());
    a.merge(&Summary::new());
    assert_eq!((a.count(), a.sum(), a.mean()), before);

    let mut empty = Summary::new();
    empty.merge(&a);
    assert_eq!(empty.count(), 2);
    assert_eq!(empty.mean(), 15.0);
}

#[test]
fn histogram_routes_large_values_to_the_overflow_bin() {
    let mut h = Histogram::new(10, 4); // covers [0, 40)
    h.record(0);
    h.record(39);
    h.record(40); // first value past the last bin
    h.record(u64::MAX);
    assert_eq!(h.count(0), 1);
    assert_eq!(h.count(3), 1);
    assert_eq!(h.overflow(), 2);
    assert_eq!(h.total(), 4);
    // Overflowed samples still participate in the mean and max.
    assert!(h.mean() > 0.0);
    assert_eq!(h.max(), Some(u64::MAX));
}

#[test]
fn histogram_percentile_with_only_overflow_samples() {
    let mut h = Histogram::new(10, 4);
    h.record(1000);
    h.record(2000);
    // Every sample is in the overflow bin; percentiles must not panic
    // and must point past the covered range.
    assert!(h.percentile(50.0) >= 40);
    assert_eq!(h.overflow(), 2);
}

#[test]
fn empty_histogram_renders_and_merges() {
    let mut h = Histogram::new(16, 8);
    assert_eq!(h.total(), 0);
    assert_eq!(h.min(), None);
    assert_eq!(h.max(), None);
    let _ = h.render_ascii(40); // must not panic on zero samples
    let other = Histogram::new(16, 8);
    h.merge(&other);
    assert_eq!(h.total(), 0);
}

#[test]
fn zero_hop_traffic_counts_the_message_but_no_byte_hops() {
    let mut t = TrafficMeter::new();
    // A message delivered to self (zero hops) still happened, but moved
    // zero byte-hops over the interconnect.
    t.add_control(8, 0);
    t.add_data(72, 0);
    assert_eq!(t.messages(), 2);
    assert_eq!(t.total_byte_hops(), 0);
    assert_eq!(t.control_byte_hops(), 0);
    assert_eq!(t.data_byte_hops(), 0);
}

#[test]
fn traffic_merge_accumulates_both_classes() {
    let mut a = TrafficMeter::new();
    a.add_control(8, 2);
    let mut b = TrafficMeter::new();
    b.add_data(72, 3);
    a.merge(&b);
    assert_eq!(a.messages(), 2);
    assert_eq!(a.control_byte_hops(), 16);
    assert_eq!(a.data_byte_hops(), 216);
    assert_eq!(a.total_byte_hops(), 232);
}
