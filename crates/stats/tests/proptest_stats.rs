//! Property tests for the statistics substrate against naive reference
//! computations.

use proptest::prelude::*;
use ring_stats::{Histogram, Summary, TrafficMeter};

proptest! {
    /// Histogram totals, mean, min and max agree with direct computation.
    #[test]
    fn histogram_agrees_with_reference(values in proptest::collection::vec(0u64..5_000, 1..300)) {
        let mut h = Histogram::new(64, 32);
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.total(), values.len() as u64);
        let sum: u64 = values.iter().sum();
        let mean = sum as f64 / values.len() as f64;
        prop_assert!((h.mean() - mean).abs() < 1e-9);
        prop_assert_eq!(h.min(), values.iter().min().copied());
        prop_assert_eq!(h.max(), values.iter().max().copied());
        // Bin counts + overflow account for every sample.
        let binned: u64 = (0..h.bins()).map(|i| h.count(i)).sum();
        prop_assert_eq!(binned + h.overflow(), h.total());
        // CDF is monotone.
        let cdf = h.cdf();
        for w in cdf.windows(2) {
            prop_assert!(w[1].cumulative >= w[0].cumulative);
        }
    }

    /// Percentiles are monotone in p and bracket the reference quantile
    /// to within one bin.
    #[test]
    fn percentiles_bracket_reference(values in proptest::collection::vec(0u64..2_000, 1..300)) {
        let mut h = Histogram::new(16, 128);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for &v in &values {
            h.record(v);
        }
        for p in [10.0, 50.0, 90.0, 99.0] {
            let idx = ((p / 100.0 * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let reference = sorted[idx - 1];
            let got = h.percentile(p);
            prop_assert!(got >= reference, "p{p}: {got} < ref {reference}");
            prop_assert!(got <= reference + 16, "p{p}: {got} too far above {reference}");
        }
    }

    /// Merging summaries equals summarizing the concatenation.
    #[test]
    fn summary_merge_equals_concat(
        a in proptest::collection::vec(-1e6f64..1e6, 0..100),
        b in proptest::collection::vec(-1e6f64..1e6, 0..100),
    ) {
        let mut sa = Summary::new();
        let mut sb = Summary::new();
        let mut sc = Summary::new();
        for &v in &a { sa.record(v); sc.record(v); }
        for &v in &b { sb.record(v); sc.record(v); }
        sa.merge(&sb);
        prop_assert_eq!(sa.count(), sc.count());
        prop_assert!((sa.sum() - sc.sum()).abs() <= 1e-6 * sc.sum().abs().max(1.0));
        prop_assert_eq!(sa.min(), sc.min());
        prop_assert_eq!(sa.max(), sc.max());
    }

    /// Traffic accounting is exact byte×hop arithmetic.
    #[test]
    fn traffic_is_exact(msgs in proptest::collection::vec((1u64..128, 0u64..16, any::<bool>()), 0..100)) {
        let mut t = TrafficMeter::new();
        let mut control = 0u64;
        let mut data = 0u64;
        for &(bytes, hops, is_data) in &msgs {
            if is_data {
                t.add_data(bytes, hops);
                data += bytes * hops;
            } else {
                t.add_control(bytes, hops);
                control += bytes * hops;
            }
        }
        prop_assert_eq!(t.control_byte_hops(), control);
        prop_assert_eq!(t.data_byte_hops(), data);
        prop_assert_eq!(t.total_byte_hops(), control + data);
        prop_assert_eq!(t.messages(), msgs.len() as u64);
    }
}
