//! Typed trace events and their JSONL encoding.

use std::fmt;

/// The class of operation a transaction performs, mirroring the
/// protocol's `TxnKind` without depending on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// A read miss.
    Read,
    /// A write miss (needs data and ownership).
    WriteMiss,
    /// An invalidating upgrade of a valid non-writable copy.
    WriteHit,
}

impl OpClass {
    fn code(self) -> &'static str {
        match self {
            OpClass::Read => "rd",
            OpClass::WriteMiss => "wm",
            OpClass::WriteHit => "wh",
        }
    }

    fn from_code(s: &str) -> Option<Self> {
        match s {
            "rd" => Some(OpClass::Read),
            "wm" => Some(OpClass::WriteMiss),
            "wh" => Some(OpClass::WriteHit),
            _ => None,
        }
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpClass::Read => f.write_str("Read"),
            OpClass::WriteMiss => f.write_str("WriteMiss"),
            OpClass::WriteHit => f.write_str("WriteHit"),
        }
    }
}

/// The class of an injected delivery fault, mirroring the network
/// layer's `FaultKind` without depending on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// Extra per-message link latency.
    Jitter,
    /// Extra delivery delay of an unordered (non-ring) message.
    Reorder,
    /// A duplicated point-to-point delivery.
    Duplicate,
    /// A transient link congestion burst.
    Congestion,
    /// A wire frame dropped by a lossy link (reliability sublayer will
    /// retransmit it).
    Drop,
    /// A wire frame dropped because its link was inside a scheduled
    /// outage window.
    Outage,
}

impl FaultClass {
    fn code(self) -> &'static str {
        match self {
            FaultClass::Jitter => "jit",
            FaultClass::Reorder => "ro",
            FaultClass::Duplicate => "dup",
            FaultClass::Congestion => "cong",
            FaultClass::Drop => "drop",
            FaultClass::Outage => "out",
        }
    }

    fn from_code(s: &str) -> Option<Self> {
        match s {
            "jit" => Some(FaultClass::Jitter),
            "ro" => Some(FaultClass::Reorder),
            "dup" => Some(FaultClass::Duplicate),
            "cong" => Some(FaultClass::Congestion),
            "drop" => Some(FaultClass::Drop),
            "out" => Some(FaultClass::Outage),
            _ => None,
        }
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultClass::Jitter => f.write_str("jitter"),
            FaultClass::Reorder => f.write_str("reorder"),
            FaultClass::Duplicate => f.write_str("duplicate"),
            FaultClass::Congestion => f.write_str("congestion"),
            FaultClass::Drop => f.write_str("drop"),
            FaultClass::Outage => f.write_str("outage"),
        }
    }
}

/// A protocol-level error an agent recovered from instead of panicking
/// (the hardened hot paths under fault injection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorClass {
    /// An MSHR allocation failed although capacity was checked.
    MshrOverflow,
    /// A ready LTT slot vanished between selection and take.
    LttSlotMissing,
    /// A ready LTT slot carried no combined response.
    LttResponseMissing,
    /// A transition-table lookup found no unique row for a
    /// `state × message` pair (only possible with a mutated table).
    TableMiss,
    /// A multicast tree edge departed a node the broadcast had not
    /// reached yet (only possible with a corrupted tree).
    MulticastTreeDisorder,
}

impl ErrorClass {
    fn code(self) -> &'static str {
        match self {
            ErrorClass::MshrOverflow => "mshr_overflow",
            ErrorClass::LttSlotMissing => "ltt_slot_missing",
            ErrorClass::LttResponseMissing => "ltt_resp_missing",
            ErrorClass::TableMiss => "table_miss",
            ErrorClass::MulticastTreeDisorder => "mcast_tree_disorder",
        }
    }

    fn from_code(s: &str) -> Option<Self> {
        match s {
            "mshr_overflow" => Some(ErrorClass::MshrOverflow),
            "ltt_slot_missing" => Some(ErrorClass::LttSlotMissing),
            "ltt_resp_missing" => Some(ErrorClass::LttResponseMissing),
            "table_miss" => Some(ErrorClass::TableMiss),
            "mcast_tree_disorder" => Some(ErrorClass::MulticastTreeDisorder),
            _ => None,
        }
    }
}

impl fmt::Display for ErrorClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// What travels on a ring hop: a snoop request `R` or a combined
/// response `r` with its marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Payload {
    /// A snoop request.
    Request {
        /// Operation class of the request.
        op: OpClass,
    },
    /// A combined snoop response.
    Response {
        /// `true` for `r+` (a supplier was found).
        positive: bool,
        /// Squash mark (lost a collision).
        squashed: bool,
        /// Loser Hint mark (Uncorq forced serialization).
        loser_hint: bool,
        /// Number of snoop outcomes combined so far.
        outcomes: u32,
    },
}

/// What happened; one variant per event in the taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A requester issued (or re-issued) a transaction.
    RequestIssue {
        /// Operation class.
        op: OpClass,
        /// `true` when this is a retry of a squashed attempt.
        retry: bool,
    },
    /// A node forwarded a ring message to its ring successor.
    RingSend {
        /// The successor node receiving the hop.
        to: u32,
        /// Request or response payload.
        payload: Payload,
    },
    /// A ring message arrived at a node.
    RingRecv {
        /// Request or response payload.
        payload: Payload,
    },
    /// An Uncorq read request was multicast over the unconstrained
    /// network instead of the ring.
    MulticastRequest {
        /// Operation class.
        op: OpClass,
    },
    /// A node performed a snoop for a transaction.
    SnoopPerform {
        /// `true` when the snoop found a supplier copy here.
        positive: bool,
    },
    /// A node skipped a snoop (Flexible Snooping filters).
    SnoopSkip,
    /// A transaction entered a node's Local Transaction Table.
    LttInsert {
        /// Table occupancy after the insert.
        occupancy: u32,
    },
    /// A transaction left a node's Local Transaction Table.
    LttRemove {
        /// Table occupancy after the removal.
        occupancy: u32,
    },
    /// A combined response stalled in the LTT waiting for the local
    /// snoop (the Ordering invariant at work).
    LttStall,
    /// Two in-flight transactions on the same line collided at a node.
    Collision {
        /// Requester node of the other transaction.
        other_node: u32,
        /// Serial of the other transaction.
        other_serial: u64,
    },
    /// Winner selection resolved a collision.
    WinnerSelected {
        /// Requester node of the winning transaction.
        winner_node: u32,
        /// Serial of the winning transaction.
        winner_serial: u64,
    },
    /// A requester consumed its own combined response.
    ResponseConsume {
        /// `true` for `r+`.
        positive: bool,
        /// Squash mark observed.
        squashed: bool,
        /// Loser Hint mark observed.
        loser_hint: bool,
        /// Snoop outcomes combined.
        outcomes: u32,
    },
    /// Suppliership (and possibly data) was sent to a requester.
    Suppliership {
        /// The requester receiving suppliership.
        to: u32,
        /// Whether the line's data travels with the message.
        with_data: bool,
    },
    /// The node started a memory fetch for the line.
    MemFetch {
        /// `true` for controller-predicted prefetches.
        prefetch: bool,
    },
    /// A demand fetch was satisfied by the node's prefetch buffer.
    PrefetchHit,
    /// The node wrote the line back to memory.
    Writeback,
    /// Data (or ownership) arrived at the requester; the load can bind.
    Bound {
        /// L2-to-L2 latency in cycles.
        latency: u64,
        /// `true` for cache-to-cache transfers.
        c2c: bool,
    },
    /// The transaction completed at its requester.
    Complete {
        /// Operation class.
        op: OpClass,
        /// `true` for cache-to-cache service.
        c2c: bool,
        /// Issue-to-complete latency in cycles.
        latency: u64,
    },
    /// The transaction was squashed and a retry was scheduled.
    Retry {
        /// Delay until the retry in cycles.
        delay: u64,
    },
    /// A starving node reserved the next suppliership (SNID).
    Starvation {
        /// The starving node's ID.
        snid: u32,
    },
    /// Chaos mode injected a delivery fault (emitted at the send site so
    /// tracecheck can correlate violations with injected faults).
    FaultInjected {
        /// The class of fault.
        fault: FaultClass,
        /// Extra cycles the fault added (burst length for congestion).
        delay: u64,
    },
    /// An agent detected and recovered from a protocol-level error
    /// instead of panicking (hardened hot paths).
    ProtocolError {
        /// What went wrong.
        error: ErrorClass,
    },
    /// The reliability sublayer retransmitted an unacknowledged frame.
    Retransmit {
        /// Destination node of the frame.
        to: u32,
        /// Virtual-channel index of the flow.
        channel: u8,
        /// Flow sequence number of the retransmitted frame.
        seq: u64,
        /// Retransmission attempt (1 = first retransmit).
        attempt: u32,
    },
    /// A scheduled link outage began (the link drops everything until
    /// `up_at`).
    LinkDown {
        /// Link identifier (see `ring_noc::LinkId`).
        link: u32,
        /// Cycle at which the link comes back up.
        up_at: u64,
    },
    /// A scheduled link outage ended.
    LinkUp {
        /// Link identifier (see `ring_noc::LinkId`).
        link: u32,
    },
    /// The reliability sublayer handed a payload to the protocol layer:
    /// the exactly-once, in-order delivery boundary. `seq` must be
    /// exactly one past the previous delivery of the same
    /// `(from, node, channel)` flow.
    ReliableDeliver {
        /// Source node of the flow.
        from: u32,
        /// Virtual-channel index of the flow.
        channel: u8,
        /// Flow sequence number delivered.
        seq: u64,
    },
}

/// One structured protocol event.
///
/// `node` is where the event happened; `txn_node`/`txn_serial` identify
/// the transaction it belongs to (the requester node and its per-node
/// serial), and `line` is the cache line concerned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulation cycle of the event.
    pub cycle: u64,
    /// Node at which the event happened.
    pub node: u32,
    /// Requester node of the owning transaction.
    pub txn_node: u32,
    /// Per-requester serial of the owning transaction.
    pub txn_serial: u64,
    /// Raw line address the event concerns.
    pub line: u64,
    /// What happened.
    pub kind: EventKind,
}

impl fmt::Display for TraceEvent {
    /// Human-readable one-liner, keeping the historical line-trace
    /// vocabulary (`fwd R`, `MCAST R`, `SUPPLIERSHIP`, `MEMFETCH`,
    /// `COMPLETE`, `RETRY`) so existing debug workflows keep working.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let t = self.cycle;
        let n = self.node;
        let txn = format_args!("{}.{}", self.txn_node, self.txn_serial);
        match self.kind {
            EventKind::RequestIssue { op, retry } => {
                write!(f, "t={t} n{n} ISSUE txn={txn} kind={op} retry={retry}")
            }
            EventKind::RingSend { to, payload } => match payload {
                Payload::Request { op } => {
                    write!(f, "t={t} n{n} fwd R -> n{to} txn={txn} kind={op}")
                }
                Payload::Response {
                    positive,
                    squashed,
                    loser_hint,
                    outcomes,
                } => write!(
                    f,
                    "t={t} n{n} fwd r -> n{to} txn={txn} {} sq={squashed} lh={loser_hint} outc={outcomes}",
                    if positive { "+" } else { "-" },
                ),
            },
            EventKind::RingRecv { payload } => match payload {
                Payload::Request { op } => {
                    write!(f, "t={t} n{n} recv R txn={txn} kind={op}")
                }
                Payload::Response {
                    positive,
                    squashed,
                    loser_hint,
                    outcomes,
                } => write!(
                    f,
                    "t={t} n{n} recv r txn={txn} {} sq={squashed} lh={loser_hint} outc={outcomes}",
                    if positive { "+" } else { "-" },
                ),
            },
            EventKind::MulticastRequest { op } => {
                write!(f, "t={t} n{n} MCAST R txn={txn} kind={op}")
            }
            EventKind::SnoopPerform { positive } => write!(
                f,
                "t={t} n{n} SNOOP txn={txn} {}",
                if positive { "+" } else { "-" }
            ),
            EventKind::SnoopSkip => write!(f, "t={t} n{n} SNOOP-SKIP txn={txn}"),
            EventKind::LttInsert { occupancy } => {
                write!(f, "t={t} n{n} LTT+ txn={txn} occ={occupancy}")
            }
            EventKind::LttRemove { occupancy } => {
                write!(f, "t={t} n{n} LTT- txn={txn} occ={occupancy}")
            }
            EventKind::LttStall => write!(f, "t={t} n{n} LTT-STALL txn={txn}"),
            EventKind::Collision {
                other_node,
                other_serial,
            } => write!(
                f,
                "t={t} n{n} COLLISION txn={txn} with {other_node}.{other_serial}"
            ),
            EventKind::WinnerSelected {
                winner_node,
                winner_serial,
            } => write!(
                f,
                "t={t} n{n} WINNER txn={txn} -> {winner_node}.{winner_serial}"
            ),
            EventKind::ResponseConsume {
                positive,
                squashed,
                loser_hint,
                outcomes,
            } => write!(
                f,
                "t={t} n{n} CONSUME r txn={txn} {} sq={squashed} lh={loser_hint} outc={outcomes}",
                if positive { "+" } else { "-" },
            ),
            EventKind::Suppliership { to, with_data } => write!(
                f,
                "t={t} n{n} SUPPLIERSHIP -> n{to} txn={txn} data={with_data}"
            ),
            EventKind::MemFetch { prefetch } => write!(
                f,
                "t={t} n{n} MEMFETCH ({})",
                if prefetch { "prefetch" } else { "demand" }
            ),
            EventKind::PrefetchHit => write!(f, "t={t} n{n} PREFETCH-HIT"),
            EventKind::Writeback => write!(f, "t={t} n{n} WRITEBACK"),
            EventKind::Bound { latency, c2c } => {
                write!(f, "t={t} n{n} BOUND txn={txn} lat={latency} c2c={c2c}")
            }
            EventKind::Complete { op, c2c, latency } => write!(
                f,
                "t={t} n{n} COMPLETE txn={txn} kind={op} c2c={c2c} lat={latency}"
            ),
            EventKind::Retry { delay } => {
                write!(f, "t={t} n{n} RETRY txn={txn} scheduled +{delay}")
            }
            EventKind::Starvation { snid } => {
                write!(f, "t={t} n{n} STARVE txn={txn} snid={snid}")
            }
            EventKind::FaultInjected { fault, delay } => {
                write!(f, "t={t} n{n} FAULT {fault} txn={txn} +{delay}")
            }
            EventKind::ProtocolError { error } => {
                write!(f, "t={t} n{n} PROTO-ERR {error} txn={txn}")
            }
            EventKind::Retransmit {
                to,
                channel,
                seq,
                attempt,
            } => write!(
                f,
                "t={t} n{n} RETX -> n{to} ch={channel} seq={seq} attempt={attempt}"
            ),
            EventKind::LinkDown { link, up_at } => {
                write!(f, "t={t} n{n} LINK-DOWN link={link} up_at={up_at}")
            }
            EventKind::LinkUp { link } => write!(f, "t={t} n{n} LINK-UP link={link}"),
            EventKind::ReliableDeliver { from, channel, seq } => {
                write!(f, "t={t} n{n} RDELIVER <- n{from} ch={channel} seq={seq}")
            }
        }
    }
}

/// An error parsing a JSONL trace line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn err(msg: impl Into<String>) -> ParseError {
    ParseError(msg.into())
}

/// A flat JSON value as used by the trace encoding.
#[derive(Debug, Clone, PartialEq)]
enum Val {
    Num(u64),
    Bool(bool),
    Str(String),
}

impl Val {
    fn num(&self) -> Result<u64, ParseError> {
        match self {
            Val::Num(n) => Ok(*n),
            v => Err(err(format!("expected number, got {v:?}"))),
        }
    }
    fn boolean(&self) -> Result<bool, ParseError> {
        match self {
            Val::Bool(b) => Ok(*b),
            v => Err(err(format!("expected bool, got {v:?}"))),
        }
    }
    fn string(&self) -> Result<&str, ParseError> {
        match self {
            Val::Str(s) => Ok(s),
            v => Err(err(format!("expected string, got {v:?}"))),
        }
    }
}

/// Parses one flat JSON object (string/number/bool values only — the
/// full shape of a trace line) into key/value pairs.
fn parse_flat_object(s: &str) -> Result<Vec<(String, Val)>, ParseError> {
    let s = s.trim();
    let inner = s
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| err("not an object"))?;
    let mut out = Vec::new();
    let mut rest = inner.trim();
    while !rest.is_empty() {
        // key
        rest = rest
            .strip_prefix('"')
            .ok_or_else(|| err("expected key quote"))?;
        let kend = rest.find('"').ok_or_else(|| err("unterminated key"))?;
        let key = rest[..kend].to_string();
        rest = rest[kend + 1..].trim_start();
        rest = rest
            .strip_prefix(':')
            .ok_or_else(|| err("expected ':'"))?
            .trim_start();
        // value
        let (val, after) = if let Some(r) = rest.strip_prefix('"') {
            let vend = r.find('"').ok_or_else(|| err("unterminated string"))?;
            (Val::Str(r[..vend].to_string()), &r[vend + 1..])
        } else if let Some(r) = rest.strip_prefix("true") {
            (Val::Bool(true), r)
        } else if let Some(r) = rest.strip_prefix("false") {
            (Val::Bool(false), r)
        } else {
            let vend = rest
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(rest.len());
            if vend == 0 {
                return Err(err(format!("bad value at '{rest}'")));
            }
            let n = rest[..vend]
                .parse::<u64>()
                .map_err(|e| err(format!("bad number: {e}")))?;
            (Val::Num(n), &rest[vend..])
        };
        out.push((key, val));
        rest = after.trim_start();
        if let Some(r) = rest.strip_prefix(',') {
            rest = r.trim_start();
        } else if !rest.is_empty() {
            return Err(err(format!("trailing garbage: '{rest}'")));
        }
    }
    Ok(out)
}

struct Fields(Vec<(String, Val)>);

impl Fields {
    fn get(&self, key: &str) -> Result<&Val, ParseError> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| err(format!("missing field '{key}'")))
    }
    fn num(&self, key: &str) -> Result<u64, ParseError> {
        self.get(key)?.num()
    }
    fn boolean(&self, key: &str) -> Result<bool, ParseError> {
        self.get(key)?.boolean()
    }
    fn string(&self, key: &str) -> Result<&str, ParseError> {
        self.get(key)?.string()
    }
    fn op(&self, key: &str) -> Result<OpClass, ParseError> {
        let s = self.string(key)?;
        OpClass::from_code(s).ok_or_else(|| err(format!("bad op class '{s}'")))
    }
}

impl Payload {
    fn encode(&self, out: &mut String) {
        match self {
            Payload::Request { op } => {
                out.push_str(",\"pl\":\"R\",\"op\":\"");
                out.push_str(op.code());
                out.push('"');
            }
            Payload::Response {
                positive,
                squashed,
                loser_hint,
                outcomes,
            } => {
                use std::fmt::Write;
                let _ = write!(
                    out,
                    ",\"pl\":\"r\",\"pos\":{positive},\"sq\":{squashed},\"lh\":{loser_hint},\"outc\":{outcomes}"
                );
            }
        }
    }

    fn decode(f: &Fields) -> Result<Self, ParseError> {
        match f.string("pl")? {
            "R" => Ok(Payload::Request { op: f.op("op")? }),
            "r" => Ok(Payload::Response {
                positive: f.boolean("pos")?,
                squashed: f.boolean("sq")?,
                loser_hint: f.boolean("lh")?,
                outcomes: f.num("outc")? as u32,
            }),
            other => Err(err(format!("bad payload tag '{other}'"))),
        }
    }
}

impl TraceEvent {
    /// Tag string identifying the event kind in the JSONL encoding.
    pub fn tag(&self) -> &'static str {
        match self.kind {
            EventKind::RequestIssue { .. } => "issue",
            EventKind::RingSend { .. } => "ring_send",
            EventKind::RingRecv { .. } => "ring_recv",
            EventKind::MulticastRequest { .. } => "mcast",
            EventKind::SnoopPerform { .. } => "snoop",
            EventKind::SnoopSkip => "snoop_skip",
            EventKind::LttInsert { .. } => "ltt_insert",
            EventKind::LttRemove { .. } => "ltt_remove",
            EventKind::LttStall => "ltt_stall",
            EventKind::Collision { .. } => "collision",
            EventKind::WinnerSelected { .. } => "winner",
            EventKind::ResponseConsume { .. } => "consume",
            EventKind::Suppliership { .. } => "supply",
            EventKind::MemFetch { .. } => "mem_fetch",
            EventKind::PrefetchHit => "pref_hit",
            EventKind::Writeback => "writeback",
            EventKind::Bound { .. } => "bound",
            EventKind::Complete { .. } => "complete",
            EventKind::Retry { .. } => "retry",
            EventKind::Starvation { .. } => "starve",
            EventKind::FaultInjected { .. } => "fault",
            EventKind::ProtocolError { .. } => "proto_err",
            EventKind::Retransmit { .. } => "retx",
            EventKind::LinkDown { .. } => "link_down",
            EventKind::LinkUp { .. } => "link_up",
            EventKind::ReliableDeliver { .. } => "rdeliver",
        }
    }

    /// Encodes the event as one JSON object on a single line, with a
    /// stable field order (so identical runs produce byte-identical
    /// traces).
    pub fn to_jsonl(&self) -> String {
        use std::fmt::Write;
        let mut s = String::with_capacity(96);
        let _ = write!(
            s,
            "{{\"t\":{},\"n\":{},\"tn\":{},\"ts\":{},\"line\":{},\"ev\":\"{}\"",
            self.cycle,
            self.node,
            self.txn_node,
            self.txn_serial,
            self.line,
            self.tag()
        );
        match self.kind {
            EventKind::RequestIssue { op, retry } => {
                let _ = write!(s, ",\"op\":\"{}\",\"retry\":{retry}", op.code());
            }
            EventKind::RingSend { to, payload } => {
                let _ = write!(s, ",\"to\":{to}");
                payload.encode(&mut s);
            }
            EventKind::RingRecv { payload } => payload.encode(&mut s),
            EventKind::MulticastRequest { op } => {
                let _ = write!(s, ",\"op\":\"{}\"", op.code());
            }
            EventKind::SnoopPerform { positive } => {
                let _ = write!(s, ",\"pos\":{positive}");
            }
            EventKind::SnoopSkip
            | EventKind::LttStall
            | EventKind::PrefetchHit
            | EventKind::Writeback => {}
            EventKind::LttInsert { occupancy } | EventKind::LttRemove { occupancy } => {
                let _ = write!(s, ",\"occ\":{occupancy}");
            }
            EventKind::Collision {
                other_node,
                other_serial,
            } => {
                let _ = write!(s, ",\"on\":{other_node},\"os\":{other_serial}");
            }
            EventKind::WinnerSelected {
                winner_node,
                winner_serial,
            } => {
                let _ = write!(s, ",\"wn\":{winner_node},\"ws\":{winner_serial}");
            }
            EventKind::ResponseConsume {
                positive,
                squashed,
                loser_hint,
                outcomes,
            } => {
                let _ = write!(
                    s,
                    ",\"pos\":{positive},\"sq\":{squashed},\"lh\":{loser_hint},\"outc\":{outcomes}"
                );
            }
            EventKind::Suppliership { to, with_data } => {
                let _ = write!(s, ",\"to\":{to},\"data\":{with_data}");
            }
            EventKind::MemFetch { prefetch } => {
                let _ = write!(s, ",\"pref\":{prefetch}");
            }
            EventKind::Bound { latency, c2c } => {
                let _ = write!(s, ",\"lat\":{latency},\"c2c\":{c2c}");
            }
            EventKind::Complete { op, c2c, latency } => {
                let _ = write!(
                    s,
                    ",\"op\":\"{}\",\"c2c\":{c2c},\"lat\":{latency}",
                    op.code()
                );
            }
            EventKind::Retry { delay } => {
                let _ = write!(s, ",\"delay\":{delay}");
            }
            EventKind::Starvation { snid } => {
                let _ = write!(s, ",\"snid\":{snid}");
            }
            EventKind::FaultInjected { fault, delay } => {
                let _ = write!(s, ",\"fk\":\"{}\",\"delay\":{delay}", fault.code());
            }
            EventKind::ProtocolError { error } => {
                let _ = write!(s, ",\"code\":\"{}\"", error.code());
            }
            EventKind::Retransmit {
                to,
                channel,
                seq,
                attempt,
            } => {
                let _ = write!(
                    s,
                    ",\"to\":{to},\"ch\":{channel},\"seq\":{seq},\"att\":{attempt}"
                );
            }
            EventKind::LinkDown { link, up_at } => {
                let _ = write!(s, ",\"link\":{link},\"up\":{up_at}");
            }
            EventKind::LinkUp { link } => {
                let _ = write!(s, ",\"link\":{link}");
            }
            EventKind::ReliableDeliver { from, channel, seq } => {
                let _ = write!(s, ",\"from\":{from},\"ch\":{channel},\"seq\":{seq}");
            }
        }
        s.push('}');
        s
    }

    /// Parses one JSONL trace line.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] describing the first malformed or
    /// missing field.
    pub fn from_jsonl(line: &str) -> Result<Self, ParseError> {
        let f = Fields(parse_flat_object(line)?);
        let kind = match f.string("ev")? {
            "issue" => EventKind::RequestIssue {
                op: f.op("op")?,
                retry: f.boolean("retry")?,
            },
            "ring_send" => EventKind::RingSend {
                to: f.num("to")? as u32,
                payload: Payload::decode(&f)?,
            },
            "ring_recv" => EventKind::RingRecv {
                payload: Payload::decode(&f)?,
            },
            "mcast" => EventKind::MulticastRequest { op: f.op("op")? },
            "snoop" => EventKind::SnoopPerform {
                positive: f.boolean("pos")?,
            },
            "snoop_skip" => EventKind::SnoopSkip,
            "ltt_insert" => EventKind::LttInsert {
                occupancy: f.num("occ")? as u32,
            },
            "ltt_remove" => EventKind::LttRemove {
                occupancy: f.num("occ")? as u32,
            },
            "ltt_stall" => EventKind::LttStall,
            "collision" => EventKind::Collision {
                other_node: f.num("on")? as u32,
                other_serial: f.num("os")?,
            },
            "winner" => EventKind::WinnerSelected {
                winner_node: f.num("wn")? as u32,
                winner_serial: f.num("ws")?,
            },
            "consume" => EventKind::ResponseConsume {
                positive: f.boolean("pos")?,
                squashed: f.boolean("sq")?,
                loser_hint: f.boolean("lh")?,
                outcomes: f.num("outc")? as u32,
            },
            "supply" => EventKind::Suppliership {
                to: f.num("to")? as u32,
                with_data: f.boolean("data")?,
            },
            "mem_fetch" => EventKind::MemFetch {
                prefetch: f.boolean("pref")?,
            },
            "pref_hit" => EventKind::PrefetchHit,
            "writeback" => EventKind::Writeback,
            "bound" => EventKind::Bound {
                latency: f.num("lat")?,
                c2c: f.boolean("c2c")?,
            },
            "complete" => EventKind::Complete {
                op: f.op("op")?,
                c2c: f.boolean("c2c")?,
                latency: f.num("lat")?,
            },
            "retry" => EventKind::Retry {
                delay: f.num("delay")?,
            },
            "starve" => EventKind::Starvation {
                snid: f.num("snid")? as u32,
            },
            "fault" => {
                let code = f.string("fk")?;
                EventKind::FaultInjected {
                    fault: FaultClass::from_code(code)
                        .ok_or_else(|| err(format!("bad fault class '{code}'")))?,
                    delay: f.num("delay")?,
                }
            }
            "proto_err" => {
                let code = f.string("code")?;
                EventKind::ProtocolError {
                    error: ErrorClass::from_code(code)
                        .ok_or_else(|| err(format!("bad error class '{code}'")))?,
                }
            }
            "retx" => EventKind::Retransmit {
                to: f.num("to")? as u32,
                channel: f.num("ch")? as u8,
                seq: f.num("seq")?,
                attempt: f.num("att")? as u32,
            },
            "link_down" => EventKind::LinkDown {
                link: f.num("link")? as u32,
                up_at: f.num("up")?,
            },
            "link_up" => EventKind::LinkUp {
                link: f.num("link")? as u32,
            },
            "rdeliver" => EventKind::ReliableDeliver {
                from: f.num("from")? as u32,
                channel: f.num("ch")? as u8,
                seq: f.num("seq")?,
            },
            other => return Err(err(format!("unknown event tag '{other}'"))),
        };
        Ok(TraceEvent {
            cycle: f.num("t")?,
            node: f.num("n")? as u32,
            txn_node: f.num("tn")? as u32,
            txn_serial: f.num("ts")?,
            line: f.num("line")?,
            kind,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind) -> TraceEvent {
        TraceEvent {
            cycle: 1234,
            node: 5,
            txn_node: 5,
            txn_serial: 42,
            line: 0x1f80,
            kind,
        }
    }

    fn all_kinds() -> Vec<EventKind> {
        vec![
            EventKind::RequestIssue {
                op: OpClass::Read,
                retry: false,
            },
            EventKind::RequestIssue {
                op: OpClass::WriteHit,
                retry: true,
            },
            EventKind::RingSend {
                to: 6,
                payload: Payload::Request { op: OpClass::Read },
            },
            EventKind::RingSend {
                to: 6,
                payload: Payload::Response {
                    positive: true,
                    squashed: false,
                    loser_hint: true,
                    outcomes: 17,
                },
            },
            EventKind::RingRecv {
                payload: Payload::Response {
                    positive: false,
                    squashed: true,
                    loser_hint: false,
                    outcomes: 63,
                },
            },
            EventKind::MulticastRequest {
                op: OpClass::WriteMiss,
            },
            EventKind::SnoopPerform { positive: true },
            EventKind::SnoopSkip,
            EventKind::LttInsert { occupancy: 3 },
            EventKind::LttRemove { occupancy: 2 },
            EventKind::LttStall,
            EventKind::Collision {
                other_node: 9,
                other_serial: 100,
            },
            EventKind::WinnerSelected {
                winner_node: 5,
                winner_serial: 42,
            },
            EventKind::ResponseConsume {
                positive: true,
                squashed: false,
                loser_hint: false,
                outcomes: 64,
            },
            EventKind::Suppliership {
                to: 11,
                with_data: true,
            },
            EventKind::MemFetch { prefetch: false },
            EventKind::MemFetch { prefetch: true },
            EventKind::PrefetchHit,
            EventKind::Writeback,
            EventKind::Bound {
                latency: 88,
                c2c: true,
            },
            EventKind::Complete {
                op: OpClass::Read,
                c2c: false,
                latency: 412,
            },
            EventKind::Retry { delay: 200 },
            EventKind::Starvation { snid: 7 },
            EventKind::FaultInjected {
                fault: FaultClass::Jitter,
                delay: 12,
            },
            EventKind::FaultInjected {
                fault: FaultClass::Reorder,
                delay: 80,
            },
            EventKind::FaultInjected {
                fault: FaultClass::Duplicate,
                delay: 31,
            },
            EventKind::FaultInjected {
                fault: FaultClass::Congestion,
                delay: 64,
            },
            EventKind::ProtocolError {
                error: ErrorClass::MshrOverflow,
            },
            EventKind::ProtocolError {
                error: ErrorClass::LttSlotMissing,
            },
            EventKind::ProtocolError {
                error: ErrorClass::LttResponseMissing,
            },
            EventKind::ProtocolError {
                error: ErrorClass::TableMiss,
            },
            EventKind::ProtocolError {
                error: ErrorClass::MulticastTreeDisorder,
            },
            EventKind::FaultInjected {
                fault: FaultClass::Drop,
                delay: 0,
            },
            EventKind::FaultInjected {
                fault: FaultClass::Outage,
                delay: 500,
            },
            EventKind::Retransmit {
                to: 3,
                channel: 1,
                seq: 977,
                attempt: 4,
            },
            EventKind::LinkDown {
                link: 17,
                up_at: 90_000,
            },
            EventKind::LinkUp { link: 17 },
            EventKind::ReliableDeliver {
                from: 12,
                channel: 2,
                seq: 4096,
            },
        ]
    }

    #[test]
    fn jsonl_roundtrip_every_kind() {
        for kind in all_kinds() {
            let e = ev(kind);
            let line = e.to_jsonl();
            let back = TraceEvent::from_jsonl(&line)
                .unwrap_or_else(|err| panic!("parse failed for {line}: {err}"));
            assert_eq!(back, e, "roundtrip mismatch for {line}");
        }
    }

    #[test]
    fn jsonl_is_single_line_and_stable() {
        for kind in all_kinds() {
            let e = ev(kind);
            let a = e.to_jsonl();
            assert!(!a.contains('\n'));
            assert_eq!(a, e.to_jsonl(), "encoding must be deterministic");
        }
    }

    #[test]
    fn display_keeps_legacy_vocabulary() {
        let m = ev(EventKind::MulticastRequest { op: OpClass::Read });
        assert!(m.to_string().contains("MCAST R"));
        let s = ev(EventKind::Suppliership {
            to: 3,
            with_data: true,
        });
        assert!(s.to_string().contains("SUPPLIERSHIP"));
        let c = ev(EventKind::Complete {
            op: OpClass::Read,
            c2c: true,
            latency: 50,
        });
        assert!(c.to_string().contains("COMPLETE"));
        let f = ev(EventKind::MemFetch { prefetch: false });
        assert!(f.to_string().contains("MEMFETCH (demand)"));
        let r = ev(EventKind::Retry { delay: 10 });
        assert!(r.to_string().contains("RETRY"));
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(TraceEvent::from_jsonl("").is_err());
        assert!(TraceEvent::from_jsonl("{}").is_err());
        assert!(TraceEvent::from_jsonl("not json").is_err());
        assert!(TraceEvent::from_jsonl("{\"t\":1}").is_err());
        // unknown tag
        let bad = "{\"t\":1,\"n\":0,\"tn\":0,\"ts\":0,\"line\":0,\"ev\":\"nope\"}";
        assert!(TraceEvent::from_jsonl(bad).is_err());
    }
}
