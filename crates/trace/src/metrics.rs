//! Per-node and per-link metrics that roll up into the machine report.

use ring_stats::{Histogram, LogHistogram, Summary};

use crate::event::OpClass;

/// Counters and latency accumulators for one node.
///
/// The machine bumps these as it executes protocol effects; at report
/// time [`MetricsRegistry`] merges all nodes into the machine-level
/// statistics, replacing the previous ad-hoc global field bumps and
/// keeping the per-node breakdown available for inspection.
#[derive(Debug, Clone)]
pub struct NodeMetrics {
    /// Transactions issued by this node (including retries).
    pub requests: u64,
    /// Retries scheduled at this node.
    pub retries: u64,
    /// Suppliership transfers sent by this node.
    pub supplies: u64,
    /// Demand memory fetches started by this node.
    pub mem_demand: u64,
    /// Prefetch memory fetches started on behalf of this node.
    pub mem_prefetch: u64,
    /// Demand fetches satisfied by the node's prefetch buffer.
    pub prefetch_hits: u64,
    /// Lines written back to memory by this node.
    pub writebacks: u64,
    /// Read misses served cache-to-cache.
    pub reads_c2c: u64,
    /// Read misses served from memory.
    pub reads_mem: u64,
    /// Reads with a prefetch issued, served cache-to-cache.
    pub pref_cache: u64,
    /// Reads without a prefetch, served cache-to-cache.
    pub nopref_cache: u64,
    /// Reads with a prefetch issued, served from memory.
    pub pref_mem: u64,
    /// Reads without a prefetch, served from memory.
    pub nopref_mem: u64,
    /// Read-miss latency (L1 fill included), all reads.
    pub read_latency: Summary,
    /// Read-miss latency, cache-to-cache subset.
    pub read_latency_c2c: Summary,
    /// Read-miss latency, memory subset.
    pub read_latency_mem: Summary,
    /// Issue-to-completion latency of read transactions.
    pub read_completion: Summary,
    /// Cache-to-cache read latency histogram (Figure 8 style).
    pub c2c_histogram: Histogram,
}

impl NodeMetrics {
    /// Fresh metrics with a c2c histogram of `bins` bins of
    /// `bin_width` cycles.
    pub fn new(bin_width: u64, bins: usize) -> Self {
        NodeMetrics {
            requests: 0,
            retries: 0,
            supplies: 0,
            mem_demand: 0,
            mem_prefetch: 0,
            prefetch_hits: 0,
            writebacks: 0,
            reads_c2c: 0,
            reads_mem: 0,
            pref_cache: 0,
            nopref_cache: 0,
            pref_mem: 0,
            nopref_mem: 0,
            read_latency: Summary::new(),
            read_latency_c2c: Summary::new(),
            read_latency_mem: Summary::new(),
            read_completion: Summary::new(),
            c2c_histogram: Histogram::new(bin_width, bins),
        }
    }

    /// Records a read binding (data arrival) with its end-to-end
    /// latency `lat` (cycles, L1 fill included).
    pub fn record_read_bound(&mut self, lat: u64, c2c: bool) {
        self.read_latency.record(lat as f64);
        if c2c {
            self.read_latency_c2c.record(lat as f64);
            self.c2c_histogram.record(lat);
            self.reads_c2c += 1;
        } else {
            self.read_latency_mem.record(lat as f64);
            self.reads_mem += 1;
        }
    }

    /// Records a read completion and its prefetch/service class.
    pub fn record_read_complete(&mut self, latency: u64, c2c: bool, prefetch_issued: bool) {
        self.read_completion.record(latency as f64);
        match (prefetch_issued, c2c) {
            (true, true) => self.pref_cache += 1,
            (false, true) => self.nopref_cache += 1,
            (false, false) => self.nopref_mem += 1,
            (true, false) => self.pref_mem += 1,
        }
    }
}

/// Message/byte counters for one physical network link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkMetrics {
    /// Messages that crossed the link.
    pub messages: u64,
    /// Bytes that crossed the link.
    pub bytes: u64,
}

/// Per-transaction latency anatomy, Figure-5 style: where the cycles of
/// a cache-to-cache read go. Each segment keeps both a streaming mean
/// ([`Summary`]) and a log-bucketed distribution ([`LogHistogram`]), so
/// the anatomy can be reported as percentiles, not just averages.
#[derive(Debug, Clone, Default)]
pub struct LatencyAnatomy {
    /// Issue until the supplier sends suppliership (request delivery
    /// plus the supplier's snoop).
    pub delivery: Summary,
    /// Suppliership send until the data binds at the requester.
    pub transfer: Summary,
    /// Data bound until the combined response lets the transaction
    /// complete (the serialization wait).
    pub response: Summary,
    /// Distribution of the request-delivery segment.
    pub delivery_hist: LogHistogram,
    /// Distribution of the data-transfer segment.
    pub transfer_hist: LogHistogram,
    /// Distribution of the response-return segment.
    pub response_hist: LogHistogram,
}

impl LatencyAnatomy {
    /// Empty anatomy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one fully-observed cache-to-cache read.
    pub fn record(&mut self, delivery: u64, transfer: u64, response: u64) {
        self.delivery.record(delivery as f64);
        self.transfer.record(transfer as f64);
        self.response.record(response as f64);
        self.delivery_hist.record(delivery);
        self.transfer_hist.record(transfer);
        self.response_hist.record(response);
    }

    /// Total mean latency across the three segments.
    pub fn mean_total(&self) -> f64 {
        self.delivery.mean() + self.transfer.mean() + self.response.mean()
    }

    /// The three phase distributions with their report labels, in
    /// delivery → transfer → response order.
    pub fn phases(&self) -> [(&'static str, &LogHistogram); 3] {
        [
            ("delivery", &self.delivery_hist),
            ("transfer", &self.transfer_hist),
            ("response", &self.response_hist),
        ]
    }
}

/// Number of transaction classes tracked by [`ClassLatency`].
pub const TXN_CLASSES: usize = 6;

/// Machine-wide issue-to-completion latency distributions, one per
/// transaction class: operation (read miss / write miss / upgrade) ×
/// service (cache-to-cache forward / memory).
///
/// Upgrades (write hits needing ownership) never fetch data from
/// memory; their "mem" class stays empty on correct protocols but is
/// kept so the class set is a plain cross product.
#[derive(Debug, Clone, Default)]
pub struct ClassLatency {
    hists: [LogHistogram; TXN_CLASSES],
}

impl ClassLatency {
    /// Empty class latencies.
    pub fn new() -> Self {
        Self::default()
    }

    fn index(op: OpClass, c2c: bool) -> usize {
        let op = match op {
            OpClass::Read => 0,
            OpClass::WriteMiss => 1,
            OpClass::WriteHit => 2,
        };
        op * 2 + usize::from(!c2c)
    }

    /// Records one completed transaction of class `(op, c2c)` with its
    /// issue-to-completion latency in cycles.
    pub fn record(&mut self, op: OpClass, c2c: bool, latency: u64) {
        self.hists[Self::index(op, c2c)].record(latency);
    }

    /// The distribution for one class.
    pub fn get(&self, op: OpClass, c2c: bool) -> &LogHistogram {
        &self.hists[Self::index(op, c2c)]
    }

    /// All classes with their report labels, in a stable order
    /// (`read_c2c`, `read_mem`, `write_c2c`, `write_mem`, `upgrade_c2c`,
    /// `upgrade_mem`).
    pub fn classes(&self) -> [(&'static str, &LogHistogram); TXN_CLASSES] {
        [
            ("read_c2c", &self.hists[0]),
            ("read_mem", &self.hists[1]),
            ("write_c2c", &self.hists[2]),
            ("write_mem", &self.hists[3]),
            ("upgrade_c2c", &self.hists[4]),
            ("upgrade_mem", &self.hists[5]),
        ]
    }

    /// Merged distribution of all read classes (c2c + mem) — the
    /// machine-wide read-latency distribution used for BENCH percentile
    /// columns.
    pub fn reads(&self) -> LogHistogram {
        self.hists[0].merged(&self.hists[1])
    }

    /// Total samples across every class.
    pub fn total(&self) -> u64 {
        self.hists.iter().map(|h| h.total()).sum()
    }
}

/// The run-wide registry: one [`NodeMetrics`] per node, one
/// [`LinkMetrics`] per network link, and the latency anatomy.
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    nodes: Vec<NodeMetrics>,
    links: Vec<LinkMetrics>,
    /// Latency anatomy of cache-to-cache reads.
    pub anatomy: LatencyAnatomy,
    /// Machine-wide issue-to-completion latency per transaction class.
    pub classes: ClassLatency,
}

impl MetricsRegistry {
    /// A registry for `nodes` nodes, with c2c histograms of `bins`
    /// bins of `bin_width` cycles each.
    pub fn new(nodes: usize, bin_width: u64, bins: usize) -> Self {
        MetricsRegistry {
            nodes: (0..nodes)
                .map(|_| NodeMetrics::new(bin_width, bins))
                .collect(),
            links: Vec::new(),
            anatomy: LatencyAnatomy::new(),
            classes: ClassLatency::new(),
        }
    }

    /// Mutable access to one node's metrics.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn node_mut(&mut self, n: usize) -> &mut NodeMetrics {
        &mut self.nodes[n]
    }

    /// All per-node metrics.
    pub fn nodes(&self) -> &[NodeMetrics] {
        &self.nodes
    }

    /// Installs the per-link loads (copied from the network at report
    /// time).
    pub fn set_link_loads(&mut self, links: Vec<LinkMetrics>) {
        self.links = links;
    }

    /// All per-link metrics (empty until [`Self::set_link_loads`]).
    pub fn links(&self) -> &[LinkMetrics] {
        &self.links
    }

    /// Distribution of per-link message counts — its max/mean expose
    /// hotspots (the embedded ring concentrates load on ring links).
    pub fn link_message_summary(&self) -> Summary {
        let mut s = Summary::new();
        for l in &self.links {
            s.record(l.messages as f64);
        }
        s
    }

    /// Sums `f` over all nodes.
    pub fn total(&self, f: impl Fn(&NodeMetrics) -> u64) -> u64 {
        self.nodes.iter().map(f).sum()
    }

    /// Merges `f`-selected summaries over all nodes.
    pub fn merged(&self, f: impl Fn(&NodeMetrics) -> &Summary) -> Summary {
        let mut out = Summary::new();
        for n in &self.nodes {
            out.merge(f(n));
        }
        out
    }

    /// Merges all nodes' c2c histograms.
    pub fn merged_c2c_histogram(&self) -> Option<Histogram> {
        let mut it = self.nodes.iter();
        let mut out = it.next()?.c2c_histogram.clone();
        for n in it {
            out.merge(&n.c2c_histogram);
        }
        Some(out)
    }
}

impl ring_snapshot::Snap for NodeMetrics {
    fn save(&self, w: &mut ring_snapshot::SnapWriter) {
        w.put(&self.requests);
        w.put(&self.retries);
        w.put(&self.supplies);
        w.put(&self.mem_demand);
        w.put(&self.mem_prefetch);
        w.put(&self.prefetch_hits);
        w.put(&self.writebacks);
        w.put(&self.reads_c2c);
        w.put(&self.reads_mem);
        w.put(&self.pref_cache);
        w.put(&self.nopref_cache);
        w.put(&self.pref_mem);
        w.put(&self.nopref_mem);
        w.put(&self.read_latency);
        w.put(&self.read_latency_c2c);
        w.put(&self.read_latency_mem);
        w.put(&self.read_completion);
        w.put(&self.c2c_histogram);
    }
    fn load(r: &mut ring_snapshot::SnapReader<'_>) -> Result<Self, ring_snapshot::SnapshotError> {
        Ok(NodeMetrics {
            requests: r.get()?,
            retries: r.get()?,
            supplies: r.get()?,
            mem_demand: r.get()?,
            mem_prefetch: r.get()?,
            prefetch_hits: r.get()?,
            writebacks: r.get()?,
            reads_c2c: r.get()?,
            reads_mem: r.get()?,
            pref_cache: r.get()?,
            nopref_cache: r.get()?,
            pref_mem: r.get()?,
            nopref_mem: r.get()?,
            read_latency: r.get()?,
            read_latency_c2c: r.get()?,
            read_latency_mem: r.get()?,
            read_completion: r.get()?,
            c2c_histogram: r.get()?,
        })
    }
}

impl ring_snapshot::Snap for LinkMetrics {
    fn save(&self, w: &mut ring_snapshot::SnapWriter) {
        w.put(&self.messages);
        w.put(&self.bytes);
    }
    fn load(r: &mut ring_snapshot::SnapReader<'_>) -> Result<Self, ring_snapshot::SnapshotError> {
        Ok(LinkMetrics {
            messages: r.get()?,
            bytes: r.get()?,
        })
    }
}

impl ring_snapshot::Snap for LatencyAnatomy {
    fn save(&self, w: &mut ring_snapshot::SnapWriter) {
        w.put(&self.delivery);
        w.put(&self.transfer);
        w.put(&self.response);
        w.put(&self.delivery_hist);
        w.put(&self.transfer_hist);
        w.put(&self.response_hist);
    }
    fn load(r: &mut ring_snapshot::SnapReader<'_>) -> Result<Self, ring_snapshot::SnapshotError> {
        Ok(LatencyAnatomy {
            delivery: r.get()?,
            transfer: r.get()?,
            response: r.get()?,
            delivery_hist: r.get()?,
            transfer_hist: r.get()?,
            response_hist: r.get()?,
        })
    }
}

impl ring_snapshot::Snap for ClassLatency {
    fn save(&self, w: &mut ring_snapshot::SnapWriter) {
        w.put(&self.hists);
    }
    fn load(r: &mut ring_snapshot::SnapReader<'_>) -> Result<Self, ring_snapshot::SnapshotError> {
        Ok(ClassLatency { hists: r.get()? })
    }
}

impl ring_snapshot::Snap for MetricsRegistry {
    fn save(&self, w: &mut ring_snapshot::SnapWriter) {
        w.put(&self.nodes);
        w.put(&self.links);
        w.put(&self.anatomy);
        w.put(&self.classes);
    }
    fn load(r: &mut ring_snapshot::SnapReader<'_>) -> Result<Self, ring_snapshot::SnapshotError> {
        Ok(MetricsRegistry {
            nodes: r.get()?,
            links: r.get()?,
            anatomy: r.get()?,
            classes: r.get()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rollup_merges_across_nodes() {
        let mut r = MetricsRegistry::new(2, 16, 96);
        r.node_mut(0).record_read_bound(100, true);
        r.node_mut(1).record_read_bound(300, true);
        r.node_mut(1).record_read_bound(500, false);
        let all = r.merged(|n| &n.read_latency);
        assert_eq!(all.count(), 3);
        assert!((all.mean() - 300.0).abs() < 1e-9);
        let c2c = r.merged(|n| &n.read_latency_c2c);
        assert_eq!(c2c.count(), 2);
        assert_eq!(r.total(|n| n.reads_c2c), 2);
        assert_eq!(r.total(|n| n.reads_mem), 1);
        let h = r.merged_c2c_histogram().unwrap();
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn completion_classes_are_exclusive() {
        let mut m = NodeMetrics::new(16, 96);
        m.record_read_complete(50, true, true);
        m.record_read_complete(50, true, false);
        m.record_read_complete(50, false, true);
        m.record_read_complete(50, false, false);
        assert_eq!(
            (m.pref_cache, m.nopref_cache, m.pref_mem, m.nopref_mem),
            (1, 1, 1, 1)
        );
        assert_eq!(m.read_completion.count(), 4);
    }

    #[test]
    fn link_summary_exposes_hotspots() {
        let mut r = MetricsRegistry::new(1, 16, 96);
        r.set_link_loads(vec![
            LinkMetrics {
                messages: 10,
                bytes: 80,
            },
            LinkMetrics {
                messages: 90,
                bytes: 720,
            },
        ]);
        let s = r.link_message_summary();
        assert_eq!(s.count(), 2);
        assert_eq!(s.max(), Some(90.0));
        assert!((s.mean() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn anatomy_accumulates_segments() {
        let mut a = LatencyAnatomy::new();
        a.record(40, 20, 60);
        a.record(60, 30, 80);
        assert_eq!(a.delivery.count(), 2);
        assert!((a.mean_total() - (50.0 + 25.0 + 70.0)).abs() < 1e-9);
    }

    #[test]
    fn empty_registry_rolls_up_to_empty() {
        let r = MetricsRegistry::new(0, 16, 96);
        assert_eq!(r.merged(|n| &n.read_latency).count(), 0);
        assert!(r.merged_c2c_histogram().is_none());
        assert_eq!(r.link_message_summary().count(), 0);
    }

    #[test]
    fn anatomy_phase_histograms_track_the_summaries() {
        let mut a = LatencyAnatomy::new();
        a.record(40, 20, 60);
        a.record(60, 30, 80);
        for (label, h) in a.phases() {
            assert_eq!(h.total(), 2, "{label}");
        }
        assert_eq!(a.delivery_hist.max(), Some(60));
        assert_eq!(a.response_hist.min(), Some(60));
    }

    #[test]
    fn class_latency_routes_by_op_and_service() {
        let mut c = ClassLatency::new();
        c.record(OpClass::Read, true, 100);
        c.record(OpClass::Read, false, 400);
        c.record(OpClass::WriteMiss, true, 200);
        c.record(OpClass::WriteHit, true, 50);
        assert_eq!(c.get(OpClass::Read, true).total(), 1);
        assert_eq!(c.get(OpClass::Read, false).total(), 1);
        assert_eq!(c.get(OpClass::WriteMiss, true).total(), 1);
        assert_eq!(c.get(OpClass::WriteMiss, false).total(), 0);
        assert_eq!(c.get(OpClass::WriteHit, true).total(), 1);
        assert_eq!(c.total(), 4);
        let reads = c.reads();
        assert_eq!(reads.total(), 2);
        assert_eq!(reads.min(), Some(100));
        assert_eq!(reads.max(), Some(400));
        let labels: Vec<&str> = c.classes().iter().map(|(l, _)| *l).collect();
        assert_eq!(
            labels,
            [
                "read_c2c",
                "read_mem",
                "write_c2c",
                "write_mem",
                "upgrade_c2c",
                "upgrade_mem"
            ]
        );
    }
}
