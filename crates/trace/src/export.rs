//! Exporters for external observability tooling.
//!
//! [`perfetto_json`] renders a run as Chrome/Perfetto `trace_event`
//! JSON: one track (`tid`) per node carrying a complete-event slice for
//! every transaction lifetime (issue → complete/retry), plus counter
//! tracks built from [`WindowSnapshot`]s — event-queue depth split into
//! calendar buckets vs heap fallback, LTT/MSHR occupancy,
//! reliable-transport backlog, and per-window link utilization. Open
//! the result at `ui.perfetto.dev` or `chrome://tracing`.
//!
//! Timestamps are raw simulation cycles written into the `ts`/`dur`
//! microsecond fields (1 cycle renders as 1 µs); all relative
//! comparisons in the UI remain correct.

use std::collections::BTreeMap;

use crate::event::{EventKind, OpClass, TraceEvent};
use crate::flight::WindowSnapshot;

fn op_name(op: OpClass) -> &'static str {
    match op {
        OpClass::Read => "read",
        OpClass::WriteMiss => "write",
        OpClass::WriteHit => "upgrade",
    }
}

fn push_event(out: &mut String, body: &str) {
    if !out.is_empty() {
        out.push_str(",\n");
    }
    out.push_str(body);
}

/// Renders trace events and flight-recorder windows as a Chrome/Perfetto
/// `trace_event` JSON document (returned as a `String`).
///
/// Transaction slices require a recorded event stream (e.g. from a
/// [`SharedBufferSink`](crate::SharedBufferSink)); counter tracks
/// require flight-recorder windows. Either input may be empty — the
/// output is always a valid trace.
pub fn perfetto_json(events: &[TraceEvent], windows: &[WindowSnapshot]) -> String {
    let mut body = String::new();
    // Track metadata: one named thread per node that appears.
    let mut nodes: Vec<u32> = events.iter().map(|e| e.node).collect();
    nodes.sort_unstable();
    nodes.dedup();
    for n in &nodes {
        push_event(
            &mut body,
            &format!(
                "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":{n},\
                 \"args\":{{\"name\":\"node {n}\"}}}}"
            ),
        );
    }
    // Transaction lifetime slices: issue -> complete/retry, one per
    // attempt, on the requester's track.
    let mut open: BTreeMap<(u32, u64), (u64, OpClass)> = BTreeMap::new();
    for ev in events {
        match ev.kind {
            EventKind::RequestIssue { op, .. } => {
                open.insert((ev.txn_node, ev.txn_serial), (ev.cycle, op));
            }
            EventKind::Complete { op, c2c, .. } if ev.node == ev.txn_node => {
                if let Some((start, _)) = open.remove(&(ev.txn_node, ev.txn_serial)) {
                    let service = if c2c { "c2c" } else { "mem" };
                    push_event(
                        &mut body,
                        &format!(
                            "{{\"name\":\"{} {service}\",\"cat\":\"txn\",\"ph\":\"X\",\
                             \"ts\":{start},\"dur\":{},\"pid\":0,\"tid\":{},\
                             \"args\":{{\"line\":\"{:#x}\",\"serial\":{}}}}}",
                            op_name(op),
                            ev.cycle.saturating_sub(start),
                            ev.txn_node,
                            ev.line,
                            ev.txn_serial
                        ),
                    );
                }
            }
            EventKind::Retry { .. } if ev.node == ev.txn_node => {
                if let Some((start, op)) = open.remove(&(ev.txn_node, ev.txn_serial)) {
                    push_event(
                        &mut body,
                        &format!(
                            "{{\"name\":\"{} retry\",\"cat\":\"txn\",\"ph\":\"X\",\
                             \"ts\":{start},\"dur\":{},\"pid\":0,\"tid\":{},\
                             \"args\":{{\"line\":\"{:#x}\",\"serial\":{}}}}}",
                            op_name(op),
                            ev.cycle.saturating_sub(start),
                            ev.txn_node,
                            ev.line,
                            ev.txn_serial
                        ),
                    );
                }
            }
            _ => {}
        }
    }
    // Counter tracks from the flight recorder.
    for w in windows {
        let t = w.window_end;
        push_event(
            &mut body,
            &format!(
                "{{\"name\":\"queue depth\",\"ph\":\"C\",\"ts\":{t},\"pid\":0,\
                 \"args\":{{\"buckets\":{},\"heap\":{}}}}}",
                w.queue_buckets, w.queue_heap
            ),
        );
        push_event(
            &mut body,
            &format!(
                "{{\"name\":\"occupancy\",\"ph\":\"C\",\"ts\":{t},\"pid\":0,\
                 \"args\":{{\"ltt\":{},\"mshr\":{}}}}}",
                w.ltt_total, w.mshr_total
            ),
        );
        let max_msgs = w.link_messages.iter().copied().max().unwrap_or(0);
        let total_msgs: u64 = w.link_messages.iter().sum();
        push_event(
            &mut body,
            &format!(
                "{{\"name\":\"link utilization\",\"ph\":\"C\",\"ts\":{t},\"pid\":0,\
                 \"args\":{{\"max_link_msgs\":{max_msgs},\"total_msgs\":{total_msgs}}}}}"
            ),
        );
        if w.rel_unacked > 0 || w.rel_queued > 0 || w.retransmits > 0 {
            push_event(
                &mut body,
                &format!(
                    "{{\"name\":\"reliable transport\",\"ph\":\"C\",\"ts\":{t},\"pid\":0,\
                     \"args\":{{\"unacked\":{},\"queued\":{},\"retransmits\":{}}}}}",
                    w.rel_unacked, w.rel_queued, w.retransmits
                ),
            );
        }
    }
    format!("{{\"traceEvents\":[\n{body}\n],\"displayTimeUnit\":\"ns\"}}\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::{FlightConfig, FlightProbe, FlightRecorder};

    fn ev(cycle: u64, node: u32, serial: u64, kind: EventKind) -> TraceEvent {
        TraceEvent {
            cycle,
            node,
            txn_node: node,
            txn_serial: serial,
            line: 0x40,
            kind,
        }
    }

    #[test]
    fn emits_slices_for_transaction_lifetimes() {
        let events = vec![
            ev(
                10,
                1,
                7,
                EventKind::RequestIssue {
                    op: OpClass::Read,
                    retry: false,
                },
            ),
            ev(
                90,
                1,
                7,
                EventKind::Complete {
                    op: OpClass::Read,
                    c2c: true,
                    latency: 80,
                },
            ),
        ];
        let json = perfetto_json(&events, &[]);
        assert!(json.contains("\"name\":\"read c2c\""));
        assert!(json.contains("\"ts\":10,\"dur\":80"));
        assert!(json.contains("\"tid\":1"));
        assert!(json.contains("\"thread_name\""));
    }

    #[test]
    fn emits_counter_tracks_from_windows() {
        let mut r = FlightRecorder::new(FlightConfig::default());
        r.record(FlightProbe {
            cycle: 10_000,
            events: 100,
            queue_depth: 7,
            queue_buckets: 6,
            queue_heap: 1,
            link_messages: vec![5, 50],
            link_bytes: vec![40, 400],
            ..Default::default()
        });
        let windows: Vec<WindowSnapshot> = r.snapshots().cloned().collect();
        let json = perfetto_json(&[], &windows);
        assert!(json.contains("\"name\":\"queue depth\""));
        assert!(json.contains("\"buckets\":6,\"heap\":1"));
        assert!(json.contains("\"max_link_msgs\":50,\"total_msgs\":55"));
    }

    #[test]
    fn empty_inputs_still_produce_a_valid_shell() {
        let json = perfetto_json(&[], &[]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with("}"));
    }

    #[test]
    fn retries_close_their_slice() {
        let events = vec![
            ev(
                10,
                2,
                3,
                EventKind::RequestIssue {
                    op: OpClass::WriteMiss,
                    retry: false,
                },
            ),
            ev(50, 2, 3, EventKind::Retry { delay: 20 }),
        ];
        let json = perfetto_json(&events, &[]);
        assert!(json.contains("\"name\":\"write retry\""));
        assert!(json.contains("\"dur\":40"));
    }
}
