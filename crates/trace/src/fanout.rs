//! Live trace fan-out: one producer (the machine), many bounded
//! subscribers (daemon clients), zero backpressure on the simulation.
//!
//! The load-bearing rule is that a slow or dead consumer must never
//! slow the run, because the run's byte-identical digest is the repo's
//! core guarantee and "subscriber attached" must not be observable in
//! it. [`FanoutSink::record`] therefore never blocks and never
//! allocates per subscriber beyond each subscriber's fixed-capacity
//! buffer: when a buffer is full the incoming event is *counted and
//! dropped*, and the next time space opens up a [`Delivery::Gap`]
//! marker carrying the exact drop count is enqueued ahead of the next
//! event, so consumers always know precisely how much of the stream
//! they missed and where.
//!
//! Subscriptions detach automatically on [`Drop`], so a daemon client
//! thread that dies takes its buffer with it — the producer side reaps
//! the entry on its next `record`.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};

use crate::event::TraceEvent;
use crate::sink::TraceSink;

/// One item handed to a subscriber: either a trace event, or a marker
/// standing in for `dropped` events that overflowed the buffer between
/// the surrounding deliveries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// A trace event, in emission order.
    Event(TraceEvent),
    /// `dropped` events were discarded at exactly this position in the
    /// stream (the subscriber's buffer was full).
    Gap {
        /// Number of consecutive events lost.
        dropped: u64,
    },
}

/// Per-subscriber state, owned by the fan-out's shared table.
#[derive(Debug)]
struct SubState {
    buf: std::collections::VecDeque<Delivery>,
    capacity: usize,
    /// Drops since the last successful enqueue; materialized as a
    /// [`Delivery::Gap`] the moment space opens up.
    pending_gap: u64,
    total_dropped: u64,
}

#[derive(Debug, Default)]
struct FanoutInner {
    next_id: u64,
    subs: BTreeMap<u64, SubState>,
}

/// A [`TraceSink`] that copies every event to any number of bounded
/// subscriber buffers without ever blocking the producer.
///
/// Clones share the subscriber table (the same pattern as
/// [`SharedBufferSink`](crate::SharedBufferSink)): install one clone
/// into the machine, keep another to accept subscriptions.
#[derive(Debug, Clone, Default)]
pub struct FanoutSink {
    inner: Arc<Mutex<FanoutInner>>,
}

impl FanoutSink {
    /// An empty fan-out with no subscribers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a subscriber holding at most `capacity` deliveries
    /// (gap markers occupy a slot too). The subscription detaches on
    /// drop.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — such a buffer could never deliver
    /// anything, not even the gap marker saying so.
    pub fn subscribe(&self, capacity: usize) -> Subscription {
        assert!(capacity > 0, "subscriber capacity must be positive");
        let mut inner = lock(&self.inner);
        let id = inner.next_id;
        inner.next_id += 1;
        inner.subs.insert(
            id,
            SubState {
                buf: std::collections::VecDeque::with_capacity(capacity),
                capacity,
                pending_gap: 0,
                total_dropped: 0,
            },
        );
        Subscription {
            inner: Arc::clone(&self.inner),
            id,
        }
    }

    /// Number of live subscriptions.
    pub fn subscriber_count(&self) -> usize {
        lock(&self.inner).subs.len()
    }
}

impl TraceSink for FanoutSink {
    fn record(&mut self, ev: &TraceEvent) {
        let mut inner = lock(&self.inner);
        for sub in inner.subs.values_mut() {
            if sub.pending_gap > 0 && sub.buf.len() < sub.capacity {
                sub.buf.push_back(Delivery::Gap {
                    dropped: sub.pending_gap,
                });
                sub.pending_gap = 0;
            }
            if sub.buf.len() < sub.capacity {
                sub.buf.push_back(Delivery::Event(*ev));
            } else {
                sub.pending_gap += 1;
                sub.total_dropped += 1;
            }
        }
    }
}

/// A handle to one bounded subscriber buffer of a [`FanoutSink`].
///
/// Dropping the handle detaches the subscription; the producer stops
/// copying events for it immediately.
#[derive(Debug)]
pub struct Subscription {
    inner: Arc<Mutex<FanoutInner>>,
    id: u64,
}

impl Subscription {
    /// Takes every buffered delivery, oldest first. An empty result
    /// means nothing arrived since the last drain, not end-of-stream.
    pub fn drain(&self) -> Vec<Delivery> {
        let mut inner = lock(&self.inner);
        match inner.subs.get_mut(&self.id) {
            Some(sub) => sub.buf.drain(..).collect(),
            None => Vec::new(),
        }
    }

    /// Total events this subscriber has lost to overflow so far
    /// (including drops not yet surfaced as a gap marker).
    pub fn total_dropped(&self) -> u64 {
        let inner = lock(&self.inner);
        inner.subs.get(&self.id).map_or(0, |s| s.total_dropped)
    }

    /// Number of deliveries currently buffered.
    pub fn buffered(&self) -> usize {
        let inner = lock(&self.inner);
        inner.subs.get(&self.id).map_or(0, |s| s.buf.len())
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        lock(&self.inner).subs.remove(&self.id);
    }
}

/// Locks the table, recovering from poison: a panicking client thread
/// must not wedge the producer (the table holds only plain data, every
/// state it can be observed in is valid).
fn lock(inner: &Mutex<FanoutInner>) -> std::sync::MutexGuard<'_, FanoutInner> {
    inner.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, OpClass};

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent {
            cycle,
            node: 0,
            txn_node: 0,
            txn_serial: cycle,
            line: 64,
            kind: EventKind::RequestIssue {
                op: OpClass::Read,
                retry: false,
            },
        }
    }

    fn cycles(ds: &[Delivery]) -> Vec<u64> {
        ds.iter()
            .map(|d| match d {
                Delivery::Event(e) => e.cycle,
                Delivery::Gap { dropped } => panic!("unexpected gap of {dropped}"),
            })
            .collect()
    }

    #[test]
    fn every_subscriber_sees_every_event_in_order() {
        let fan = FanoutSink::new();
        let a = fan.subscribe(16);
        let b = fan.subscribe(16);
        let mut sink = fan.clone();
        for c in 0..5 {
            sink.record(&ev(c));
        }
        assert_eq!(cycles(&a.drain()), vec![0, 1, 2, 3, 4]);
        assert_eq!(cycles(&b.drain()), vec![0, 1, 2, 3, 4]);
        assert_eq!(a.total_dropped(), 0);
    }

    #[test]
    fn overflow_is_counted_and_surfaced_as_one_gap() {
        let fan = FanoutSink::new();
        let sub = fan.subscribe(2);
        let mut sink = fan.clone();
        for c in 0..5 {
            sink.record(&ev(c)); // 0,1 buffered; 2,3,4 dropped
        }
        assert_eq!(cycles(&sub.drain()), vec![0, 1]);
        assert_eq!(sub.total_dropped(), 3);
        sink.record(&ev(5)); // space now: gap(3) then event 5
        assert_eq!(
            sub.drain(),
            vec![Delivery::Gap { dropped: 3 }, Delivery::Event(ev(5))]
        );
        assert_eq!(sub.total_dropped(), 3, "gap emission must not re-count");
    }

    #[test]
    fn gap_marker_occupies_a_slot() {
        let fan = FanoutSink::new();
        let sub = fan.subscribe(1);
        let mut sink = fan.clone();
        sink.record(&ev(0)); // fills the single slot
        sink.record(&ev(1)); // dropped
        assert_eq!(cycles(&sub.drain()), vec![0]);
        sink.record(&ev(2)); // gap(1) takes the slot; 2 is dropped too
        assert_eq!(sub.drain(), vec![Delivery::Gap { dropped: 1 }]);
        sink.record(&ev(3)); // gap(1) for event 2, then... only gap fits? cap=1
        assert_eq!(sub.drain(), vec![Delivery::Gap { dropped: 1 }]);
    }

    #[test]
    fn dropping_the_handle_detaches() {
        let fan = FanoutSink::new();
        let sub = fan.subscribe(4);
        assert_eq!(fan.subscriber_count(), 1);
        drop(sub);
        assert_eq!(fan.subscriber_count(), 0);
        let mut sink = fan.clone();
        sink.record(&ev(0)); // must not panic or resurrect the entry
        assert_eq!(fan.subscriber_count(), 0);
    }

    #[test]
    fn drain_after_detach_is_empty_not_a_panic() {
        let fan = FanoutSink::new();
        let a = fan.subscribe(4);
        let mut sink = fan.clone();
        sink.record(&ev(0));
        let got = a.drain();
        assert_eq!(got.len(), 1);
        drop(fan); // producer side gone; handle still valid
        assert!(a.drain().is_empty());
        assert_eq!(a.buffered(), 0);
    }
}
