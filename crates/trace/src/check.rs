//! Streaming protocol-invariant checking over trace events.
//!
//! [`InvariantChecker`] consumes a chronological stream of
//! [`TraceEvent`]s (from a JSONL file or an in-memory sink) and verifies
//! the invariants that hold for any correct run of the embedded-ring
//! protocols:
//!
//! 1. **Resolution** — every issued transaction attempt eventually
//!    completes or schedules a retry at its requester, exactly once, and
//!    nothing is left unresolved at the end of the trace.
//! 2. **Ordering** — a node never forwards a combined response for a
//!    transaction before its own snoop for that transaction finished
//!    (the Uncorq Ordering invariant enforced by the LTT WID rules).
//! 3. **LTT balance** — every LTT slot insert is matched by exactly one
//!    remove, and the table is empty when the trace ends.
//! 4. **Winner uniqueness** — of two colliding writers, at most one may
//!    hold the win at a time. If both attempts are ever selected, the
//!    first must have *completed* before the second was selected:
//!    chained serialization, where the first winner becomes the supplier
//!    that services the second. A selected winner that never completes
//!    vacated its win (a transfer declined after selection) and excludes
//!    nothing. Collisions involving a read may legitimately dual-win
//!    because the read serializes before the write or joins a
//!    suppliership chain.
//!
//! 5. **Exactly-once delivery** — when the reliability sublayer is
//!    active, its delivery boundary events
//!    ([`EventKind::ReliableDeliver`]) must carry strictly consecutive
//!    sequence numbers per `(source, destination, channel)` flow,
//!    starting at 0: no loss, no duplicate, no reordering survives the
//!    sublayer regardless of what the lossy links did underneath.
//!
//! Injected-fault events ([`EventKind::FaultInjected`]) are counted but
//! assert nothing: the invariants above must hold *with faults present*,
//! which is the whole point of a chaos run. The same goes for
//! retransmission and link-outage events — they document recovery work,
//! not failures. Protocol-error events ([`EventKind::ProtocolError`])
//! are violations — a correct protocol under in-spec faults never needs
//! its recovery escape hatches.

use std::collections::{BTreeMap, BTreeSet};

use crate::event::{EventKind, OpClass, Payload, TraceEvent};

/// A transaction attempt: requester node + per-requester serial.
pub type Txn = (u32, u64);

/// How one issued attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Resolution {
    Completed,
    Retried,
}

/// Streaming checker over a chronological trace. Feed every event to
/// [`InvariantChecker::observe`], then call
/// [`InvariantChecker::finish`]; [`InvariantChecker::violations`] lists
/// everything found.
#[derive(Default)]
pub struct InvariantChecker {
    events: u64,
    last_cycle: u64,
    /// Issued attempts -> resolution so far.
    issued: BTreeMap<Txn, Option<Resolution>>,
    /// Operation class per attempt (from the issue event).
    ops: BTreeMap<Txn, OpClass>,
    /// (node, txn) pairs whose local snoop finished (performed/skipped).
    snooped: BTreeSet<(u32, Txn)>,
    /// Live LTT slots: (node, txn, line) -> insert count.
    ltt: BTreeMap<(u32, Txn, u64), u32>,
    /// Colliding attempt pairs, normalized (smaller first).
    collisions: BTreeSet<(Txn, Txn)>,
    /// Attempts selected as winners -> event index of first selection.
    win_at: BTreeMap<Txn, u64>,
    /// Completed attempts -> event index of the requester's completion.
    completed_at: BTreeMap<Txn, u64>,
    /// Next expected sequence number per reliable flow
    /// `(src node, dst node, channel)`.
    rel_expected: BTreeMap<(u32, u32, u8), u64>,
    violations: Vec<String>,
    completed: u64,
    retried: u64,
    faults: u64,
    rel_delivered: u64,
    retransmits: u64,
}

impl InvariantChecker {
    /// A fresh checker.
    pub fn new() -> Self {
        Self::default()
    }

    fn violation(&mut self, msg: String) {
        self.violations.push(msg);
    }

    /// Consumes one event (must be fed in chronological order).
    pub fn observe(&mut self, ev: &TraceEvent) {
        self.events += 1;
        if ev.cycle < self.last_cycle {
            self.violation(format!(
                "event out of chronological order: t={} after t={} ({ev})",
                ev.cycle, self.last_cycle
            ));
        }
        self.last_cycle = self.last_cycle.max(ev.cycle);
        let txn: Txn = (ev.txn_node, ev.txn_serial);
        match ev.kind {
            EventKind::RequestIssue { op, .. } => {
                if ev.node != ev.txn_node {
                    self.violation(format!("issue at a node other than the requester: {ev}"));
                }
                if self.issued.insert(txn, None).is_some() {
                    self.violation(format!("attempt issued twice: {ev}"));
                }
                self.ops.insert(txn, op);
            }
            EventKind::Complete { .. } | EventKind::Retry { .. } if ev.node == ev.txn_node => {
                let res = if matches!(ev.kind, EventKind::Complete { .. }) {
                    self.completed += 1;
                    self.completed_at.entry(txn).or_insert(self.events);
                    Resolution::Completed
                } else {
                    self.retried += 1;
                    Resolution::Retried
                };
                let msg = match self.issued.get_mut(&txn) {
                    None => Some(format!("resolution of an unissued attempt: {ev}")),
                    Some(slot @ None) => {
                        *slot = Some(res);
                        None
                    }
                    Some(Some(prev)) => {
                        Some(format!("attempt resolved twice (already {prev:?}): {ev}"))
                    }
                };
                if let Some(m) = msg {
                    self.violation(m);
                }
            }
            EventKind::SnoopPerform { .. } | EventKind::SnoopSkip => {
                self.snooped.insert((ev.node, txn));
            }
            // The requester injects its own initial response without a
            // snoop; every other node combines its snoop outcome first.
            EventKind::RingSend {
                payload: Payload::Response { .. },
                ..
            } if ev.node != ev.txn_node && !self.snooped.contains(&(ev.node, txn)) => {
                self.violation(format!(
                    "Ordering invariant: response forwarded before the local snoop: {ev}"
                ));
            }
            EventKind::LttInsert { .. } => {
                let slot = self.ltt.entry((ev.node, txn, ev.line)).or_insert(0);
                *slot += 1;
                let count = *slot;
                if count > 1 {
                    self.violation(format!("LTT slot inserted while already present: {ev}"));
                }
            }
            EventKind::LttRemove { .. } => {
                let matched = match self.ltt.get_mut(&(ev.node, txn, ev.line)) {
                    Some(c) if *c > 0 => {
                        *c -= 1;
                        if *c == 0 {
                            self.ltt.remove(&(ev.node, txn, ev.line));
                        }
                        true
                    }
                    _ => false,
                };
                if !matched {
                    self.violation(format!("LTT remove without a matching insert: {ev}"));
                }
            }
            EventKind::Collision {
                other_node,
                other_serial,
            } => {
                let other: Txn = (other_node, other_serial);
                let pair = if txn <= other {
                    (txn, other)
                } else {
                    (other, txn)
                };
                self.collisions.insert(pair);
            }
            EventKind::WinnerSelected {
                winner_node,
                winner_serial,
            } => {
                self.win_at
                    .entry((winner_node, winner_serial))
                    .or_insert(self.events);
            }
            EventKind::FaultInjected { .. } => {
                self.faults += 1;
            }
            EventKind::Retransmit { .. } => {
                self.retransmits += 1;
            }
            EventKind::ReliableDeliver { from, channel, seq } => {
                self.rel_delivered += 1;
                let slot = self
                    .rel_expected
                    .entry((from, ev.node, channel))
                    .or_insert(0);
                let expected = *slot;
                *slot = seq + 1;
                if seq != expected {
                    self.violation(format!(
                        "exactly-once delivery: flow {from}->{} ch {channel} delivered seq \
                         {seq}, expected {expected}: {ev}",
                        ev.node
                    ));
                }
            }
            EventKind::ProtocolError { error } => {
                self.violation(format!(
                    "protocol error under in-spec faults ({error}): {ev}"
                ));
            }
            _ => {}
        }
    }

    /// Closes the trace: end-of-stream invariants (unresolved attempts,
    /// leftover LTT slots, winner uniqueness).
    pub fn finish(&mut self) {
        let unresolved: Vec<Txn> = self
            .issued
            .iter()
            .filter(|(_, r)| r.is_none())
            .map(|(t, _)| *t)
            .collect();
        for (node, serial) in unresolved {
            self.violation(format!(
                "attempt {node}.{serial} never completed nor retried"
            ));
        }
        let leftover: Vec<_> = self.ltt.keys().copied().collect();
        for (node, (tn, ts), line) in leftover {
            self.violation(format!(
                "LTT slot for {tn}.{ts} line {line:#x} still present at node {node} at end of trace"
            ));
        }
        let is_write = |t: &Txn, ops: &BTreeMap<Txn, OpClass>| {
            matches!(
                ops.get(t),
                Some(OpClass::WriteMiss) | Some(OpClass::WriteHit)
            )
        };
        let conflicting: Vec<(Txn, Txn)> = self
            .collisions
            .iter()
            .filter(|(a, b)| {
                self.win_at.contains_key(a)
                    && self.win_at.contains_key(b)
                    && is_write(a, &self.ops)
                    && is_write(b, &self.ops)
            })
            .copied()
            .collect();
        for (a, b) in conflicting {
            // A winner that never completed vacated its win (a transfer
            // declined after selection) and excludes nothing.
            let (Some(&ca), Some(&cb)) = (self.completed_at.get(&a), self.completed_at.get(&b))
            else {
                continue;
            };
            let (&wa, &wb) = (&self.win_at[&a], &self.win_at[&b]);
            // Chained serialization: the earlier winner completed (and
            // became the supplier) before the later one was selected.
            if ca < wb || cb < wa {
                continue;
            }
            let ((an, asr), (bn, bsr)) = (a, b);
            self.violation(format!(
                "winner uniqueness: colliding conflicting attempts {an}.{asr} and {bn}.{bsr} \
                 were both selected as winners while neither completion preceded the other's \
                 selection"
            ));
        }
    }

    /// Events observed.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Distinct attempts issued.
    pub fn attempts(&self) -> usize {
        self.issued.len()
    }

    /// Attempts that completed.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Attempts that scheduled a retry.
    pub fn retried(&self) -> u64 {
        self.retried
    }

    /// Collision pairs observed.
    pub fn collision_pairs(&self) -> usize {
        self.collisions.len()
    }

    /// Winner selections observed.
    pub fn winners(&self) -> usize {
        self.win_at.len()
    }

    /// Injected-fault events observed.
    pub fn faults(&self) -> u64 {
        self.faults
    }

    /// Reliable-delivery boundary events observed.
    pub fn reliable_deliveries(&self) -> u64 {
        self.rel_delivered
    }

    /// Retransmission events observed.
    pub fn retransmits(&self) -> u64 {
        self.retransmits
    }

    /// Every violation found so far.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// The standard counts block printed by the checking binaries
    /// (`tracecheck`, `chaoscheck`): events, attempts and their
    /// resolutions, collisions, winners, and injected faults — one
    /// `name : value` line each, trailing newline included.
    pub fn summary(&self) -> String {
        format!(
            "events          : {}\n\
             attempts issued : {}\n  \
               completed     : {}\n  \
               retried       : {}\n\
             collision pairs : {}\n\
             winners         : {}\n\
             faults injected : {}\n",
            self.events(),
            self.attempts(),
            self.completed(),
            self.retried(),
            self.collision_pairs(),
            self.winners(),
            self.faults(),
        )
    }

    /// Formats up to `limit` violations as indented lines (with an
    /// `... and N more` trailer when truncated). Returns an empty
    /// string when no invariant was violated.
    pub fn format_violations(&self, limit: usize) -> String {
        let mut out = String::new();
        for v in self.violations.iter().take(limit) {
            out.push_str("  VIOLATION: ");
            out.push_str(v);
            out.push('\n');
        }
        if self.violations.len() > limit {
            out.push_str(&format!(
                "  ... and {} more\n",
                self.violations.len() - limit
            ));
        }
        out
    }
}

/// Runs the full checker pipeline over an in-memory event stream:
/// builds an [`InvariantChecker`], observes every event in order, and
/// closes the trace with [`InvariantChecker::finish`].
///
/// This is the shared wiring behind `tracecheck` (file replay) and
/// `chaoscheck` (in-memory sweep); both binaries only differ in where
/// the events come from and how the result is formatted.
pub fn check_events<'a, I>(events: I) -> InvariantChecker
where
    I: IntoIterator<Item = &'a TraceEvent>,
{
    let mut checker = InvariantChecker::new();
    for ev in events {
        checker.observe(ev);
    }
    checker.finish();
    checker
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ErrorClass, FaultClass};

    fn ev(cycle: u64, node: u32, txn: Txn, kind: EventKind) -> TraceEvent {
        TraceEvent {
            cycle,
            node,
            txn_node: txn.0,
            txn_serial: txn.1,
            line: 0x40,
            kind,
        }
    }

    fn issue(cycle: u64, node: u32, serial: u64) -> TraceEvent {
        ev(
            cycle,
            node,
            (node, serial),
            EventKind::RequestIssue {
                op: OpClass::Read,
                retry: false,
            },
        )
    }

    #[test]
    fn clean_issue_complete_passes() {
        let mut c = InvariantChecker::new();
        c.observe(&issue(0, 1, 1));
        c.observe(&ev(
            10,
            1,
            (1, 1),
            EventKind::Complete {
                op: OpClass::Read,
                c2c: false,
                latency: 10,
            },
        ));
        c.finish();
        assert!(c.violations().is_empty(), "{:?}", c.violations());
        assert_eq!(c.completed(), 1);
    }

    #[test]
    fn unresolved_attempt_is_flagged() {
        let mut c = InvariantChecker::new();
        c.observe(&issue(0, 1, 1));
        c.finish();
        assert_eq!(c.violations().len(), 1);
        assert!(c.violations()[0].contains("never completed"));
    }

    #[test]
    fn fault_events_are_counted_not_flagged() {
        let mut c = InvariantChecker::new();
        c.observe(&ev(
            5,
            2,
            (2, 0),
            EventKind::FaultInjected {
                fault: FaultClass::Jitter,
                delay: 9,
            },
        ));
        c.finish();
        assert!(c.violations().is_empty());
        assert_eq!(c.faults(), 1);
    }

    #[test]
    fn protocol_error_events_are_violations() {
        let mut c = InvariantChecker::new();
        c.observe(&ev(
            5,
            2,
            (2, 0),
            EventKind::ProtocolError {
                error: ErrorClass::LttSlotMissing,
            },
        ));
        c.finish();
        assert_eq!(c.violations().len(), 1);
        assert!(c.violations()[0].contains("ltt_slot_missing"));
    }

    fn rdeliver(cycle: u64, node: u32, from: u32, seq: u64) -> TraceEvent {
        ev(
            cycle,
            node,
            (from, 0),
            EventKind::ReliableDeliver {
                from,
                channel: 0,
                seq,
            },
        )
    }

    #[test]
    fn consecutive_reliable_deliveries_pass() {
        let mut c = InvariantChecker::new();
        for seq in 0..5 {
            c.observe(&rdeliver(seq * 10, 1, 0, seq));
        }
        // An independent flow restarts at 0.
        c.observe(&rdeliver(60, 2, 0, 0));
        c.finish();
        assert!(c.violations().is_empty(), "{:?}", c.violations());
        assert_eq!(c.reliable_deliveries(), 6);
    }

    #[test]
    fn skipped_or_duplicated_sequence_is_flagged() {
        let mut c = InvariantChecker::new();
        c.observe(&rdeliver(0, 1, 0, 0));
        c.observe(&rdeliver(10, 1, 0, 2)); // lost seq 1
        c.finish();
        assert!(c.violations().iter().any(|v| v.contains("exactly-once")));

        let mut c = InvariantChecker::new();
        c.observe(&rdeliver(0, 1, 0, 0));
        c.observe(&rdeliver(10, 1, 0, 0)); // duplicate
        c.finish();
        assert!(c.violations().iter().any(|v| v.contains("exactly-once")));
    }

    #[test]
    fn retransmit_events_are_counted_not_flagged() {
        let mut c = InvariantChecker::new();
        c.observe(&ev(
            5,
            2,
            (2, 0),
            EventKind::Retransmit {
                to: 3,
                channel: 0,
                seq: 9,
                attempt: 1,
            },
        ));
        c.observe(&ev(
            6,
            0,
            (0, 0),
            EventKind::LinkDown { link: 4, up_at: 90 },
        ));
        c.observe(&ev(7, 0, (0, 0), EventKind::LinkUp { link: 4 }));
        c.finish();
        assert!(c.violations().is_empty(), "{:?}", c.violations());
        assert_eq!(c.retransmits(), 1);
    }

    #[test]
    fn check_events_matches_manual_wiring() {
        let events = vec![
            issue(0, 1, 1),
            ev(
                10,
                1,
                (1, 1),
                EventKind::Complete {
                    op: OpClass::Read,
                    c2c: false,
                    latency: 10,
                },
            ),
            issue(20, 2, 1), // left unresolved: one violation
        ];
        let c = crate::check::check_events(&events);
        assert_eq!(c.events(), 3);
        assert_eq!(c.attempts(), 2);
        assert_eq!(c.violations().len(), 1);
        assert!(c.summary().contains("attempts issued : 2"));
        assert!(c.summary().contains("completed     : 1"));
        let f = c.format_violations(10);
        assert!(f.contains("VIOLATION: attempt 2.1 never completed"));
        assert_eq!(c.format_violations(0), "  ... and 1 more\n");
    }

    #[test]
    fn out_of_order_events_are_flagged() {
        let mut c = InvariantChecker::new();
        c.observe(&issue(10, 1, 1));
        c.observe(&ev(
            5,
            1,
            (1, 1),
            EventKind::Complete {
                op: OpClass::Read,
                c2c: false,
                latency: 5,
            },
        ));
        c.finish();
        assert!(c
            .violations()
            .iter()
            .any(|v| v.contains("chronological order")));
    }
}
