//! Windowed flight recorder: time-resolved snapshots of machine state.
//!
//! End-of-run totals cannot show *when* a queue peak builds or where
//! cycles go during a link outage. The [`FlightRecorder`] fixes that:
//! the machine feeds it a cumulative [`FlightProbe`] every time the
//! simulation clock crosses a window boundary (default every 10k
//! cycles), and the recorder differences consecutive probes into
//! [`WindowSnapshot`]s — per-window event/retry/retransmit rates,
//! per-node and per-link activity deltas, and instantaneous gauges
//! (queue depth split into calendar buckets vs heap fallback, LTT and
//! MSHR occupancy, reliable-transport unacked/queued frames).
//!
//! Snapshots are kept in a bounded ring (oldest dropped first) with an
//! optional JSONL spill for unbounded capture. Everything is a pure
//! function of the probe sequence, so two runs with the same seed
//! produce byte-identical snapshot streams — and a machine without a
//! recorder installed pays exactly one integer compare per popped
//! event.

use std::collections::VecDeque;
use std::io::Write;

/// Configuration for a [`FlightRecorder`].
#[derive(Debug, Clone, Copy)]
pub struct FlightConfig {
    /// Window length in cycles. A probe is taken the first time the
    /// clock reaches each multiple of this interval.
    pub interval: u64,
    /// Maximum snapshots retained in memory (oldest dropped first).
    pub capacity: usize,
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig {
            interval: 10_000,
            capacity: 1024,
        }
    }
}

impl FlightConfig {
    /// The default configuration with a custom window interval.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn with_interval(interval: u64) -> Self {
        assert!(interval > 0, "flight window interval must be positive");
        FlightConfig {
            interval,
            ..Default::default()
        }
    }
}

/// A cumulative probe of machine state, taken at a window boundary.
///
/// Counter fields (`events`, `retries`, `retransmits`, per-node
/// activity, per-link messages/bytes) are *cumulative since cycle 0*;
/// the recorder differences consecutive probes. The remaining fields
/// are instantaneous gauges.
#[derive(Debug, Clone, Default)]
pub struct FlightProbe {
    /// Simulation cycle at which the probe was taken.
    pub cycle: u64,
    /// Events processed so far (cumulative).
    pub events: u64,
    /// Pending events in the event queue (gauge).
    pub queue_depth: usize,
    /// Pending events in the calendar buckets (gauge).
    pub queue_buckets: usize,
    /// Pending events on the far-future heap fallback (gauge).
    pub queue_heap: usize,
    /// Unacked frames held by the reliable transport (gauge; 0 when
    /// the sublayer is disabled).
    pub rel_unacked: usize,
    /// Frames queued behind send windows in the reliable transport
    /// (gauge; 0 when disabled).
    pub rel_queued: usize,
    /// Frame retransmissions so far (cumulative).
    pub retransmits: u64,
    /// Retries scheduled so far, all nodes (cumulative).
    pub retries: u64,
    /// Per-node protocol activity so far (cumulative; the sum of the
    /// node's request/supply/writeback/memory counters).
    pub node_activity: Vec<u64>,
    /// Per-node LTT occupancy (gauge).
    pub node_ltt: Vec<u32>,
    /// Per-node outstanding-miss (MSHR) occupancy (gauge).
    pub node_outstanding: Vec<u32>,
    /// Per-link messages so far (cumulative).
    pub link_messages: Vec<u64>,
    /// Per-link bytes so far (cumulative).
    pub link_bytes: Vec<u64>,
}

/// One completed observation window: deltas over the window plus
/// instantaneous gauges at its end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowSnapshot {
    /// Cycle of the probe that closed this window. Windows where no
    /// event fired are skipped, so consecutive snapshots may span more
    /// than one interval — `cycles` carries the true span.
    pub window_end: u64,
    /// Cycles covered by this window (`window_end` minus the previous
    /// probe's cycle).
    pub cycles: u64,
    /// Events processed during the window.
    pub events: u64,
    /// Event-queue depth at window end (gauge).
    pub queue_depth: usize,
    /// Calendar-bucket share of the queue depth (gauge).
    pub queue_buckets: usize,
    /// Heap-fallback share of the queue depth (gauge).
    pub queue_heap: usize,
    /// Total LTT entries across all nodes at window end (gauge).
    pub ltt_total: u64,
    /// Total outstanding misses (MSHR) across all nodes (gauge).
    pub mshr_total: u64,
    /// Reliable-transport unacked frames at window end (gauge).
    pub rel_unacked: usize,
    /// Reliable-transport queued frames at window end (gauge).
    pub rel_queued: usize,
    /// Retries scheduled during the window.
    pub retries: u64,
    /// Frame retransmissions during the window.
    pub retransmits: u64,
    /// Per-node activity during the window.
    pub node_activity: Vec<u64>,
    /// Per-link messages during the window.
    pub link_messages: Vec<u64>,
    /// Per-link bytes during the window.
    pub link_bytes: Vec<u64>,
}

/// Sorts `(index, value)` pairs by value descending (index ascending on
/// ties, for determinism), dropping zero entries, keeping the top `k`.
fn top_k(values: &[u64], k: usize) -> Vec<(usize, u64)> {
    let mut v: Vec<(usize, u64)> = values
        .iter()
        .copied()
        .enumerate()
        .filter(|&(_, x)| x > 0)
        .collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v.truncate(k);
    v
}

fn json_array(out: &mut String, key: &str, values: &[u64]) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
}

impl WindowSnapshot {
    /// The `k` busiest nodes this window as `(node, activity)`, busiest
    /// first; zero-activity nodes are omitted.
    pub fn hottest_nodes(&self, k: usize) -> Vec<(usize, u64)> {
        top_k(&self.node_activity, k)
    }

    /// The `k` busiest links this window as `(link, messages)`,
    /// busiest first; idle links are omitted.
    pub fn hottest_links(&self, k: usize) -> Vec<(usize, u64)> {
        top_k(&self.link_messages, k)
    }

    /// Events per cycle over the window.
    pub fn event_rate(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.events as f64 / self.cycles as f64
        }
    }

    /// Serializes the snapshot as one JSON object on one line, in
    /// stable field order — two identical runs spill byte-identical
    /// window streams.
    pub fn to_jsonl(&self) -> String {
        let mut s = format!(
            "{{\"w\":{},\"cyc\":{},\"ev\":{},\"q\":{},\"qb\":{},\"qh\":{},\"ltt\":{},\
             \"mshr\":{},\"ru\":{},\"rq\":{},\"rt\":{},\"rx\":{}",
            self.window_end,
            self.cycles,
            self.events,
            self.queue_depth,
            self.queue_buckets,
            self.queue_heap,
            self.ltt_total,
            self.mshr_total,
            self.rel_unacked,
            self.rel_queued,
            self.retries,
            self.retransmits,
        );
        json_array(&mut s, "na", &self.node_activity);
        json_array(&mut s, "lm", &self.link_messages);
        json_array(&mut s, "lb", &self.link_bytes);
        s.push('}');
        s
    }
}

/// Bounded ring of [`WindowSnapshot`]s with an optional JSONL spill.
///
/// Install on a machine (which probes it at window boundaries), then
/// read [`FlightRecorder::snapshots`] after the run.
pub struct FlightRecorder {
    interval: u64,
    capacity: usize,
    prev: Option<FlightProbe>,
    ring: VecDeque<WindowSnapshot>,
    recorded: u64,
    dropped: u64,
    spill: Option<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("interval", &self.interval)
            .field("capacity", &self.capacity)
            .field("recorded", &self.recorded)
            .field("dropped", &self.dropped)
            .field("spill", &self.spill.is_some())
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder with the given window interval and ring capacity.
    ///
    /// # Panics
    ///
    /// Panics if the interval or capacity is zero.
    pub fn new(cfg: FlightConfig) -> Self {
        assert!(cfg.interval > 0, "flight window interval must be positive");
        assert!(cfg.capacity > 0, "flight ring capacity must be positive");
        FlightRecorder {
            interval: cfg.interval,
            capacity: cfg.capacity,
            prev: None,
            ring: VecDeque::with_capacity(cfg.capacity.min(4096)),
            recorded: 0,
            dropped: 0,
            spill: None,
        }
    }

    /// Like [`new`](Self::new), but every snapshot is also written as a
    /// JSONL line to `spill` (so a long run is not limited by the
    /// ring's capacity).
    pub fn with_spill(cfg: FlightConfig, spill: Box<dyn Write + Send>) -> Self {
        let mut r = Self::new(cfg);
        r.spill = Some(spill);
        r
    }

    /// The configured window interval in cycles.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Folds a probe into the recorder, closing the window that ends at
    /// `probe.cycle`. Counter deltas are taken against the previous
    /// probe (or zero for the first), gauges are copied through.
    pub fn record(&mut self, probe: FlightProbe) {
        let zero = FlightProbe::default();
        let prev = self.prev.as_ref().unwrap_or(&zero);
        let d = |cur: u64, old: u64| cur.saturating_sub(old);
        let dv = |cur: &[u64], old: &[u64]| -> Vec<u64> {
            cur.iter()
                .enumerate()
                .map(|(i, &c)| c.saturating_sub(old.get(i).copied().unwrap_or(0)))
                .collect()
        };
        let snap = WindowSnapshot {
            window_end: probe.cycle,
            cycles: d(probe.cycle, prev.cycle),
            events: d(probe.events, prev.events),
            queue_depth: probe.queue_depth,
            queue_buckets: probe.queue_buckets,
            queue_heap: probe.queue_heap,
            ltt_total: probe.node_ltt.iter().map(|&x| u64::from(x)).sum(),
            mshr_total: probe.node_outstanding.iter().map(|&x| u64::from(x)).sum(),
            rel_unacked: probe.rel_unacked,
            rel_queued: probe.rel_queued,
            retries: d(probe.retries, prev.retries),
            retransmits: d(probe.retransmits, prev.retransmits),
            node_activity: dv(&probe.node_activity, &prev.node_activity),
            link_messages: dv(&probe.link_messages, &prev.link_messages),
            link_bytes: dv(&probe.link_bytes, &prev.link_bytes),
        };
        if let Some(w) = &mut self.spill {
            // A full disk must not abort the simulation; drop the line.
            let _ = writeln!(w, "{}", snap.to_jsonl());
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(snap);
        self.recorded += 1;
        self.prev = Some(probe);
    }

    /// Retained snapshots, oldest first.
    pub fn snapshots(&self) -> impl Iterator<Item = &WindowSnapshot> {
        self.ring.iter()
    }

    /// Number of retained snapshots.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no window has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total windows recorded, including any dropped from the ring.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Snapshots evicted from the ring (still in the spill, if any).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Writes every retained snapshot as JSONL.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from the writer.
    pub fn write_jsonl<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        for s in &self.ring {
            writeln!(w, "{}", s.to_jsonl())?;
        }
        Ok(())
    }

    /// Flushes the spill writer, if any.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from the spill writer.
    pub fn flush(&mut self) -> std::io::Result<()> {
        if let Some(w) = &mut self.spill {
            w.flush()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(cycle: u64, events: u64, activity: Vec<u64>) -> FlightProbe {
        FlightProbe {
            cycle,
            events,
            queue_depth: 5,
            queue_buckets: 4,
            queue_heap: 1,
            node_activity: activity,
            node_ltt: vec![2, 0],
            node_outstanding: vec![1, 3],
            link_messages: vec![10 * cycle, cycle],
            link_bytes: vec![80 * cycle, 8 * cycle],
            ..Default::default()
        }
    }

    #[test]
    fn windows_are_deltas_of_cumulative_probes() {
        let mut r = FlightRecorder::new(FlightConfig::default());
        r.record(probe(10_000, 500, vec![100, 40]));
        r.record(probe(20_000, 900, vec![150, 90]));
        let snaps: Vec<&WindowSnapshot> = r.snapshots().collect();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].events, 500);
        assert_eq!(snaps[1].events, 400);
        assert_eq!(snaps[1].cycles, 10_000);
        assert_eq!(snaps[1].node_activity, vec![50, 50]);
        assert_eq!(snaps[0].ltt_total, 2);
        assert_eq!(snaps[0].mshr_total, 4);
        assert_eq!(snaps[0].queue_buckets + snaps[0].queue_heap, 5);
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let mut r = FlightRecorder::new(FlightConfig {
            interval: 10,
            capacity: 2,
        });
        for i in 1..=5u64 {
            r.record(probe(i * 10, i * 100, vec![i]));
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.recorded(), 5);
        assert_eq!(r.dropped(), 3);
        let ends: Vec<u64> = r.snapshots().map(|s| s.window_end).collect();
        assert_eq!(ends, vec![40, 50]);
    }

    #[test]
    fn hottest_nodes_and_links_are_sorted_and_deterministic() {
        let s = WindowSnapshot {
            window_end: 10,
            cycles: 10,
            events: 1,
            queue_depth: 0,
            queue_buckets: 0,
            queue_heap: 0,
            ltt_total: 0,
            mshr_total: 0,
            rel_unacked: 0,
            rel_queued: 0,
            retries: 0,
            retransmits: 0,
            node_activity: vec![5, 0, 9, 5],
            link_messages: vec![0, 7],
            link_bytes: vec![0, 56],
        };
        // Ties broken by index; zeros omitted.
        assert_eq!(s.hottest_nodes(3), vec![(2, 9), (0, 5), (3, 5)]);
        assert_eq!(s.hottest_links(5), vec![(1, 7)]);
    }

    #[test]
    fn jsonl_is_stable_and_spill_matches_ring() {
        let mut r = FlightRecorder::new(FlightConfig::default());
        r.record(probe(10_000, 500, vec![100, 40]));
        let mut via_ring = Vec::new();
        r.write_jsonl(&mut via_ring).unwrap();
        let line = String::from_utf8(via_ring).unwrap();
        assert!(line.starts_with("{\"w\":10000,\"cyc\":10000,\"ev\":500,"));
        assert!(line.contains("\"na\":[100,40]"));
        // A second recorder fed the same probes spills the same bytes.
        let mut r2 = FlightRecorder::new(FlightConfig::default());
        r2.record(probe(10_000, 500, vec![100, 40]));
        let mut again = Vec::new();
        r2.write_jsonl(&mut again).unwrap();
        assert_eq!(line, String::from_utf8(again).unwrap());
    }
}
