//! Structured coherence-event tracing for the Uncorq simulator.
//!
//! This crate is the observability layer of the simulator:
//!
//! - [`TraceEvent`] — a typed record of one protocol event (request
//!   issue, ring hop, snoop, LTT activity, collision/winner selection,
//!   combined-response consumption, memory fetch, prefetch, retry,
//!   starvation), carrying the cycle, node, transaction identity, and
//!   line it concerns.
//! - [`TraceSink`] — where events go: [`NullSink`] (a no-op, the
//!   default), [`RingBufferSink`] (last-N in memory, for post-mortem
//!   debugging), and [`JsonlSink`] (one JSON object per line, for the
//!   offline `tracecheck` pipeline).
//! - [`MetricsRegistry`] — per-node and per-link counters/histograms
//!   that accumulate during a run and roll up into the machine-level
//!   report, including the per-transaction latency anatomy
//!   (request-delivery vs data-transfer vs response-return, in the
//!   style of the paper's Figure 5).
//!
//! The crate is dependency-light on purpose: events identify nodes,
//! transactions, and lines by raw integers so that every simulator layer
//! can emit events without cyclic crate dependencies.
//!
//! # Examples
//!
//! ```
//! use ring_trace::{EventKind, OpClass, TraceEvent};
//!
//! let ev = TraceEvent {
//!     cycle: 120,
//!     node: 3,
//!     txn_node: 3,
//!     txn_serial: 7,
//!     line: 4096,
//!     kind: EventKind::MulticastRequest { op: OpClass::Read },
//! };
//! let line = ev.to_jsonl();
//! assert_eq!(TraceEvent::from_jsonl(&line).unwrap(), ev);
//! assert!(ev.to_string().contains("MCAST R"));
//! ```

#![warn(missing_docs)]

mod check;
mod event;
mod export;
mod fanout;
mod flight;
mod metrics;
mod sink;

pub use check::{check_events, InvariantChecker};
pub use event::{ErrorClass, EventKind, FaultClass, OpClass, ParseError, Payload, TraceEvent};
pub use export::perfetto_json;
pub use fanout::{Delivery, FanoutSink, Subscription};
pub use flight::{FlightConfig, FlightProbe, FlightRecorder, WindowSnapshot};
pub use metrics::{
    ClassLatency, LatencyAnatomy, LinkMetrics, MetricsRegistry, NodeMetrics, TXN_CLASSES,
};
pub use sink::{JsonlSink, NullSink, RingBufferSink, SharedBufferSink, TraceSink};
