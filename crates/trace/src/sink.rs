//! Pluggable destinations for trace events.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::event::TraceEvent;

/// Where trace events go.
///
/// The machine invokes [`TraceSink::record`] once per emitted event;
/// event construction itself is skipped entirely when no sink is
/// installed, so the disabled path costs one branch.
pub trait TraceSink: Send {
    /// Records one event.
    fn record(&mut self, ev: &TraceEvent);

    /// Flushes any buffered output (no-op by default).
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Discards every event. Installing `NullSink` is equivalent to
/// installing no sink at all — it exists so code can hold a
/// `Box<dyn TraceSink>` unconditionally.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _ev: &TraceEvent) {}
}

/// Keeps the most recent `capacity` events in memory, for post-mortem
/// inspection after a failure.
///
/// The sink is cheaply cloneable; clones share the same buffer, so one
/// clone can be installed into the machine while another is kept to
/// read the events back afterwards.
#[derive(Debug, Clone)]
pub struct RingBufferSink {
    capacity: usize,
    buf: Arc<Mutex<VecDeque<TraceEvent>>>,
}

impl RingBufferSink {
    /// A ring buffer holding at most `capacity` events (the oldest are
    /// dropped first).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring buffer capacity must be positive");
        RingBufferSink {
            capacity,
            buf: Arc::new(Mutex::new(VecDeque::with_capacity(capacity))),
        }
    }

    /// The retained events, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.buf.lock().unwrap().iter().copied().collect()
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl TraceSink for RingBufferSink {
    fn record(&mut self, ev: &TraceEvent) {
        let mut buf = self.buf.lock().unwrap();
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(*ev);
    }
}

/// Collects every event in memory, unbounded. Clones share the buffer
/// (install one clone, read from the other); used by tests that assert
/// on full event streams.
#[derive(Debug, Clone, Default)]
pub struct SharedBufferSink {
    buf: Arc<Mutex<Vec<TraceEvent>>>,
}

impl SharedBufferSink {
    /// An empty shared buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// All recorded events in emission order.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.buf.lock().unwrap().clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.buf.lock().unwrap().len()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for SharedBufferSink {
    fn record(&mut self, ev: &TraceEvent) {
        self.buf.lock().unwrap().push(*ev);
    }
}

/// Streams events as JSON Lines to a writer (one object per line, in
/// stable field order — two identical runs produce byte-identical
/// files). This is the input format of the `tracecheck` pipeline.
pub struct JsonlSink<W: Write + Send> {
    w: W,
}

impl JsonlSink<BufWriter<File>> {
    /// Creates (truncating) a JSONL trace file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying file-creation error.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlSink {
            w: BufWriter::new(File::create(path)?),
        })
    }
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps an arbitrary writer.
    pub fn new(w: W) -> Self {
        JsonlSink { w }
    }

    /// Unwraps the inner writer (flushing is the caller's concern).
    pub fn into_inner(self) -> W {
        self.w
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn record(&mut self, ev: &TraceEvent) {
        // A full disk is unrecoverable mid-run; drop the event rather
        // than aborting the simulation.
        let _ = writeln!(self.w, "{}", ev.to_jsonl());
    }

    fn flush(&mut self) -> io::Result<()> {
        self.w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, OpClass};

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent {
            cycle,
            node: 1,
            txn_node: 1,
            txn_serial: cycle,
            line: 64,
            kind: EventKind::RequestIssue {
                op: OpClass::Read,
                retry: false,
            },
        }
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let mut s = RingBufferSink::new(3);
        for c in 0..5 {
            s.record(&ev(c));
        }
        let kept: Vec<u64> = s.snapshot().iter().map(|e| e.cycle).collect();
        assert_eq!(kept, vec![2, 3, 4]);
    }

    #[test]
    fn shared_buffer_clones_share_storage() {
        let reader = SharedBufferSink::new();
        let mut writer = reader.clone();
        writer.record(&ev(9));
        assert_eq!(reader.len(), 1);
        assert_eq!(reader.snapshot()[0].cycle, 9);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&ev(1));
        sink.record(&ev(2));
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let events: Vec<TraceEvent> = text
            .lines()
            .map(|l| TraceEvent::from_jsonl(l).unwrap())
            .collect();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].cycle, 2);
    }

    #[test]
    fn null_sink_is_a_noop() {
        let mut s = NullSink;
        s.record(&ev(1));
        assert!(s.flush().is_ok());
    }
}
